"""Cycle-accurate-ish timing model for the weight-stationary systolic array.

The model is the standard analytical estimate for an output/weight-stationary
array (as used in TPU-style designs): a GEMM of size ``M x K x N`` (``M``
activations, ``K`` reduction, ``N`` outputs) executed on an ``R x C`` array is
split into ``ceil(K / R) * ceil(N / C)`` weight tiles; each tile streams the
``M`` activation rows through the array, paying the pipeline fill/drain cost
``R + C - 2`` plus a fixed weight-load cost of ``R`` cycles.

The absolute numbers are not calibrated against silicon — the experiments only
use *relative* latencies (e.g. FAP retains full throughput while PE-bypass
techniques shrink the effective array, motivation §I of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.accelerator.mapping import GemmShape, layer_gemm_shape, mappable_layers
from repro.accelerator.systolic_array import SystolicArray


@dataclasses.dataclass(frozen=True)
class GemmWorkload:
    """A single GEMM executed on the array."""

    name: str
    m: int  # activation rows (batch * output spatial positions)
    k: int  # reduction dimension
    n: int  # output dimension

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError("GEMM dimensions must be positive")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


@dataclasses.dataclass(frozen=True)
class LayerTiming:
    """Timing estimate of one layer on a specific array."""

    name: str
    workload: GemmWorkload
    cycles: int
    utilization: float

    @property
    def macs(self) -> int:
        return self.workload.macs


@dataclasses.dataclass(frozen=True)
class ModelTiming:
    """Aggregate timing of a model (one inference pass) on an array."""

    layers: Tuple[LayerTiming, ...]
    array_rows: int
    array_cols: int
    frequency_mhz: float

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.frequency_mhz * 1e3)

    @property
    def utilization(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        peak = self.total_cycles * self.array_rows * self.array_cols
        return self.total_macs / peak

    def per_layer(self) -> Dict[str, int]:
        return {layer.name: layer.cycles for layer in self.layers}


def gemm_cycles(
    workload: GemmWorkload,
    rows: int,
    cols: int,
    physical_rows: Optional[int] = None,
    physical_cols: Optional[int] = None,
) -> int:
    """Cycles to execute one GEMM on an ``rows x cols`` weight-stationary array.

    ``rows``/``cols`` describe the *usable* tile capacity.  When part of the
    array is bypassed (PE-bypass mitigation), data still traverses the full
    physical grid, so ``physical_rows``/``physical_cols`` (defaulting to the
    usable size) set the weight-load and pipeline fill/drain latency.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("array dimensions must be positive")
    physical_rows = physical_rows if physical_rows is not None else rows
    physical_cols = physical_cols if physical_cols is not None else cols
    if physical_rows < rows or physical_cols < cols:
        raise ValueError("physical array dimensions cannot be smaller than the usable tile size")
    row_tiles = -(-workload.k // rows)
    col_tiles = -(-workload.n // cols)
    weight_load = physical_rows  # cycles to shift a weight tile into the array
    pipeline = physical_rows + physical_cols - 2
    per_tile = weight_load + pipeline + workload.m
    return row_tiles * col_tiles * per_tile


def gemm_utilization(
    workload: GemmWorkload,
    rows: int,
    cols: int,
    physical_rows: Optional[int] = None,
    physical_cols: Optional[int] = None,
) -> float:
    """Achieved MAC utilization of the (physical) array for one GEMM."""
    cycles = gemm_cycles(workload, rows, cols, physical_rows, physical_cols)
    if cycles == 0:
        return 0.0
    physical_rows = physical_rows if physical_rows is not None else rows
    physical_cols = physical_cols if physical_cols is not None else cols
    return workload.macs / (cycles * physical_rows * physical_cols)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size ({out}) for input {size}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out


def model_gemm_workloads(
    model: nn.Module,
    input_shape: Sequence[int],
    batch_size: int = 1,
) -> List[GemmWorkload]:
    """Lower every mappable layer of ``model`` to a GEMM workload.

    ``input_shape`` is the per-sample shape: ``(C, H, W)`` for convolutional
    models or ``(F,)`` for MLPs.  Spatial sizes are propagated through conv
    and pooling layers module-by-module in declaration order, which matches
    the sequential models used throughout this repository.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    workloads: List[GemmWorkload] = []
    if len(input_shape) == 3:
        _, height, width = (int(d) for d in input_shape)
    else:
        height = width = 1

    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            kh, kw = module.kernel_size
            sh, sw = module.stride
            ph, pw = module.padding
            out_h = conv_output_size(height, kh, sh, ph)
            out_w = conv_output_size(width, kw, sw, pw)
            gemm = layer_gemm_shape(module)
            workloads.append(
                GemmWorkload(
                    name=name,
                    m=batch_size * out_h * out_w,
                    k=gemm.reduce_dim,
                    n=gemm.output_dim,
                )
            )
            height, width = out_h, out_w
        elif isinstance(module, (nn.MaxPool2d, nn.AvgPool2d)):
            kh, kw = module.kernel_size
            sh, sw = module.stride
            height = (height - kh) // sh + 1
            width = (width - kw) // sw + 1
        elif isinstance(module, nn.GlobalAvgPool2d):
            height = width = 1
        elif isinstance(module, nn.Linear):
            gemm = layer_gemm_shape(module)
            workloads.append(
                GemmWorkload(name=name, m=batch_size, k=gemm.reduce_dim, n=gemm.output_dim)
            )
    return workloads


def estimate_model_timing(
    model: nn.Module,
    array: SystolicArray,
    input_shape: Sequence[int],
    batch_size: int = 1,
    effective_rows: Optional[int] = None,
    effective_cols: Optional[int] = None,
) -> ModelTiming:
    """Estimate the end-to-end timing of one forward pass of ``model``.

    ``effective_rows`` / ``effective_cols`` override the usable array size —
    used by the PE-bypass baseline, which views a faulty array as a smaller
    fault-free one.
    """
    rows = effective_rows if effective_rows is not None else array.rows
    cols = effective_cols if effective_cols is not None else array.cols
    if rows <= 0 or cols <= 0:
        raise ValueError("effective array dimensions must be positive")
    layers = []
    for workload in model_gemm_workloads(model, input_shape, batch_size=batch_size):
        cycles = gemm_cycles(workload, rows, cols, array.rows, array.cols)
        layers.append(
            LayerTiming(
                name=workload.name,
                workload=workload,
                cycles=cycles,
                utilization=gemm_utilization(workload, rows, cols, array.rows, array.cols),
            )
        )
    return ModelTiming(
        layers=tuple(layers),
        array_rows=array.rows,
        array_cols=array.cols,
        frequency_mhz=array.technology.frequency_mhz,
    )
