"""Mapping DNN layers onto the systolic array and deriving fault masks.

This module encodes the key link between the physical fault map of a chip and
the weights of the network running on it.

Weight-stationary mapping convention (TPU / Zhang et al., VTS 2018):

* every Linear or Conv2d layer is lowered to a GEMM whose weight matrix has a
  *reduction* dimension ``K`` (input features, or ``in_channels * kh * kw``
  for convolutions after im2col) and an *output* dimension ``N``
  (output features / channels);
* weight element ``(k, n)`` is loaded into PE ``(k mod R, n mod C)`` of the
  ``R x C`` array — large layers are processed as multiple ``R x C`` tiles,
  so the physical fault pattern repeats periodically over the weight matrix;
* a permanent fault in PE ``(r, c)`` therefore forces *every* weight with
  ``k ≡ r (mod R)`` and ``n ≡ c (mod C)`` to zero under Fault-Aware Pruning.

Fault-aware mapping (FAM / SalvageDNN) permutes which logical output column
lands on which physical column, represented here by an optional per-layer
column permutation applied to the fault map before tiling.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.systolic_array import SystolicArray


@dataclasses.dataclass(frozen=True)
class GemmShape:
    """The GEMM view of a layer: ``K`` (reduction) by ``N`` (output) weights."""

    reduce_dim: int
    output_dim: int

    @property
    def num_weights(self) -> int:
        return self.reduce_dim * self.output_dim

    def __post_init__(self) -> None:
        if self.reduce_dim <= 0 or self.output_dim <= 0:
            raise ValueError("GEMM dimensions must be positive")


def is_mappable(module: nn.Module) -> bool:
    """True for layers executed on the systolic array (Linear and Conv2d)."""
    return isinstance(module, (nn.Linear, nn.Conv2d))


def mappable_layers(model: nn.Module) -> Iterator[Tuple[str, nn.Module]]:
    """Yield ``(name, module)`` for every layer mapped onto the array."""
    for name, module in model.named_modules():
        if is_mappable(module):
            yield name, module


def layer_gemm_shape(module: nn.Module) -> GemmShape:
    """GEMM dimensions of a mappable layer."""
    if isinstance(module, nn.Linear):
        out_features, in_features = module.weight.shape
        return GemmShape(reduce_dim=in_features, output_dim=out_features)
    if isinstance(module, nn.Conv2d):
        out_channels, in_channels, kh, kw = module.weight.shape
        return GemmShape(reduce_dim=in_channels * kh * kw, output_dim=out_channels)
    raise TypeError(f"module of type {type(module).__name__} is not mappable onto the array")


def weight_matrix_view(module: nn.Module) -> np.ndarray:
    """Return the layer weight as an ``(N_out, K)`` matrix (shares memory)."""
    if isinstance(module, nn.Linear):
        return module.weight.data
    if isinstance(module, nn.Conv2d):
        out_channels = module.weight.shape[0]
        return module.weight.data.reshape(out_channels, -1)
    raise TypeError(f"module of type {type(module).__name__} is not mappable onto the array")


# ---------------------------------------------------------------------------
# Mask cache
# ---------------------------------------------------------------------------
#
# ``gemm_fault_mask`` is called once per mappable layer for every retraining
# run and every evaluation of a chip, but its output depends only on the fault
# map, the GEMM shape and the (optional) column permutation — all of which are
# identical across the many calls a campaign makes for one chip.  A small LRU
# keyed by (fault-map fingerprint, GemmShape, permutation fingerprint) makes
# every call after the first a dictionary lookup.  Cached masks are read-only;
# callers treating masks as immutable (all in-tree callers do) share them
# zero-copy.

_MASK_CACHE_CAPACITY = 512
# Byte budget alongside the entry cap: mask size scales with the model's
# weight count, so a pure entry cap could pin gigabytes for large FC layers.
_MASK_CACHE_MAX_BYTES = 256 * 1024 * 1024
_MASK_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_MASK_CACHE_STATS = {"hits": 0, "misses": 0, "bytes": 0}


def _fault_map_fingerprint(fault_map: FaultMap) -> Tuple:
    """Cheap content key of a fault map (shape + raw bool payload)."""
    return (fault_map.shape, fault_map.array.tobytes())


def clear_mask_cache() -> None:
    """Drop every cached fault mask (mainly for tests and benchmarks)."""
    _MASK_CACHE.clear()
    _MASK_CACHE_STATS["hits"] = 0
    _MASK_CACHE_STATS["misses"] = 0
    _MASK_CACHE_STATS["bytes"] = 0


def mask_cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current size of the mask LRU."""
    return {**_MASK_CACHE_STATS, "size": len(_MASK_CACHE)}


def gemm_fault_mask(
    gemm: GemmShape,
    fault_map: FaultMap,
    column_permutation: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Boolean mask over the ``(N_out, K)`` weight matrix; True = faulty PE.

    The mask is produced by tiling the (optionally column-permuted) fault map
    periodically over the weight matrix according to the weight-stationary
    mapping described in the module docstring.  Results are memoized in a
    process-wide LRU (see above); the returned array is read-only.
    """
    perm_key = None if column_permutation is None else tuple(int(c) for c in column_permutation)
    key = (_fault_map_fingerprint(fault_map), gemm, perm_key)
    cached = _MASK_CACHE.get(key)
    if cached is not None:
        _MASK_CACHE_STATS["hits"] += 1
        _MASK_CACHE.move_to_end(key)
        return cached
    _MASK_CACHE_STATS["misses"] += 1
    effective_map = fault_map if column_permutation is None else fault_map.permuted_columns(column_permutation)
    faulty = effective_map.array
    rows, cols = faulty.shape
    k_indices = np.arange(gemm.reduce_dim) % rows
    n_indices = np.arange(gemm.output_dim) % cols
    # mask[k, n] = faulty[k mod R, n mod C]; transpose to the (N_out, K) layout.
    mask_kn = faulty[np.ix_(k_indices, n_indices)]
    mask = np.ascontiguousarray(mask_kn.T)
    mask.setflags(write=False)
    _MASK_CACHE[key] = mask
    _MASK_CACHE_STATS["bytes"] += mask.nbytes
    while _MASK_CACHE and (
        len(_MASK_CACHE) > _MASK_CACHE_CAPACITY
        or _MASK_CACHE_STATS["bytes"] > _MASK_CACHE_MAX_BYTES
    ):
        _, evicted = _MASK_CACHE.popitem(last=False)
        _MASK_CACHE_STATS["bytes"] -= evicted.nbytes
    return mask


def layer_fault_mask(
    module: nn.Module,
    fault_map: FaultMap,
    column_permutation: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Fault mask in the layer's native weight shape (True = must be zeroed)."""
    gemm = layer_gemm_shape(module)
    matrix_mask = gemm_fault_mask(gemm, fault_map, column_permutation)
    return matrix_mask.reshape(module.weight.shape)


def model_fault_masks(
    model: nn.Module,
    fault_map_or_array,
    column_permutations: Optional[Dict[str, Sequence[int]]] = None,
) -> Dict[str, np.ndarray]:
    """Fault masks for every mappable layer of ``model``.

    ``fault_map_or_array`` may be a :class:`FaultMap` or a
    :class:`SystolicArray`; the returned dict maps layer names to boolean
    masks shaped like the layer's weight (True = weight forced to zero).
    """
    fault_map = (
        fault_map_or_array.fault_map
        if isinstance(fault_map_or_array, SystolicArray)
        else fault_map_or_array
    )
    permutations = column_permutations or {}
    masks: Dict[str, np.ndarray] = {}
    for name, module in mappable_layers(model):
        masks[name] = layer_fault_mask(module, fault_map, permutations.get(name))
    return masks


def masked_weight_fraction(masks: Dict[str, np.ndarray]) -> float:
    """Overall fraction of weights zeroed by the given masks."""
    total = sum(mask.size for mask in masks.values())
    if total == 0:
        return 0.0
    zeroed = sum(int(mask.sum()) for mask in masks.values())
    return zeroed / total


def expected_masked_fraction(fault_rate: float) -> float:
    """Expected fraction of zeroed weights at a given PE fault rate.

    Under the periodic weight-stationary tiling, the expected fraction of
    weights landing on faulty PEs equals the PE fault rate (each weight is
    mapped to exactly one PE position).
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError("fault_rate must be in [0, 1]")
    return fault_rate


@dataclasses.dataclass(frozen=True)
class LayerMapping:
    """Summary of how one layer tiles onto a physical array."""

    layer_name: str
    gemm: GemmShape
    array_rows: int
    array_cols: int

    @property
    def row_tiles(self) -> int:
        return -(-self.gemm.reduce_dim // self.array_rows)

    @property
    def col_tiles(self) -> int:
        return -(-self.gemm.output_dim // self.array_cols)

    @property
    def num_tiles(self) -> int:
        return self.row_tiles * self.col_tiles

    @property
    def last_tile_rows(self) -> int:
        remainder = self.gemm.reduce_dim % self.array_rows
        return remainder if remainder else self.array_rows

    @property
    def last_tile_cols(self) -> int:
        remainder = self.gemm.output_dim % self.array_cols
        return remainder if remainder else self.array_cols


def model_mapping(model: nn.Module, array: SystolicArray) -> List[LayerMapping]:
    """Tiling summary for every mappable layer of a model on ``array``."""
    return [
        LayerMapping(name, layer_gemm_shape(module), array.rows, array.cols)
        for name, module in mappable_layers(model)
    ]
