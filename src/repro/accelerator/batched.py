"""Batched multi-chip evaluation and retraining for B fault-masked chips.

Evaluating a population of faulty chips is the dominant non-training cost of
the Reduce flow: Step-2 triage, resilience-trial baselines and campaign
accuracy checkpoints all need "accuracy of the pre-trained DNN under chip
b's fault masks" for many chips.  Under the weight-stationary mapping both
FAP (Zhang et al., VTS 2018) and SalvageDNN-style permutations reduce to
per-layer weight masks, so evaluating B chips is just B masked variants of
the same GEMM — which batches trivially.

:class:`BatchedFaultEvaluator` stacks the B per-chip masked weight matrices
into ``(B, N_out, K)`` tensors once, then runs the *unmodified* model forward
with every mappable layer temporarily routed through a batched GEMM.  Two
regimes are exploited:

* **Shared prefix.** Until the first masked layer, activations are identical
  for every chip, so the input batch is *not* replicated: the prefix runs
  once, and the first masked layer lowers its input once (one im2col) and
  multiplies it against all B weight sets in a single wide GEMM
  ``(P, K) @ (K, B * N_out)`` — the per-chip GEMMs share their activation
  operand, so this is a pure B-fold saving on the lowering and a large BLAS
  efficiency win over B narrow GEMMs.
* **Folded suffix.** Downstream of the first masked layer the activations
  diverge per chip; they are carried with a folded ``(B * batch, ...)``
  leading axis and each masked layer applies a stacked
  ``(B, P, K) @ (B, K, N_out)`` matmul.  Non-mappable layers (ReLU,
  eval-mode batch norm, pooling, flatten, dropout-in-eval) are strictly
  per-sample and need no changes at all.

Numerical equivalence: chip ``b``'s slice of every stacked GEMM multiplies
the same operands in the same row order as the serial per-chip pass, and all
surrounding ops are per-sample elementwise, so logits match the serial
``evaluate_accuracy`` path bit-for-bit on a given BLAS build (the wide
shared-prefix GEMM may in principle differ to float32 rounding on BLAS
builds whose kernel selection changes the reduction order with the output
width; the equivalence tests pin this down exactly on the build in use).

:class:`BatchedFaultTrainer` extends the same idea through the *backward*
pass: fault-aware retraining (FAT) of B chips that share their training
data, hyper-parameters and seed — the Step-3 inner loop of the Reduce
campaign — runs as one folded training loop with stacked per-chip weights,
per-chip optimizer state and stacked float32 keep-multiplier mask
enforcement, bit-identical to B serial ``Trainer`` runs (see the class
docstring and tests/test_batched_fat.py).
"""

from __future__ import annotations

import contextlib
import dataclasses
import queue
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.mapping import model_fault_masks
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.nn import functional as F
from repro.nn.functional import (
    _bn_axes,
    _pair,
    _bn_eval_forward,
    _bn_train_backward,
    _bn_train_forward,
    bn_running_update,
    col2im_t,
    im2col,
    im2col_t,
)
from repro.nn.tensor import Function, is_grad_enabled
from repro.backends import ChainCache, recorded, resolve_backend
from repro.backends.registry import Backend
from repro.observability import metrics, trace
from repro.utils.logging import get_logger

logger = get_logger("accelerator.batched")

MaskDict = Dict[str, np.ndarray]

# An im2col lowering is a ``C * kh * kw``-fold expansion of its batch, so an
# unbounded cache over a large eval set could dwarf the stacked weights it
# sits next to.  The default byte cap comfortably holds the fast preset's
# whole lowered test set with headroom for several layer geometries; larger
# workloads evict least-recently-used batches and simply re-lower them — a
# throughput fallback, never a correctness change.
DEFAULT_LOWERING_CACHE_MB = 128.0

#: Cache keys: ``(kind, layer_name, batch_size, batch_index)``.  ``kind``
#: namespaces the two lowering layouts that coexist in this module —
#: ``"im2col"`` yields ``(P, K)`` columns (the forward-only evaluator) and
#: ``"im2col_t"`` yields ``(K, P)`` (the trainer's eval pass) — and
#: ``batch_size`` disambiguates loaders slicing the same data differently
#: (batch ``i`` covers different rows at different batch sizes).
LoweringKey = Tuple[str, str, int, int]
LoweringEntry = Tuple[np.ndarray, int, int]


class LoweringCache:
    """Byte-capped, thread-safe LRU cache of shared-prefix eval lowerings.

    Maps :data:`LoweringKey` to the cached ``(cols, out_h, out_w)`` lowering
    of one eval batch at one layer.  Valid whenever the input to the first
    batched layer is a deterministic function of the batch — true for
    unshuffled evaluation passes over fixed weights, where the prefix holds
    no stochastic or per-chip layers — so per-checkpoint evaluations,
    successive chip chunks, and whole strategy-sweep arms over the same
    population stop re-lowering identical batches.

    One instance may be shared across evaluators, trainers, campaign runs
    and sweep arms (see :class:`EvalPipeline`), and between the evaluation
    hot loop and its background prefetch thread: ``get_or_compute`` runs at
    most one computation per key at a time (concurrent callers wait on the
    in-flight one), and eviction is least-recently-used once ``max_bytes``
    is exceeded.  An entry larger than the whole cap is returned uncached.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is None:
            max_bytes = int(DEFAULT_LOWERING_CACHE_MB * 1024 * 1024)
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[LoweringKey, LoweringEntry]" = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()
        self._inflight: Dict[LoweringKey, threading.Event] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes of cached lowering arrays."""
        return self._nbytes

    def set_max_bytes(self, max_bytes: int) -> None:
        """Change the byte cap, evicting LRU entries down to the new cap."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        with self._lock:
            self.max_bytes = int(max_bytes)
            self._evict_locked(0)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            self._update_gauge_locked()

    def _update_gauge_locked(self) -> None:
        if metrics.enabled:
            metrics.gauge("lowering_cache.bytes").set(self._nbytes)

    def _evict_locked(self, incoming: int) -> None:
        while self._entries and self._nbytes + incoming > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= evicted[0].nbytes
            if metrics.enabled:
                metrics.counter("lowering_cache.evictions").inc()

    def _put_locked(self, key: LoweringKey, value: LoweringEntry) -> None:
        incoming = value[0].nbytes
        if incoming > self.max_bytes:
            return  # larger than the whole cap: serve uncached
        self._evict_locked(incoming)
        self._entries[key] = value
        self._nbytes += incoming
        self._update_gauge_locked()

    def get_or_compute(
        self,
        key: LoweringKey,
        compute: Callable[[], LoweringEntry],
        record: bool = True,
    ) -> LoweringEntry:
        """Return the cached entry for ``key``, computing (once) on a miss.

        When another thread — the batch prefetcher — is already computing
        this key, the call waits for that computation instead of duplicating
        it.  ``record=False`` (the prefetch thread) leaves the hit/miss
        counters to the consuming thread and counts its own computations
        under ``lowering_cache.prefetched`` instead.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    if record and metrics.enabled:
                        metrics.counter("lowering_cache.hits").inc()
                    return entry
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            # Another thread owns the computation: wait and re-check.  The
            # owner may legitimately fail to cache (oversized entry, eviction
            # pressure), in which case the loop claims ownership next round.
            event.wait()
        try:
            entry = compute()
            with self._lock:
                self._put_locked(key, entry)
                if metrics.enabled:
                    name = "lowering_cache.misses" if record else "lowering_cache.prefetched"
                    metrics.counter(name).inc()
            return entry
        finally:
            with self._lock:
                del self._inflight[key]
            event.set()


class _LoweringPrefetcher:
    """Background double-buffering of the next eval batch's lowering.

    While the hot loop runs the current batch's stacked GEMMs, a single
    worker thread computes the *next* batch's shared-prefix im2col lowering
    into the shared :class:`LoweringCache`, so the loop never blocks on
    lowering.  The lowering recipe (which layer, which im2col variant) is
    learned on the first batch: the eval forward registers it via
    :meth:`offer_recipe` exactly when the raw input batch is what reaches
    the first stacked layer — the only case in which the lowering is a pure
    function of the batch that a prefix-less thread can reproduce.  When no
    recipe registers (MLP models, non-trivial prefixes), submissions are
    dropped and the pass runs exactly as before — prefetch is bit-identical
    by construction because the cache stores the same deterministic arrays
    the hot loop would compute itself.
    """

    def __init__(self, cache: LoweringCache) -> None:
        self._cache = cache
        self._recipe: Optional[Tuple[str, str, int, Callable[[np.ndarray], LoweringEntry]]] = None
        self._queue: "queue.Queue[Optional[Tuple[int, np.ndarray]]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None

    def offer_recipe(
        self,
        kind: str,
        layer_name: str,
        batch_size: int,
        lower: Callable[[np.ndarray], LoweringEntry],
    ) -> None:
        """Register the first-stacked-layer lowering recipe (first call wins)."""
        if self._recipe is None:
            self._recipe = (kind, layer_name, batch_size, lower)

    def submit(self, batch_index: int, data: np.ndarray) -> None:
        """Queue one upcoming batch for background lowering (main thread)."""
        if self._recipe is None:
            # No recipe yet (first batch still in flight, or the model's
            # first stacked layer never sees the raw batch): nothing a
            # background thread could compute faithfully.
            return
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._worker, name="lowering-prefetch", daemon=True
            )
            self._thread.start()
        self._queue.put((batch_index, data))

    def close(self) -> None:
        """Drain and join the worker (no-op when it never started)."""
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join()
            self._thread = None

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch_index, data = item
            kind, layer_name, batch_size, lower = self._recipe
            try:
                self._cache.get_or_compute(
                    (kind, layer_name, batch_size, batch_index),
                    lambda: lower(data),
                    record=False,
                )
            except Exception:  # pragma: no cover - deterministic math
                # Never take down the eval pass from the helper thread; the
                # hot loop recomputes the lowering itself on the cache miss.
                logger.exception("lowering prefetch failed for batch %d", batch_index)


def _prefetched_batches(loader, prefetcher: Optional[_LoweringPrefetcher]):
    """Iterate ``loader`` with one-batch lookahead feeding the prefetcher.

    Yields ``(batch_index, batch)`` exactly like ``enumerate(loader)``; when
    a prefetcher is given, batch ``i + 1`` is pulled (materialized) and
    submitted for background lowering *before* batch ``i`` is yielded, so
    its lowering overlaps batch ``i``'s GEMMs.
    """
    iterator = iter(loader)
    try:
        pending = next(iterator)
    except StopIteration:
        return
    index = 0
    while True:
        try:
            upcoming = next(iterator)
        except StopIteration:
            upcoming = None
        if upcoming is not None and prefetcher is not None:
            prefetcher.submit(index + 1, upcoming[0].data)
        yield index, pending
        if upcoming is None:
            return
        pending = upcoming
        index += 1


@dataclasses.dataclass
class EvalPipeline:
    """Shared configuration + state of the pipelined evaluation path.

    One instance is attached to an experiment context and rides into every
    framework, evaluator and trainer built from it, so the lowering cache is
    shared across population triage, campaign chunks and whole strategy-sweep
    arms (K arms over the same population lower each eval batch once, not K
    times).  ``prefetch`` gates the background lowering thread
    (``--no-prefetch``), ``widened_eval`` gates multi-checkpoint GEMM
    widening, and ``lowering_cache_mb`` caps the shared cache
    (``--lowering-cache-mb``).  Every knob is a pure throughput lever:
    results are bit-identical in all configurations.
    """

    prefetch: bool = True
    widened_eval: bool = True
    lowering_cache_mb: float = DEFAULT_LOWERING_CACHE_MB

    def __post_init__(self) -> None:
        if self.lowering_cache_mb < 0:
            raise ValueError(
                f"lowering_cache_mb must be non-negative, got {self.lowering_cache_mb}"
            )
        self.cache = LoweringCache(max_bytes=self._max_bytes())

    def _max_bytes(self) -> int:
        return int(self.lowering_cache_mb * 1024 * 1024)

    def configure(
        self,
        prefetch: Optional[bool] = None,
        widened_eval: Optional[bool] = None,
        lowering_cache_mb: Optional[float] = None,
    ) -> "EvalPipeline":
        """Apply CLI/engine overrides in place (shrinking the cap evicts)."""
        if prefetch is not None:
            self.prefetch = bool(prefetch)
        if widened_eval is not None:
            self.widened_eval = bool(widened_eval)
        if lowering_cache_mb is not None:
            if lowering_cache_mb < 0:
                raise ValueError(
                    f"lowering_cache_mb must be non-negative, got {lowering_cache_mb}"
                )
            self.lowering_cache_mb = float(lowering_cache_mb)
            self.cache.set_max_bytes(self._max_bytes())
        return self


def _conv_output_hw(shape: Tuple[int, ...], module: nn.Module) -> Tuple[int, int]:
    """Spatial output dims of ``module`` on an NCHW input of ``shape``.

    Mirrors :func:`im2col`'s arithmetic so fold geometry can be derived
    without waiting for the lowering (which may come from a cache).
    """
    kh, kw = _pair(module.kernel_size)
    sh, sw = _pair(module.stride)
    ph, pw = _pair(module.padding)
    out_h = (shape[2] + 2 * ph - kh) // sh + 1
    out_w = (shape[3] + 2 * pw - kw) // sw + 1
    return out_h, out_w


class UnsupportedModelError(RuntimeError):
    """The model contains layers the batched fault-aware trainer cannot stack.

    Raised at :class:`BatchedFaultTrainer` construction (never mid-training).
    Every parametric layer family in this repository (``Linear``, ``Conv2d``,
    ``BatchNorm1d/2d``) stacks, so this only fires for user-defined layers
    with trainable parameters the trainer does not know how to fold per chip.
    """

# Stacked per-chip weights cost ``chips x model-size`` floats; population
# helpers evaluate in chunks of this many chips to bound peak memory.
DEFAULT_CHIP_CHUNK = 16


@dataclasses.dataclass
class _BatchedLayer:
    """One mappable layer with its B stacked, pre-masked GEMM weights."""

    name: str
    module: nn.Module
    stack: np.ndarray  # (B, N_out, K) masked per-chip weights
    wide: Optional[np.ndarray] = None  # (K, B * N_out), built on first shared use

    @property
    def stacked_t(self) -> np.ndarray:
        """The (B, K, N_out) matmul operand (transposed view, zero-copy)."""
        return self.stack.transpose(0, 2, 1)

    def wide_weights(self) -> np.ndarray:
        """The (K, B * N_out) operand of the shared-prefix wide GEMM."""
        if self.wide is None:
            chips, out_dim, k = self.stack.shape
            self.wide = np.ascontiguousarray(
                self.stack.transpose(2, 0, 1).reshape(k, chips * out_dim)
            )
        return self.wide


def _as_eval_loader(data: Union[Dataset, DataLoader], batch_size: int) -> DataLoader:
    if isinstance(data, DataLoader):
        return data
    return DataLoader(data, batch_size=batch_size, shuffle=False, seed=0)


class BatchedFaultEvaluator:
    """Evaluate one model under B per-chip fault-mask sets in batched passes.

    Parameters
    ----------
    model:
        The model whose *current* weights are the shared starting point (for
        the Reduce flow: the pre-trained DNN).  Masked weight stacks are
        captured at construction; biases, batch-norm statistics and every
        non-mappable parameter are read live at evaluation time.
    mask_sets:
        One mask dict per chip (as produced by ``build_fap_masks``), all with
        identical layer keys.  ``True`` marks a weight forced to zero.
    lowering_cache:
        Optional shared :class:`LoweringCache`.  When given,
        :meth:`evaluate_accuracy` caches (and reuses) the shared-prefix
        im2col lowering of each eval batch keyed by batch index, so several
        evaluators walking the same unshuffled data — e.g. successive chip
        chunks of a population triage, or later arms of a strategy sweep —
        lower each batch exactly once.  Only valid across evaluators that
        share the model weights and iterate the same data in order (batch
        size rides in the cache key).
    prefetch:
        Pipeline the eval pass: while one batch's stacked GEMMs run, a
        background thread lowers the *next* batch into ``lowering_cache``
        (no-op without a cache, or when the model's first stacked layer
        does not consume the raw input batch).  Results are bit-identical
        with prefetch on or off.
    """

    def __init__(
        self,
        model: nn.Module,
        mask_sets: Sequence[MaskDict],
        lowering_cache: Optional[LoweringCache] = None,
        backend: Optional[Union[str, Backend]] = None,
        prefetch: bool = True,
    ) -> None:
        if not mask_sets:
            raise ValueError("mask_sets must contain at least one chip")
        self.model = model
        self.num_chips = len(mask_sets)
        self._lowering_cache = lowering_cache
        self._prefetch = bool(prefetch)
        self._prefetcher: Optional[_LoweringPrefetcher] = None
        self._prefetch_probe: Optional[np.ndarray] = None
        self._eval_batch_size: Optional[int] = None
        # Captured-graph execution: None keeps the historical purely-eager
        # path.  The chain cache must not outlive this evaluator — captured
        # graphs freeze the model's buffer *objects* (weights are read live),
        # and the evaluator contract already pins those for its lifetime.
        self._backend = resolve_backend(backend)
        self._chain_cache = (
            ChainCache(self._backend, name="eval.forward")
            if self._backend is not None
            else None
        )
        # Index of the eval batch currently in flight (None outside
        # evaluate_accuracy: inputs of unknown identity are never cached).
        self._batch_index: Optional[int] = None
        key_set = set(mask_sets[0])
        for index, masks in enumerate(mask_sets[1:], start=1):
            if set(masks) != key_set:
                raise ValueError(
                    f"mask set {index} has layer keys {sorted(masks)} != {sorted(key_set)}"
                )
        modules = dict(model.named_modules())
        self._layers: List[_BatchedLayer] = []
        # True while the forward pass is still on the shared (un-replicated)
        # prefix; flipped by the first masked layer that executes.
        self._shared_prefix = True
        for name in mask_sets[0]:
            module = modules.get(name)
            if module is None:
                raise KeyError(f"mask refers to unknown layer {name!r}")
            weight = getattr(module, "weight", None)
            if weight is None:
                raise ValueError(f"layer {name!r} has no weight to mask")
            if not isinstance(module, (nn.Linear, nn.Conv2d)):
                raise TypeError(f"layer {name!r} is not mappable (Linear/Conv2d)")
            out_dim = weight.data.shape[0]
            stacked = np.empty((self.num_chips,) + weight.data.shape, dtype=weight.data.dtype)
            for chip, masks in enumerate(mask_sets):
                mask = masks[name]
                if mask.shape != weight.data.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} does not match weight shape "
                        f"{weight.data.shape} for layer {name!r}"
                    )
                # np.where (not multiply) so masked entries are exact +0.0,
                # bit-identical to the serial ``weight.data[mask] = 0.0`` path.
                stacked[chip] = np.where(mask, weight.data.dtype.type(0), weight.data)
            self._layers.append(
                _BatchedLayer(
                    name=name, module=module, stack=stacked.reshape(self.num_chips, out_dim, -1)
                )
            )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_fault_maps(
        cls,
        model: nn.Module,
        fault_maps: Iterable[FaultMap],
        column_permutations: Optional[Dict[str, Sequence[int]]] = None,
    ) -> "BatchedFaultEvaluator":
        """Build the evaluator straight from per-chip fault maps."""
        mask_sets = [
            model_fault_masks(model, fault_map, column_permutations)
            for fault_map in fault_maps
        ]
        return cls(model, mask_sets)

    # -- batched forward plumbing --------------------------------------------

    def _expand_shared(self, gemm_input: np.ndarray, layer: _BatchedLayer) -> np.ndarray:
        """Shared-prefix GEMM: one ``(P, K)`` operand against all B chips.

        Returns the folded ``(B, P, N_out)`` result.  The per-chip weight
        columns are concatenated into one ``(K, B * N_out)`` operand so a
        single wide GEMM replaces B narrow ones.
        """
        rows = gemm_input.shape[0]
        out = gemm_input @ layer.wide_weights()  # (P, B * N_out)
        return out.reshape(rows, self.num_chips, -1).transpose(1, 0, 2)

    # Each hot step below executes through :func:`recorded` so an active
    # graph capture sees the evaluator as a chain of named IR nodes
    # (``eval.im2col -> eval.gemm -> eval.bias -> eval.fold_*``).  Outside a
    # capture, ``recorded`` is a direct call — the eager path is unchanged.

    def _gemm_kernel(self, layer: _BatchedLayer, shared: bool):
        if shared:
            return lambda data: self._expand_shared(data, layer)

        def folded_gemm(data: np.ndarray) -> np.ndarray:
            per_chip = data.shape[0] // self.num_chips
            return np.matmul(
                data.reshape(self.num_chips, per_chip, data.shape[1]), layer.stacked_t
            )

        return folded_gemm

    @staticmethod
    def _bias_kernel(module: nn.Module):
        def add_bias(out: np.ndarray) -> np.ndarray:
            out += module.bias.data
            return out

        return add_bias

    def _linear_forward(self, layer: _BatchedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            data = x.data
            if data.ndim != 2:
                data = recorded(
                    "eval.flatten", (data,), lambda d: d.reshape(d.shape[0], -1)
                )
            shared = self._shared_prefix
            self._shared_prefix = False
            out = recorded(
                "eval.gemm",
                (data,),
                self._gemm_kernel(layer, shared),
                attrs={"layer": layer, "shared": shared},
            )
            if layer.module.bias is not None:
                out = recorded(
                    "eval.bias",
                    (out,),
                    self._bias_kernel(layer.module),
                    attrs={"module": layer.module},
                )
            out = recorded(
                "eval.fold2d", (out,), lambda o: o.reshape(o.shape[0] * o.shape[1], -1)
            )
            return nn.Tensor(out)

        return forward

    def _im2col_kernel(self, layer: _BatchedLayer, shared: bool):
        module = layer.module

        def lower_cols(data: np.ndarray) -> np.ndarray:
            lower = lambda: im2col(data, module.kernel_size, module.stride, module.padding)
            # ``_batch_index`` is read at call time (not capture time) so a
            # replayed graph consults the lowering cache for the batch that
            # is actually in flight.
            if shared and self._lowering_cache is not None and self._batch_index is not None:
                prefetcher = self._prefetcher
                if prefetcher is not None and data is self._prefetch_probe:
                    # The raw input batch reaches this layer unchanged, so
                    # upcoming batches can be lowered off-thread faithfully.
                    prefetcher.offer_recipe(
                        "im2col",
                        layer.name,
                        self._eval_batch_size,
                        lambda d: im2col(
                            d, module.kernel_size, module.stride, module.padding
                        ),
                    )
                cols, _, _ = self._lowering_cache.get_or_compute(
                    ("im2col", layer.name, self._eval_batch_size, self._batch_index),
                    lower,
                )
            else:
                cols, _, _ = lower()
            return cols

        return lower_cols

    @staticmethod
    def _fold_nchw_kernel(out_h: int, out_w: int):
        def fold(out: np.ndarray) -> np.ndarray:
            folded = out.shape[0] * out.shape[1] // (out_h * out_w)
            return np.ascontiguousarray(
                out.reshape(folded, out_h, out_w, -1).transpose(0, 3, 1, 2)
            )

        return fold

    def _conv_forward(self, layer: _BatchedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            module = layer.module
            data = x.data
            shared = self._shared_prefix
            self._shared_prefix = False
            out_h, out_w = _conv_output_hw(data.shape, module)
            cols = recorded(
                "eval.im2col",
                (data,),
                self._im2col_kernel(layer, shared),
                attrs={"layer": layer, "shared": shared},
            )
            out = recorded(
                "eval.gemm",
                (cols,),
                self._gemm_kernel(layer, shared),
                attrs={"layer": layer, "shared": shared},
            )
            if module.bias is not None:
                out = recorded(
                    "eval.bias",
                    (out,),
                    self._bias_kernel(module),
                    attrs={"module": module},
                )
            out = recorded(
                "eval.fold_nchw",
                (out,),
                self._fold_nchw_kernel(out_h, out_w),
                attrs={"out_h": out_h, "out_w": out_w},
            )
            return nn.Tensor(out)

        return forward

    @contextlib.contextmanager
    def _patched(self):
        """Temporarily route every mappable layer through its batched GEMM."""
        patched: List[nn.Module] = []
        try:
            for layer in self._layers:
                if "forward" in layer.module.__dict__:
                    raise RuntimeError(
                        f"layer {layer.name!r} already has a patched forward "
                        "(nested batched evaluation is not supported)"
                    )
                make = (
                    self._linear_forward
                    if isinstance(layer.module, nn.Linear)
                    else self._conv_forward
                )
                object.__setattr__(layer.module, "forward", make(layer))
                patched.append(layer.module)
            yield
        finally:
            for module in reversed(patched):
                object.__delattr__(module, "forward")

    def _forward_all_chips(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for one (shared) input batch under every chip: (B, n, C)."""
        self._shared_prefix = True
        logits = self.model(nn.Tensor(inputs)).data
        chips = self.num_chips
        if self._shared_prefix:
            # No masked layer executed (empty mask sets): every chip sees the
            # same logits.
            return recorded(
                "eval.broadcast_logits",
                (logits,),
                lambda l: np.broadcast_to(l[None], (chips,) + l.shape),
            )
        n = inputs.shape[0]
        return recorded(
            "eval.unfold_logits", (logits,), lambda l: l.reshape(chips, n, -1)
        )

    def _run_forward(self, inputs: np.ndarray) -> np.ndarray:
        """One batch through the selected backend (or purely eagerly)."""
        if self._chain_cache is None:
            return self._forward_all_chips(inputs)
        return self._chain_cache.run((inputs,), self._forward_all_chips)

    # -- evaluation ----------------------------------------------------------

    def evaluate_logits(self, inputs: Union[nn.Tensor, np.ndarray]) -> np.ndarray:
        """Logits of one input batch under every chip: ``(B, n, classes)``."""
        data = inputs.data if isinstance(inputs, nn.Tensor) else np.asarray(inputs)
        was_training = self.model.training
        self.model.eval()
        try:
            with nn.no_grad(), self._patched():
                return self._run_forward(data).copy()
        finally:
            if was_training:
                self.model.train()

    def evaluate_accuracy(
        self,
        data: Union[Dataset, DataLoader],
        batch_size: int = 128,
    ) -> List[float]:
        """Per-chip top-1 accuracy on ``data`` (one pass over the loader)."""
        loader = _as_eval_loader(data, batch_size=batch_size)
        correct = np.zeros(self.num_chips, dtype=np.int64)
        total = 0
        was_training = self.model.training
        self.model.eval()
        prefetcher = (
            _LoweringPrefetcher(self._lowering_cache)
            if self._prefetch and self._lowering_cache is not None
            else None
        )
        self._prefetcher = prefetcher
        self._eval_batch_size = batch_size
        try:
            with nn.no_grad(), self._patched():
                for batch_index, (inputs, targets) in _prefetched_batches(
                    loader, prefetcher
                ):
                    self._batch_index = batch_index
                    data_array = inputs.data
                    self._prefetch_probe = data_array
                    n = data_array.shape[0]
                    logits = self._run_forward(data_array)
                    predictions = logits.argmax(axis=-1)
                    correct += (predictions == np.asarray(targets)[None, :]).sum(axis=1)
                    total += n
        finally:
            self._batch_index = None
            self._prefetch_probe = None
            self._prefetcher = None
            self._eval_batch_size = None
            if prefetcher is not None:
                prefetcher.close()
            if was_training:
                self.model.train()
        if total == 0:
            return [0.0] * self.num_chips
        return [int(c) / total for c in correct]


def evaluate_chip_accuracies(
    model: nn.Module,
    data: Union[Dataset, DataLoader],
    mask_sets: Sequence[MaskDict],
    batch_size: int = 128,
    chip_chunk: int = DEFAULT_CHIP_CHUNK,
    lowering_cache: Optional[LoweringCache] = None,
    backend: Optional[Union[str, Backend]] = None,
    prefetch: bool = True,
) -> List[float]:
    """Accuracy of ``model`` under each chip's masks, batched in chip chunks.

    The convenience wrapper over :class:`BatchedFaultEvaluator` used by the
    population triage and campaign checkpoints: peak memory is bounded by
    ``chip_chunk`` stacked weight copies plus the byte-capped
    :class:`LoweringCache`, regardless of population size.

    Every chunk walks the same unshuffled eval batches, so the shared-prefix
    im2col lowering is cached across chunks (``lowering_cache``, created per
    call when not supplied): each test batch is lowered once for the whole
    population instead of once per chunk.  Callers evaluating the *same
    model and data* repeatedly (e.g. triage over a population larger than
    one mask-chunk, or successive sweep arms) may pass their own cache to
    extend the reuse.  ``prefetch`` pipelines each pass: the next batch's
    lowering is computed on a background thread while the current batch's
    stacked GEMMs run (bit-identical results either way).
    """
    if chip_chunk < 1:
        raise ValueError(f"chip_chunk must be >= 1, got {chip_chunk}")
    cache = lowering_cache if lowering_cache is not None else LoweringCache()
    accuracies: List[float] = []
    for start in range(0, len(mask_sets), chip_chunk):
        evaluator = BatchedFaultEvaluator(
            model,
            mask_sets[start:start + chip_chunk],
            lowering_cache=cache,
            backend=backend,
            prefetch=prefetch,
        )
        accuracies.extend(evaluator.evaluate_accuracy(data, batch_size=batch_size))
    return accuracies


# ---------------------------------------------------------------------------
# Batched multi-chip fault-aware retraining (backward pass)
# ---------------------------------------------------------------------------
#
# Retraining B chips on *shared* mini-batches is the training-time analogue of
# the evaluator above: every chip sees the same input batch, so the first
# stacked layer consumes one shared GEMM operand (one lowering) and everything
# downstream is carried with a folded ``(B * batch, ...)`` leading axis and
# stacked per-chip GEMMs.  Unlike evaluation, *every* parametric layer must be
# stacked — per-chip gradients diverge all weights after the first optimizer
# step — and the backward pass mirrors the serial autograd Functions
# slice-for-slice:
#
# * each stacked ``np.matmul`` presents chip ``b``'s 2-D slice to BLAS with
#   the same memory characteristics (contiguity / transposition) as the
#   serial ``Linear``/``Conv2dFunction`` GEMM, so slices are bit-identical on
#   a given BLAS build (pinned by tests/test_batched_fat.py);
# * all surrounding ops (activations, pooling, flatten, loss log-softmax) are
#   strictly per-sample and run unmodified on folded tensors;
# * the loss is a per-chip mean, so one backward from the summed per-chip
#   losses delivers exactly the gradient each serial run computes.


def _fat_timer(name: str):
    """Timer attributed to the FAT phase the caller is running in.

    The stacked Functions serve both the training step (grad enabled) and the
    trainer's checkpoint-eval forward (under ``nn.no_grad()``); splitting the
    timers by grad mode keeps eval-side GEMM/lowering cost out of the training
    attribution (``fat.train.*`` vs ``fat.eval.*``).
    """
    phase = "train" if is_grad_enabled() else "eval"
    return metrics.timer(f"fat.{phase}.{name}")


class _StackedLinearFunction(Function):
    """B per-chip affine transforms sharing one autograd node.

    ``shared=True`` (the first stacked layer of a step): ``x`` is the shared
    ``(n, K)`` batch and the forward runs one wide GEMM
    ``(n, K) @ (K, B * N)`` — the per-chip weight columns concatenated — whose
    per-chip slices equal the serial ``x @ W_b.T``.  The backward splits the
    folded gradient per chip and computes the stacked weight gradients
    ``grad_b.T @ x`` against the shared operand.

    ``shared=False``: ``x`` is folded ``(B * n, K)`` and forward/backward are
    stacked batched matmuls whose slices mirror the serial GEMMs exactly.
    """

    capture_name = "stacked_linear"

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,  # (B, N, K)
        bias: Optional[np.ndarray],  # (B, N)
        num_chips: int,
        shared: bool,
    ) -> np.ndarray:
        self.save_for_backward(x, weight, bias is not None, num_chips, shared)
        if shared:
            chips, out_dim, k = weight.shape
            wide = weight.transpose(2, 0, 1).reshape(k, chips * out_dim)  # copy
            out = (x @ wide).reshape(x.shape[0], chips, out_dim).transpose(1, 0, 2)
        else:
            per_chip = x.shape[0] // num_chips
            out = np.matmul(
                x.reshape(num_chips, per_chip, x.shape[1]), weight.transpose(0, 2, 1)
            )
        if bias is not None:
            out = out + bias[:, None, :]
        else:
            out = np.ascontiguousarray(out)
        return out.reshape(out.shape[0] * out.shape[1], out.shape[2])

    def backward(self, grad_output: np.ndarray):
        x, weight, has_bias, num_chips, shared = self.saved
        out_dim = weight.shape[1]
        g = grad_output.reshape(num_chips, grad_output.shape[0] // num_chips, out_dim)
        if shared:
            x_op: np.ndarray = x  # (n, K), broadcast against all chips
        else:
            x_op = x.reshape(num_chips, x.shape[0] // num_chips, x.shape[1])
        # Chip b's slice is the serial ``grad_output.T @ x`` (same transposed
        # view against the same activation operand).
        grad_w = np.matmul(g.transpose(0, 2, 1), x_op)
        grad_x = None
        if not self.needs_input_grad or self.needs_input_grad[0]:
            grad_x_folded = np.matmul(g, weight)  # (B, n, K)
            if shared:
                # The shared operand feeds every chip's branch, so its
                # gradient sums over chips (only reachable when the shared
                # input itself requires grad — never the data batch).
                grad_x = grad_x_folded.sum(axis=0)
            else:
                grad_x = grad_x_folded.reshape(x.shape)
        if has_bias:
            grad_b = g.sum(axis=1)
            return grad_x, grad_w, grad_b
        return grad_x, grad_w


def _stacked_im2col_t(
    x: np.ndarray,
    num_chips: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, int, int]:
    """Lower folded ``(B * n, C, H, W)`` activations into a ``(B, K, P)`` stack.

    Chip ``b``'s slice is exactly ``im2col_t(x[b * n:(b + 1) * n], ...)`` —
    same gather, same element order — produced in one copy straight into the
    stacked layout (no intermediate folded ``colsT`` + re-blocking pass).
    """
    from repro.nn.functional import _pad_nchw

    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    total, c, h, w = x.shape
    per_chip = total // num_chips
    if ph or pw:
        x = _pad_nchw(x, ph, pw)
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    if padded_h < kh or padded_w < kw:
        raise ValueError(
            f"kernel {kernel_size} larger than padded input ({padded_h}, {padded_w})"
        )
    out_h = (padded_h - kh) // sh + 1
    out_w = (padded_w - kw) // sw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    if sh != 1 or sw != 1:
        windows = windows[:, :, ::sh, ::sw, :, :]
    # (B*n, c, oh, ow, kh, kw) -> split the chip axis (still a view).
    split = windows.reshape((num_chips, per_chip) + windows.shape[1:])
    stack = np.empty(
        (num_chips, c * kh * kw, per_chip * out_h * out_w), dtype=x.dtype
    )
    dest = stack.reshape(num_chips, c, kh, kw, per_chip, out_h, out_w)
    np.copyto(dest, split.transpose(0, 2, 5, 6, 1, 3, 4))
    return stack, out_h, out_w


def _stacked_col2im_t(
    cols_stack: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    num_chips: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`_stacked_im2col_t` back to folded NCHW.

    One phase sweep over the whole stack; chip ``b``'s slice receives exactly
    the adds ``col2im_t(cols_stack[b], ...)`` performs, in the same order.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    total, c, h, w = x_shape
    per_chip = total // num_chips
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    dx = np.zeros((total, c, padded_h, padded_w), dtype=cols_stack.dtype)
    dx_stack = dx.reshape(num_chips, per_chip, c, padded_h, padded_w)
    colsK = cols_stack.reshape(num_chips, c, kh, kw, per_chip, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            view = dx_stack[:, :, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
            view += colsK[:, :, i, j].transpose(0, 2, 1, 3, 4)
    if ph or pw:
        dx = dx[:, :, ph:ph + h, pw:pw + w]
    return dx


class _StackedConv2dFunction(Function):
    """B per-chip 2-D convolutions sharing one im2col lowering per step.

    The shared first layer lowers the input batch once (``im2col_t``) and
    multiplies it against all B weight matrices in one wide ``(B * O, K) @
    (K, P)`` GEMM; folded layers lower the folded activations straight into a
    ``(B, K, P)`` stack and run stacked GEMMs.  Every GEMM presents chip
    ``b``'s slice (or row block) to BLAS exactly like the serial
    :class:`~repro.nn.functional.Conv2dFunction` does.
    """

    capture_name = "stacked_conv2d"

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,  # (B, O, C, kh, kw)
        bias: Optional[np.ndarray],  # (B, O)
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        num_chips: int,
        shared: bool,
        lowering: Optional[Tuple[np.ndarray, int, int]] = None,
    ) -> np.ndarray:
        chips, out_channels, in_channels, kh, kw = weight.shape
        if x.shape[1] != in_channels:
            raise ValueError(
                f"input has {x.shape[1]} channels but weight expects {in_channels}"
            )
        w2 = weight.reshape(chips, out_channels, -1)
        if shared:
            per_chip = x.shape[0]
            if lowering is not None:
                # Pre-lowered shared input (the trainer's eval-pass cache);
                # only read here, never saved for backward (eval runs under
                # no_grad), so the cached array is never aliased or mutated.
                cols_op, out_h, out_w = lowering
            else:
                with _fat_timer("im2col_seconds"):
                    cols_op, out_h, out_w = im2col_t(x, (kh, kw), stride, padding)  # (K, P)
            # Wide GEMM: all chips' weight rows in one (B * O, K) @ (K, P)
            # call.  Per-chip row blocks are bit-identical to the serial
            # (O, K) @ (K, P) GEMM on this BLAS build (pinned by tests), and
            # one M-wide call is far faster than B narrow ones.
            with _fat_timer("gemm_seconds"):
                out_t = (w2.reshape(chips * out_channels, -1) @ cols_op).reshape(
                    chips, out_channels, -1
                )
        else:
            per_chip = x.shape[0] // num_chips
            with _fat_timer("im2col_seconds"):
                cols_op, out_h, out_w = _stacked_im2col_t(
                    x, num_chips, (kh, kw), stride, padding
                )
            with _fat_timer("gemm_seconds"):
                out_t = np.matmul(w2, cols_op)  # (B, O, P)
        if bias is not None:
            out_t += bias[:, :, None]
        out = out_t.reshape(chips, out_channels, per_chip, out_h, out_w).transpose(
            0, 2, 1, 3, 4
        )
        if is_grad_enabled():
            self.save_for_backward(
                cols_op, weight, x.shape, (kh, kw), stride, padding,
                out_h, out_w, bias is not None, num_chips, shared,
            )
        out = np.ascontiguousarray(out)
        return out.reshape(chips * per_chip, out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray):
        (cols_op, weight, x_shape, kernel, stride, padding,
         out_h, out_w, has_bias, num_chips, shared) = self.saved
        chips, out_channels = weight.shape[:2]
        per_chip = grad_output.shape[0] // num_chips
        w2 = weight.reshape(chips, out_channels, -1)
        # (B*n, O, oh, ow) -> (B, O, n*oh*ow): chip b's block is the serial
        # channel-major gather of its own gradient.
        g_t = np.ascontiguousarray(
            grad_output.reshape(num_chips, per_chip, out_channels, out_h, out_w)
            .transpose(0, 2, 1, 3, 4)
        ).reshape(num_chips, out_channels, -1)
        # Backward only ever runs during training steps.
        with metrics.timer("fat.train.gemm_seconds"):
            if shared:
                # Wide GEMM against the shared columns: one (B * O, P) @ (P, K)
                # call whose per-chip row blocks equal the serial NT GEMM.
                grad_w = (
                    g_t.reshape(num_chips * out_channels, -1) @ cols_op.T
                ).reshape(num_chips, out_channels, -1)
            else:
                grad_w = np.matmul(g_t, cols_op.transpose(0, 2, 1))
        grad_w = grad_w.reshape(weight.shape)
        grad_x = None
        if not self.needs_input_grad or self.needs_input_grad[0]:
            grad_colsT = np.matmul(w2.transpose(0, 2, 1), g_t)  # (B, K, P)
            if shared:
                grad_x = np.zeros(x_shape, dtype=grad_output.dtype)
                for chip in range(num_chips):
                    grad_x += col2im_t(
                        grad_colsT[chip], x_shape, kernel, stride, padding, out_h, out_w
                    )
            else:
                grad_x = _stacked_col2im_t(
                    grad_colsT, x_shape, num_chips, kernel, stride, padding,
                    out_h, out_w,
                )
        if has_bias:
            grad_bias = g_t.sum(axis=2)
            return grad_x, grad_w, grad_bias
        return grad_x, grad_w


class _StackedNllLossFunction(Function):
    """Per-chip mean NLL of folded log-probabilities: returns ``(B,)`` losses.

    Chip ``b``'s value and gradient replicate the serial
    ``F.cross_entropy(..., reduction="mean")`` arithmetic operation-for-
    operation (including the optional label-smoothing composition), so one
    backward from the summed losses is bit-identical to B serial backwards.
    """

    capture_name = "stacked_nll_loss"

    def forward(
        self,
        log_probs: np.ndarray,
        targets: np.ndarray,
        num_chips: int,
        label_smoothing: float,
    ) -> np.ndarray:
        if log_probs.ndim != 2:
            raise ValueError(
                f"stacked loss expects (B * n, C) log-probabilities, got {log_probs.shape}"
            )
        total_rows = log_probs.shape[0]
        if total_rows % num_chips:
            raise ValueError(
                f"{total_rows} rows do not fold into {num_chips} chips"
            )
        per_chip = total_rows // num_chips
        targets = np.asarray(targets).astype(np.int64).reshape(-1)
        if targets.shape[0] != per_chip:
            raise ValueError(
                f"targets length {targets.shape[0]} does not match per-chip batch {per_chip}"
            )
        tiled = np.tile(targets, num_chips)
        picked = log_probs[np.arange(total_rows), tiled].reshape(num_chips, per_chip)
        # Serial: -picked.mean() per chip; mean over each contiguous row uses
        # the same pairwise reduction as the standalone serial vector.
        hard = -picked.mean(axis=1)
        self.save_for_backward(
            log_probs.shape, tiled, per_chip, label_smoothing, log_probs.dtype, num_chips
        )
        if label_smoothing <= 0.0:
            return hard.astype(log_probs.dtype, copy=False)
        if not 0.0 <= label_smoothing < 1.0:
            # Same validation (and message) as the serial ``cross_entropy``.
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        # Mirror the serial composition
        #   hard * (1 - ls) + (-(sum(axis=-1).mean()) * (1 / C)) * ls
        # with the same float32 scalar coercions in the same order.
        num_classes = log_probs.shape[-1]
        w_hard = np.asarray(1.0 - label_smoothing, dtype=log_probs.dtype)
        w_smooth = np.asarray(label_smoothing, dtype=log_probs.dtype)
        inv_c = np.asarray(1.0 / num_classes, dtype=log_probs.dtype)
        smooth = -log_probs.sum(axis=-1).reshape(num_chips, per_chip).mean(axis=1)
        return hard * w_hard + (smooth * inv_c) * w_smooth

    def backward(self, grad_output: np.ndarray):
        shape, tiled, per_chip, label_smoothing, dtype, num_chips = self.saved
        grad = np.zeros(shape, dtype=dtype)
        # Same double-literal division and float32 assignment as the serial
        # NllLossFunction ("mean" reduction over the per-chip batch).
        grad[np.arange(shape[0]), tiled] = -1.0 / per_chip
        g3 = grad.reshape(num_chips, per_chip, shape[1])
        upstream = np.asarray(grad_output, dtype=dtype).reshape(num_chips)
        if label_smoothing <= 0.0:
            g3 *= upstream[:, None, None]
            return (grad,)
        num_classes = shape[1]
        w_hard = np.asarray(1.0 - label_smoothing, dtype=dtype)
        w_smooth = np.asarray(label_smoothing, dtype=dtype)
        inv_c = np.asarray(1.0 / num_classes, dtype=dtype)
        # Hard branch: upstream * (1 - ls) scales the -1/n entries.
        g3 *= (upstream * w_hard)[:, None, None]
        # Smooth branch, replayed through the serial op chain
        # Mul(ls) -> Mul(1/C) -> Neg -> Mean(/n) -> broadcast over (n, C).
        smooth_grad = -((upstream * w_smooth) * inv_c) / per_chip
        g3 += smooth_grad[:, None, None]
        return (grad,)


def stacked_cross_entropy(
    logits: nn.Tensor,
    targets: np.ndarray,
    num_chips: int,
    label_smoothing: float = 0.0,
) -> nn.Tensor:
    """Per-chip cross-entropy of folded ``(B * n, C)`` logits: a ``(B,)`` tensor."""
    log_probs = logits.log_softmax(axis=-1)
    return _StackedNllLossFunction.apply(
        log_probs, np.asarray(targets), num_chips, float(label_smoothing)
    )


class _StackedBatchNormFunction(Function):
    """B per-chip training-mode batch norms with per-chip-fold statistics.

    Chip ``b``'s fold of the folded ``(B * n, ...)`` activations is
    normalised with its *own* batch statistics using the exact serial fused
    arithmetic — :func:`repro.nn.functional._bn_train_forward` /
    ``_bn_train_backward`` applied to the contiguous per-chip slice — so
    outputs and gradients are bit-identical to B serial
    :class:`~repro.nn.functional.BatchNormFunction` calls.  ``shared=True``
    (a batch norm reached before any other stacked layer) reads the
    un-replicated shared input once per chip and emits a folded output:
    per-chip gamma/beta diverge after the first optimizer step, so a stacked
    batch norm always ends the shared prefix.

    ``stats_out`` collects ``(batch_mean, biased_batch_var)`` per chip for
    the per-chip running-statistics update.
    """

    capture_name = "stacked_batch_norm"

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,  # (B, C) per-chip gamma
        bias: np.ndarray,  # (B, C) per-chip beta
        num_chips: int,
        eps: float,
        shared: bool,
        stats_out: Optional[list] = None,
    ) -> np.ndarray:
        reduce_axes, param_shape = _bn_axes(x.ndim)
        per_chip = x.shape[0] if shared else x.shape[0] // num_chips
        out = np.empty((num_chips * per_chip,) + x.shape[1:], dtype=x.dtype)
        normalised = np.empty_like(out)
        inv_stds: List[np.ndarray] = []
        for chip in range(num_chips):
            fold = slice(chip * per_chip, (chip + 1) * per_chip)
            x_b = x if shared else x[fold]
            out_b, norm_b, inv_std, mean, var = _bn_train_forward(
                x_b,
                weight[chip].reshape(param_shape),
                bias[chip].reshape(param_shape),
                reduce_axes,
                eps,
            )
            out[fold] = out_b
            normalised[fold] = norm_b
            inv_stds.append(inv_std)
            if stats_out is not None:
                stats_out.append((mean.reshape(-1), var.reshape(-1)))
        if is_grad_enabled():
            self.save_for_backward(
                weight, normalised, inv_stds, reduce_axes, param_shape,
                num_chips, per_chip, shared, x.shape,
            )
        return out

    def backward(self, grad_output: np.ndarray):
        (weight, normalised, inv_stds, reduce_axes, param_shape,
         num_chips, per_chip, shared, x_shape) = self.saved
        grad_w = np.empty_like(weight)
        grad_b = np.empty_like(weight)
        # Skip the dx computation entirely for a first-layer batch norm
        # whose input is the data batch (mirrors the conv/linear gating).
        need_x = not self.needs_input_grad or self.needs_input_grad[0]
        grad_x: Optional[np.ndarray] = None
        if need_x:
            if shared:
                # The shared input feeds every chip's branch, so its gradient
                # sums over chips (only reachable when the shared input itself
                # requires grad — never the data batch).
                grad_x = np.zeros(x_shape, dtype=grad_output.dtype)
            else:
                grad_x = np.empty(x_shape, dtype=grad_output.dtype)
        for chip in range(num_chips):
            fold = slice(chip * per_chip, (chip + 1) * per_chip)
            dx_b, dgamma, dbeta = _bn_train_backward(
                grad_output[fold],
                weight[chip].reshape(param_shape),
                normalised[fold],
                inv_stds[chip],
                reduce_axes,
                need_input_grad=need_x,
            )
            grad_w[chip] = dgamma
            grad_b[chip] = dbeta
            if need_x:
                if shared:
                    grad_x += dx_b
                else:
                    grad_x[fold] = dx_b
        return grad_x, grad_w, grad_b


@dataclasses.dataclass
class _StackedNormLayer:
    """One batch-norm layer with B stacked per-chip parameters and statistics.

    Unlike the GEMM layers, batch norm carries trainable per-chip gamma/beta
    *and* non-trainable per-chip running statistics that diverge as soon as
    per-chip activations do — both live here as ``(B, C)`` stacks; the
    module's own buffers are never touched.
    """

    name: str
    module: nn.Module
    weight: "nn.Parameter"  # (B, C) gamma
    bias: "nn.Parameter"  # (B, C) beta
    running_mean: np.ndarray  # (B, C) float32
    running_var: np.ndarray  # (B, C) float32


def _keep_multiplier_kernel(values: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Keep-multiplier mask enforcement, shared as an IR op kernel."""
    np.multiply(values, keep, out=values)
    return values


@dataclasses.dataclass
class _StackedLayer:
    """One parametric layer with its B stacked per-chip weights (and masks)."""

    name: str
    module: nn.Module
    weight: "nn.Parameter"  # (B,) + weight shape
    bias: Optional["nn.Parameter"]  # (B, out) or None
    keep: Optional[np.ndarray]  # (B,) + weight shape float32; masked layers only

    def enforce_weight(self) -> None:
        if self.keep is not None:
            recorded(
                "mask.keep_multiplier",
                (self.weight.data, self.keep),
                _keep_multiplier_kernel,
            )

    def enforce_grad(self) -> None:
        if self.keep is not None and self.weight.grad is not None:
            recorded(
                "mask.keep_multiplier",
                (self.weight.grad, self.keep),
                _keep_multiplier_kernel,
            )


# Upper bound on the summed stacked-parameter floats a widened multi-
# checkpoint eval may concatenate (64 M float32 = 256 MB of weight stacks;
# folded activations scale with the same C * B factor, so this doubles as a
# proxy cap on them).  Over the cap, deferred checkpoints evaluate one at a
# time — a memory fallback, never a correctness change.
WIDENED_EVAL_MAX_FLOATS = 64 * 1024 * 1024


@dataclasses.dataclass
class _EvalSnapshot:
    """Stacked weights + metadata of one deferred checkpoint evaluation."""

    epochs: float
    steps: int
    train_losses: np.ndarray  # (B,) float64, NaN where no steps ran
    layer_weights: List[np.ndarray]
    layer_biases: List[Optional[np.ndarray]]
    norm_weights: List[np.ndarray]
    norm_biases: List[np.ndarray]
    norm_means: List[np.ndarray]
    norm_vars: List[np.ndarray]

    @property
    def num_floats(self) -> int:
        arrays: List[Optional[np.ndarray]] = [
            *self.layer_weights, *self.layer_biases, *self.norm_weights,
            *self.norm_biases, *self.norm_means, *self.norm_vars,
        ]
        return sum(a.size for a in arrays if a is not None)


class BatchedFaultTrainer:
    """Fault-aware retraining of B chips in one batched training loop.

    Mirrors :class:`repro.training.Trainer` for B chips that share the same
    starting weights (the model's current state), training data, hyper-
    parameters, seed and epoch budget but differ in their fault masks: every
    optimizer step runs one folded forward/backward in which each GEMM is
    stacked over chips, followed by per-chip optimizer updates on the stacked
    parameters (the optimizer's elementwise update math over a ``(B, ...)``
    stack *is* B independent per-chip updates; gradient clipping is the only
    cross-element op and uses :func:`repro.nn.optim.clip_grad_norm_per_chip`).

    Exact serial equivalence: given the same :class:`TrainingConfig`, chip
    ``b``'s weights, losses and accuracies are bit-identical to a serial
    ``Trainer(model, ..., masks=mask_sets[b])`` run on this BLAS build
    (tests/test_batched_fat.py pins this).  The model itself is never
    modified: stacked copies are trained, and per-chip results are read back
    with :meth:`chip_state_dict`.

    Supported models are compositions of ``Linear``/``Conv2d`` (stacked
    GEMMs), ``BatchNorm1d/2d`` (stacked per-chip gamma/beta and running
    statistics with per-chip-fold batch statistics — see
    :class:`_StackedBatchNormFunction`), parameter-free per-sample layers
    (activations, pooling, flatten) and ``Dropout`` (shared noise, drawn
    from the same trainer-seeded stream as the serial runs).  Only unknown
    user-defined parametric layers raise :class:`UnsupportedModelError`.
    """

    def __init__(
        self,
        model: nn.Module,
        mask_sets: Sequence[MaskDict],
        train_data: Union[Dataset, DataLoader],
        eval_data: Union[Dataset, DataLoader],
        config=None,
        backend: Optional[Union[str, Backend]] = None,
        lowering_cache: Optional[LoweringCache] = None,
        prefetch: bool = True,
        widened_eval: bool = True,
    ) -> None:
        from repro.training import (
            TrainingConfig,
            _as_loader,
            require_nonempty_train_loader,
            seed_stochastic_layers,
        )
        from repro.utils.rng import derive_seed

        if not mask_sets:
            raise ValueError("mask_sets must contain at least one chip")
        key_set = set(mask_sets[0])
        for index, masks in enumerate(mask_sets[1:], start=1):
            if set(masks) != key_set:
                raise ValueError(
                    f"mask set {index} has layer keys {sorted(masks)} != {sorted(key_set)}"
                )
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self.num_chips = len(mask_sets)
        self.train_loader = _as_loader(
            train_data,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            seed=derive_seed(self.config.seed, "train-loader"),
        )
        require_nonempty_train_loader(self.train_loader)
        self.eval_data = eval_data
        self.batches_per_epoch = len(self.train_loader)
        self.steps_taken = 0
        # True while the current forward pass is still on the shared
        # (un-replicated) input; flipped by the first stacked layer.
        self._shared_prefix = True
        # Shared-prefix lowerings of the (unshuffled, deterministic) eval
        # batches, reused across every per-checkpoint evaluation of this
        # trainer — and, when the caller passes a shared cache, across
        # trainers, chip chunks and sweep arms.  Only consulted while
        # ``_eval_batch_index`` is set inside :meth:`evaluate`.
        self._eval_lowering = lowering_cache if lowering_cache is not None else LoweringCache()
        self._eval_batch_index: Optional[int] = None
        self._eval_batch_size: Optional[int] = None
        # Background double-buffering of eval-batch lowerings (bit-identical
        # either way; see _LoweringPrefetcher).
        self._prefetch = prefetch
        self._prefetcher: Optional[_LoweringPrefetcher] = None
        self._prefetch_probe: Optional[np.ndarray] = None
        # Multi-checkpoint GEMM widening: defer per-checkpoint evaluations
        # and run them as one (C * B)-chip stacked pass (see :meth:`train`).
        self._widened_eval = widened_eval
        # Captured-graph execution of the checkpoint-eval hot path (training
        # steps always run eagerly: they drive autograd).  Captured eval
        # graphs read the stacked weights, biases and running statistics
        # *live*, so replay tracks every optimizer step and mask enforcement
        # between checkpoints.
        self._backend = resolve_backend(backend)
        self._eval_chain_cache = (
            ChainCache(self._backend, name="fat.eval")
            if self._backend is not None
            else None
        )

        self._layers: List[_StackedLayer] = []
        self._norm_layers: List[_StackedNormLayer] = []
        self._dropouts: List[nn.Module] = []
        parameters: List[nn.Parameter] = []
        for name, module in model.named_modules():
            if isinstance(module, nn.Dropout):
                self._dropouts.append(module)
                continue
            direct = [p for p in module._parameters.values() if p is not None]
            if not direct:
                continue
            if isinstance(module, nn.BatchNorm2d):  # BatchNorm1d subclasses it
                if name in key_set:
                    raise ValueError(
                        f"layer {name!r} is a batch norm and cannot carry a fault mask"
                    )
                weight_param = nn.Parameter(
                    np.repeat(module.weight.data[None], self.num_chips, axis=0)
                )
                bias_param = nn.Parameter(
                    np.repeat(module.bias.data[None], self.num_chips, axis=0)
                )
                self._norm_layers.append(
                    _StackedNormLayer(
                        name=name,
                        module=module,
                        weight=weight_param,
                        bias=bias_param,
                        running_mean=np.repeat(
                            np.asarray(module.running_mean)[None], self.num_chips, axis=0
                        ),
                        running_var=np.repeat(
                            np.asarray(module.running_var)[None], self.num_chips, axis=0
                        ),
                    )
                )
                # Same order as ``model.parameters()`` (weight before bias).
                parameters.append(weight_param)
                parameters.append(bias_param)
                continue
            if not isinstance(module, (nn.Linear, nn.Conv2d)):
                raise UnsupportedModelError(
                    f"layer {name!r} ({type(module).__name__}) has trainable "
                    "parameters but is not a stackable Linear/Conv2d/BatchNorm; "
                    "batched fault-aware retraining cannot fold it per chip"
                )
            weight = module.weight.data
            stack = np.empty((self.num_chips,) + weight.shape, dtype=weight.dtype)
            keep: Optional[np.ndarray] = None
            if name in key_set:
                keep = np.empty((self.num_chips,) + weight.shape, dtype=np.float32)
            for chip, masks in enumerate(mask_sets):
                if name in masks:
                    mask = masks[name]
                    if mask.shape != weight.shape:
                        raise ValueError(
                            f"mask shape {mask.shape} does not match weight shape "
                            f"{weight.shape} for layer {name!r}"
                        )
                    # np.where keeps masked entries exact +0.0, bit-identical
                    # to the serial ``weight.data[mask] = 0.0`` enforcement.
                    stack[chip] = np.where(mask, weight.dtype.type(0), weight)
                    keep[chip] = np.where(mask, np.float32(0.0), np.float32(1.0))
                else:
                    stack[chip] = weight
            weight_param = nn.Parameter(stack)
            bias_param: Optional[nn.Parameter] = None
            if module.bias is not None:
                bias_param = nn.Parameter(
                    np.repeat(module.bias.data[None], self.num_chips, axis=0)
                )
            self._layers.append(
                _StackedLayer(
                    name=name, module=module, weight=weight_param,
                    bias=bias_param, keep=keep,
                )
            )
            # Same order as ``model.parameters()`` (weight before bias per
            # module) so per-chip gradient clipping accumulates norms in the
            # serial order.
            parameters.append(weight_param)
            if bias_param is not None:
                parameters.append(bias_param)
        known = {layer.name for layer in self._layers}
        for name in key_set:
            if name not in known:
                raise KeyError(f"mask refers to unknown layer {name!r}")
        self._masked_layers = [layer for layer in self._layers if layer.keep is not None]
        self.optimizer = self.config.build_optimizer(parameters)
        # Dropout draws from trainer-seeded per-layer generators, exactly as
        # each serial Trainer with this config would reseed them.
        seed_stochastic_layers(self.model, self.config.seed)
        # Base state for chip_state_dict (stacked slices override trainables).
        self._base_state = model.state_dict()

    # -- batched forward plumbing --------------------------------------------

    @property
    def epochs_taken(self) -> float:
        return self.steps_taken / self.batches_per_epoch

    def _linear_forward(self, layer: _StackedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            if x.ndim != 2:
                x = x.flatten(start_dim=1)
            shared = self._shared_prefix
            self._shared_prefix = False
            return _StackedLinearFunction.apply(
                x, layer.weight, layer.bias, self.num_chips, shared
            )

        return forward

    def _eval_lowering_kernel(self, layer: _StackedLayer):
        module = layer.module

        def lower_cols(data: np.ndarray) -> np.ndarray:
            prefetcher = self._prefetcher
            if prefetcher is not None and data is self._prefetch_probe:
                # The raw input batch reaches the first stacked layer, so the
                # lowering is a pure function of the batch: teach the
                # prefetcher to compute upcoming batches in the background.
                prefetcher.offer_recipe(
                    "im2col_t",
                    layer.name,
                    self._eval_batch_size,
                    lambda d: im2col_t(d, module.kernel_size, module.stride, module.padding),
                )
            # ``_eval_batch_index`` is read at call time so a replayed graph
            # consults the lowering cache for the batch actually in flight.
            cols, _, _ = self._eval_lowering.get_or_compute(
                ("im2col_t", layer.name, self._eval_batch_size, self._eval_batch_index),
                lambda: im2col_t(data, module.kernel_size, module.stride, module.padding),
            )
            return cols

        return lower_cols

    def _conv_forward(self, layer: _StackedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            module = layer.module
            shared = self._shared_prefix
            self._shared_prefix = False
            lowering = None
            if shared and self._eval_batch_index is not None:
                # Evaluation pass over the unshuffled eval loader: the input
                # to the first stacked layer is a pure function of the batch
                # (the prefix holds no parametric or stochastic layers), so
                # its lowering is identical at every checkpoint and cached.
                out_h, out_w = _conv_output_hw(x.shape, module)
                cols = recorded(
                    "fat.eval_lowering",
                    (x.data,),
                    self._eval_lowering_kernel(layer),
                    attrs={"layer": layer},
                )
                lowering = (cols, out_h, out_w)
            return _StackedConv2dFunction.apply(
                x, layer.weight, layer.bias,
                module.stride, module.padding, self.num_chips, shared, lowering,
            )

        return forward

    def _norm_forward(self, layer: _StackedNormLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            module = layer.module
            shared = self._shared_prefix
            self._shared_prefix = False
            if module.training:
                stats: List[Tuple[np.ndarray, np.ndarray]] = []
                out = _StackedBatchNormFunction.apply(
                    x, layer.weight, layer.bias, self.num_chips, module.eps, shared, stats
                )
                # Per-chip running-statistics update: the same EMA arithmetic
                # the serial layer applies, on chip b's own batch statistics.
                reduce_axes, _ = _bn_axes(x.ndim)
                per_chip = x.shape[0] if shared else x.shape[0] // self.num_chips
                reduce_count = per_chip
                for axis in reduce_axes[1:]:
                    reduce_count *= x.shape[axis]
                for chip, (batch_mean, batch_var) in enumerate(stats):
                    new_mean, new_var = bn_running_update(
                        layer.running_mean[chip],
                        layer.running_var[chip],
                        batch_mean,
                        batch_var,
                        reduce_count,
                        module.momentum,
                    )
                    layer.running_mean[chip] = new_mean
                    layer.running_var[chip] = new_var
                return out
            # Eval mode: per-chip running statistics as constants, through
            # the same arithmetic helper as the serial eval path (slice for
            # slice bit-identical).  Evaluation runs under no_grad, so no
            # autograd node is needed.  Recorded as one composite IR node
            # whose kernel reads the stacked parameters and running
            # statistics live, so replayed checkpoints see post-step values.
            out = recorded(
                "eval.stacked_bn",
                (x.data,),
                self._stacked_bn_eval_kernel(layer, shared),
                attrs={"layer": layer, "shared": shared},
            )
            return nn.Tensor(out)

        return forward

    def _stacked_bn_eval_kernel(self, layer: _StackedNormLayer, shared: bool):
        module = layer.module

        def stacked_bn_eval(data: np.ndarray) -> np.ndarray:
            _, param_shape = _bn_axes(data.ndim)
            per_chip = data.shape[0] if shared else data.shape[0] // self.num_chips
            out = np.empty(
                (self.num_chips * per_chip,) + data.shape[1:], dtype=data.dtype
            )
            for chip in range(self.num_chips):
                fold = slice(chip * per_chip, (chip + 1) * per_chip)
                x_b = data if shared else data[fold]
                out[fold] = _bn_eval_forward(
                    x_b,
                    layer.weight.data[chip].reshape(param_shape),
                    layer.bias.data[chip].reshape(param_shape),
                    layer.running_mean[chip].reshape(param_shape),
                    layer.running_var[chip].reshape(param_shape),
                    module.eps,
                )
            return out

        return stacked_bn_eval

    def _dropout_forward(self, module: nn.Module):
        def forward(x: nn.Tensor) -> nn.Tensor:
            if not module.training or module.p == 0.0:
                return x
            if self._shared_prefix:
                # Shared input: one draw, exactly the serial call.
                return F.dropout(x, module.p, training=True, rng=module._rng)
            # Folded activations: draw the per-sample mask once (the same
            # stream position as each serial run) and tile it over chips.
            per_chip = x.shape[0] // self.num_chips
            shape = (per_chip,) + x.shape[1:]
            mask = (module._rng.random(shape) >= module.p).astype(x.dtype) / (1.0 - module.p)
            tiled = np.tile(mask, (self.num_chips,) + (1,) * (x.ndim - 1))
            return x * tiled

        return forward

    @contextlib.contextmanager
    def _patched(self):
        """Route stacked layers (and dropout) through their batched forwards."""
        patched: List[nn.Module] = []
        try:
            for layer in self._layers:
                if "forward" in layer.module.__dict__:
                    raise RuntimeError(
                        f"layer {layer.name!r} already has a patched forward "
                        "(nested batched execution is not supported)"
                    )
                make = (
                    self._linear_forward
                    if isinstance(layer.module, nn.Linear)
                    else self._conv_forward
                )
                object.__setattr__(layer.module, "forward", make(layer))
                patched.append(layer.module)
            for norm in self._norm_layers:
                if "forward" in norm.module.__dict__:
                    raise RuntimeError(
                        f"layer {norm.name!r} already has a patched forward "
                        "(nested batched execution is not supported)"
                    )
                object.__setattr__(norm.module, "forward", self._norm_forward(norm))
                patched.append(norm.module)
            for module in self._dropouts:
                if "forward" in module.__dict__:
                    raise RuntimeError("dropout layer already has a patched forward")
                object.__setattr__(module, "forward", self._dropout_forward(module))
                patched.append(module)
            yield
        finally:
            for module in reversed(patched):
                object.__delattr__(module, "forward")

    # -- training ------------------------------------------------------------

    def _train_steps(self, num_steps: int) -> np.ndarray:
        """Run ``num_steps`` batched steps; returns per-chip mean train loss."""
        if num_steps <= 0:
            return np.full(self.num_chips, np.nan)
        self.model.train()
        losses: List[np.ndarray] = []
        remaining = num_steps
        with trace.span(
            "fat.train_steps", steps=num_steps, chips=self.num_chips
        ), self._patched():
            while remaining > 0:
                for inputs, targets in self.train_loader:
                    self._shared_prefix = True
                    logits = self.model(inputs)
                    step_losses = stacked_cross_entropy(
                        logits, targets, self.num_chips,
                        label_smoothing=self.config.label_smoothing,
                    )
                    self.optimizer.zero_grad()
                    step_losses.sum().backward()
                    for layer in self._masked_layers:
                        layer.enforce_grad()
                    if self.config.grad_clip is not None:
                        nn.clip_grad_norm_per_chip(
                            self.optimizer.parameters,
                            self.config.grad_clip,
                            self.num_chips,
                        )
                    self.optimizer.step()
                    for layer in self._masked_layers:
                        layer.enforce_weight()
                    losses.append(step_losses.data.astype(np.float64))
                    self.steps_taken += 1
                    remaining -= 1
                    if remaining == 0:
                        break
        if not losses:
            return np.full(self.num_chips, np.nan)
        stacked = np.asarray(losses)  # (steps, B)
        # Serial records python floats and takes np.mean over the step list;
        # reduce each chip's contiguous step vector the same way.
        return np.array(
            [np.mean(np.ascontiguousarray(stacked[:, chip])) for chip in range(self.num_chips)]
        )

    def _eval_forward_all_chips(self, inputs: np.ndarray) -> np.ndarray:
        """Per-chip logits for one eval batch: ``(B, n, classes)``."""
        self._shared_prefix = True
        logits = self.model(nn.Tensor(inputs)).data
        chips = self.num_chips
        if self._shared_prefix:
            # No stacked layer executed: all chips share logits.
            return recorded(
                "eval.broadcast_logits",
                (logits,),
                lambda l: np.broadcast_to(l[None], (chips,) + l.shape),
            )
        n = inputs.shape[0]
        return recorded(
            "eval.unfold_logits", (logits,), lambda l: l.reshape(chips, n, -1)
        )

    def evaluate(self) -> List[float]:
        """Per-chip top-1 accuracy on the eval data (mirrors ``Trainer.evaluate``)."""
        return self._evaluate_batched(chain_cache=self._eval_chain_cache)

    def _evaluate_batched(self, chain_cache: Optional[ChainCache]) -> List[float]:
        """One batched eval pass over the (current) stacked weights.

        ``chain_cache`` is the captured-graph cache matching the *current*
        ``self.num_chips`` — the widened multi-checkpoint pass supplies its
        own (captured graphs bake the chip count into their kernels).
        """
        from repro.training import _as_eval_loader as _training_eval_loader

        batch_size = self.config.batch_size * 4
        loader = _training_eval_loader(self.eval_data, batch_size=batch_size)
        was_training = self.model.training
        self.model.eval()
        correct = np.zeros(self.num_chips, dtype=np.int64)
        total = 0
        prefetcher = (
            _LoweringPrefetcher(self._eval_lowering) if self._prefetch else None
        )
        try:
            with trace.span(
                "fat.eval_checkpoint", chips=self.num_chips
            ), nn.no_grad(), self._patched():
                self._eval_batch_size = batch_size
                self._prefetcher = prefetcher
                for batch_index, (inputs, targets) in _prefetched_batches(
                    loader, prefetcher
                ):
                    self._eval_batch_index = batch_index
                    data = inputs.data
                    self._prefetch_probe = data
                    n = data.shape[0]
                    if chain_cache is None:
                        logits = self._eval_forward_all_chips(data)
                    else:
                        logits = chain_cache.run((data,), self._eval_forward_all_chips)
                    predictions = logits.argmax(axis=-1)
                    correct += (predictions == np.asarray(targets)[None, :]).sum(axis=1)
                    total += n
        finally:
            self._eval_batch_index = None
            self._eval_batch_size = None
            self._prefetcher = None
            self._prefetch_probe = None
            if prefetcher is not None:
                prefetcher.close()
            if was_training:
                self.model.train()
        if total == 0:
            return [0.0] * self.num_chips
        return [int(c) / total for c in correct]

    # -- widened multi-checkpoint evaluation ---------------------------------

    def _snapshot_stacks(
        self, epochs: float, steps: int, train_losses: np.ndarray
    ) -> _EvalSnapshot:
        """Copy the current stacked weights/statistics for a deferred eval."""
        return _EvalSnapshot(
            epochs=epochs,
            steps=steps,
            train_losses=np.asarray(train_losses, dtype=np.float64).copy(),
            layer_weights=[layer.weight.data.copy() for layer in self._layers],
            layer_biases=[
                None if layer.bias is None else layer.bias.data.copy()
                for layer in self._layers
            ],
            norm_weights=[norm.weight.data.copy() for norm in self._norm_layers],
            norm_biases=[norm.bias.data.copy() for norm in self._norm_layers],
            norm_means=[norm.running_mean.copy() for norm in self._norm_layers],
            norm_vars=[norm.running_var.copy() for norm in self._norm_layers],
        )

    @contextlib.contextmanager
    def _stacks_swapped(
        self,
        num_chips: int,
        layer_weights: List[np.ndarray],
        layer_biases: List[Optional[np.ndarray]],
        norm_weights: List[np.ndarray],
        norm_biases: List[np.ndarray],
        norm_means: List[np.ndarray],
        norm_vars: List[np.ndarray],
    ):
        """Temporarily present other stacked arrays (and chip count) as live.

        The batched forwards — and captured eval graphs, whose parameter
        references read ``.data`` at replay time — all consult the layer
        objects live, so swapping the arrays re-points every kernel without
        re-patching anything.  Restores the training stacks on exit.
        """
        saved_chips = self.num_chips
        saved_layer = [(layer.weight.data, None if layer.bias is None else layer.bias.data)
                       for layer in self._layers]
        saved_norm = [(norm.weight.data, norm.bias.data, norm.running_mean, norm.running_var)
                      for norm in self._norm_layers]
        try:
            self.num_chips = num_chips
            for layer, weight, bias in zip(self._layers, layer_weights, layer_biases):
                layer.weight.data = weight
                if layer.bias is not None:
                    layer.bias.data = bias
            for norm, weight, bias, mean, var in zip(
                self._norm_layers, norm_weights, norm_biases, norm_means, norm_vars
            ):
                norm.weight.data = weight
                norm.bias.data = bias
                norm.running_mean = mean
                norm.running_var = var
            yield
        finally:
            self.num_chips = saved_chips
            for layer, (weight, bias) in zip(self._layers, saved_layer):
                layer.weight.data = weight
                if layer.bias is not None:
                    layer.bias.data = bias
            for norm, (weight, bias, mean, var) in zip(self._norm_layers, saved_norm):
                norm.weight.data = weight
                norm.bias.data = bias
                norm.running_mean = mean
                norm.running_var = var

    def _evaluate_snapshots(
        self, snapshots: List[_EvalSnapshot]
    ) -> List[Tuple[_EvalSnapshot, List[float]]]:
        """Evaluate deferred checkpoint snapshots, widened where feasible.

        C snapshots of the same B-chip population stack into one
        ``(C * B)``-chip evaluation pass — every stacked GEMM widens from B
        to C·B slices, each im2col lowering is shared by all C checkpoints,
        and the whole thing is one loader walk instead of C.  Per-checkpoint
        results are exact unstacked row blocks: chip slices of the widened
        GEMMs are bit-identical to the B-chip pass (the same per-slice
        identity the batched substrate already rests on).
        """
        if not snapshots:
            return []
        # Checkpoints that quantized to the same optimizer step (fine epoch
        # grids at small batches-per-epoch counts do this constantly) carry
        # identical stacked weights — no training step ran between them — so
        # one evaluation pass serves every alias.  This is what makes eval
        # cost sublinear in the checkpoint count.
        unique: List[_EvalSnapshot] = []
        seen_steps: Dict[int, int] = {}
        for snapshot in snapshots:
            if snapshot.steps not in seen_steps:
                seen_steps[snapshot.steps] = len(unique)
                unique.append(snapshot)
        if metrics.enabled and len(unique) < len(snapshots):
            metrics.counter("fat.eval.checkpoints_deduped").inc(
                len(snapshots) - len(unique)
            )
        if len(unique) < len(snapshots):
            evaluated = self._evaluate_snapshots(unique)
            by_steps = {snap.steps: accuracies for snap, accuracies in evaluated}
            return [(snapshot, by_steps[snapshot.steps]) for snapshot in snapshots]
        total_floats = sum(snapshot.num_floats for snapshot in snapshots)
        if len(snapshots) > 1 and total_floats <= WIDENED_EVAL_MAX_FLOATS:
            return self._evaluate_snapshots_widened(snapshots)
        results: List[Tuple[_EvalSnapshot, List[float]]] = []
        for snapshot in snapshots:
            with self._stacks_swapped(
                self.num_chips,
                snapshot.layer_weights,
                snapshot.layer_biases,
                snapshot.norm_weights,
                snapshot.norm_biases,
                snapshot.norm_means,
                snapshot.norm_vars,
            ):
                results.append(
                    (snapshot, self._evaluate_batched(chain_cache=self._eval_chain_cache))
                )
        return results

    def _evaluate_snapshots_widened(
        self, snapshots: List[_EvalSnapshot]
    ) -> List[Tuple[_EvalSnapshot, List[float]]]:
        count = len(snapshots)
        base = self.num_chips
        layer_weights = [
            np.concatenate([s.layer_weights[i] for s in snapshots], axis=0)
            for i in range(len(self._layers))
        ]
        layer_biases: List[Optional[np.ndarray]] = [
            None
            if self._layers[i].bias is None
            else np.concatenate([s.layer_biases[i] for s in snapshots], axis=0)
            for i in range(len(self._layers))
        ]
        norm_weights = [
            np.concatenate([s.norm_weights[i] for s in snapshots], axis=0)
            for i in range(len(self._norm_layers))
        ]
        norm_biases = [
            np.concatenate([s.norm_biases[i] for s in snapshots], axis=0)
            for i in range(len(self._norm_layers))
        ]
        norm_means = [
            np.concatenate([s.norm_means[i] for s in snapshots], axis=0)
            for i in range(len(self._norm_layers))
        ]
        norm_vars = [
            np.concatenate([s.norm_vars[i] for s in snapshots], axis=0)
            for i in range(len(self._norm_layers))
        ]
        # Captured graphs bake the chip count into their kernels, so the
        # widened pass must not replay ``_eval_chain_cache`` (captured at B
        # chips): it captures its own C*B-chip graph.
        chain_cache = (
            ChainCache(self._backend, name="fat.eval_widened")
            if self._backend is not None
            else None
        )
        with trace.span(
            "fat.eval_widened", checkpoints=count, chips=base
        ), self._stacks_swapped(
            count * base, layer_weights, layer_biases,
            norm_weights, norm_biases, norm_means, norm_vars,
        ):
            flat = self._evaluate_batched(chain_cache=chain_cache)
        return [
            (snapshot, flat[c * base:(c + 1) * base])
            for c, snapshot in enumerate(snapshots)
        ]

    def train(
        self,
        epochs: float,
        eval_checkpoints: Optional[Sequence[float]] = None,
        include_initial: bool = True,
    ):
        """Train all chips for ``epochs``; returns one history per chip.

        Checkpoint semantics match :meth:`repro.training.Trainer.train`: the
        same cumulative epoch checkpoints, the same step accounting, and per-
        chip records whose accuracies and losses equal the serial runs'.

        With ``widened_eval`` (the default) and more than one checkpoint,
        per-checkpoint evaluations are deferred: each checkpoint snapshots
        the stacked weights and statistics, training continues uninterrupted,
        and all C snapshots then evaluate in one widened ``(C * B)``-chip
        pass (see :meth:`_evaluate_snapshots`).  Checkpoints that quantize
        to the same optimizer step share one evaluation — their weights are
        identical — so the deferred pass is sublinear in the checkpoint
        count for fine epoch grids.  Histories are identical
        either way — evaluation never mutates training state (it runs under
        ``no_grad`` on fixed weights over the unshuffled eval loader), so the
        training step sequence, RNG streams and recorded accuracies all
        match the interleaved schedule bit for bit.
        """
        from repro.training import CheckpointRecord, TrainingHistory, epochs_to_steps

        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        histories = [TrainingHistory() for _ in range(self.num_chips)]
        checkpoints = sorted(set(float(c) for c in (eval_checkpoints or []) if 0.0 < c <= epochs))
        if epochs > 0 and (not checkpoints or abs(checkpoints[-1] - epochs) > 1e-12):
            checkpoints.append(float(epochs))
        passes = (1 if include_initial else 0) + len(checkpoints)
        defer = self._widened_eval and passes > 1
        snapshots: List[_EvalSnapshot] = []

        def record_checkpoint(epochs_at: float, train_losses: np.ndarray) -> None:
            if defer:
                if snapshots and snapshots[-1].steps == self.steps_taken:
                    # Same optimizer step as the previous checkpoint — the
                    # stacks have not moved, so alias its arrays rather than
                    # copying them again.
                    snapshots.append(
                        dataclasses.replace(
                            snapshots[-1],
                            epochs=epochs_at,
                            train_losses=np.asarray(
                                train_losses, dtype=np.float64
                            ).copy(),
                        )
                    )
                else:
                    snapshots.append(
                        self._snapshot_stacks(epochs_at, self.steps_taken, train_losses)
                    )
                return
            accuracies = self.evaluate()
            steps = self.steps_taken
            for chip, history in enumerate(histories):
                history.add(
                    CheckpointRecord(
                        epochs=epochs_at,
                        steps=steps,
                        train_loss=float(train_losses[chip]),
                        eval_accuracy=accuracies[chip],
                    )
                )

        if include_initial:
            record_checkpoint(0.0, np.full(self.num_chips, np.nan))
        previous_steps = 0
        for checkpoint in checkpoints:
            target_steps = epochs_to_steps(checkpoint, self.batches_per_epoch)
            step_delta = target_steps - previous_steps
            if step_delta > 0:
                train_losses = self._train_steps(step_delta)
            else:
                train_losses = np.full(self.num_chips, np.nan)
            previous_steps = target_steps
            record_checkpoint(checkpoint, train_losses)
        for snapshot, accuracies in self._evaluate_snapshots(snapshots):
            for chip, history in enumerate(histories):
                history.add(
                    CheckpointRecord(
                        epochs=snapshot.epochs,
                        steps=snapshot.steps,
                        train_loss=float(snapshot.train_losses[chip]),
                        eval_accuracy=accuracies[chip],
                    )
                )
        return histories

    # -- results -------------------------------------------------------------

    def chip_state_dict(self, chip: int) -> Dict[str, np.ndarray]:
        """The model state dict chip ``chip``'s serial run would end with."""
        if not 0 <= chip < self.num_chips:
            raise IndexError(f"chip {chip} out of range for {self.num_chips} chips")
        state = {name: value.copy() for name, value in self._base_state.items()}
        for layer in self._layers:
            prefix = f"{layer.name}." if layer.name else ""
            state[f"{prefix}weight"] = layer.weight.data[chip].copy()
            if layer.bias is not None:
                state[f"{prefix}bias"] = layer.bias.data[chip].copy()
        for norm in self._norm_layers:
            prefix = f"{norm.name}." if norm.name else ""
            state[f"{prefix}weight"] = norm.weight.data[chip].copy()
            state[f"{prefix}bias"] = norm.bias.data[chip].copy()
            state[f"{prefix}running_mean"] = norm.running_mean[chip].copy()
            state[f"{prefix}running_var"] = norm.running_var[chip].copy()
        return state
