"""Batched multi-chip evaluation: one forward sweep for B fault-masked chips.

Evaluating a population of faulty chips is the dominant non-training cost of
the Reduce flow: Step-2 triage, resilience-trial baselines and campaign
accuracy checkpoints all need "accuracy of the pre-trained DNN under chip
b's fault masks" for many chips.  Under the weight-stationary mapping both
FAP (Zhang et al., VTS 2018) and SalvageDNN-style permutations reduce to
per-layer weight masks, so evaluating B chips is just B masked variants of
the same GEMM — which batches trivially.

:class:`BatchedFaultEvaluator` stacks the B per-chip masked weight matrices
into ``(B, N_out, K)`` tensors once, then runs the *unmodified* model forward
with every mappable layer temporarily routed through a batched GEMM.  Two
regimes are exploited:

* **Shared prefix.** Until the first masked layer, activations are identical
  for every chip, so the input batch is *not* replicated: the prefix runs
  once, and the first masked layer lowers its input once (one im2col) and
  multiplies it against all B weight sets in a single wide GEMM
  ``(P, K) @ (K, B * N_out)`` — the per-chip GEMMs share their activation
  operand, so this is a pure B-fold saving on the lowering and a large BLAS
  efficiency win over B narrow GEMMs.
* **Folded suffix.** Downstream of the first masked layer the activations
  diverge per chip; they are carried with a folded ``(B * batch, ...)``
  leading axis and each masked layer applies a stacked
  ``(B, P, K) @ (B, K, N_out)`` matmul.  Non-mappable layers (ReLU,
  eval-mode batch norm, pooling, flatten, dropout-in-eval) are strictly
  per-sample and need no changes at all.

Numerical equivalence: chip ``b``'s slice of every stacked GEMM multiplies
the same operands in the same row order as the serial per-chip pass, and all
surrounding ops are per-sample elementwise, so logits match the serial
``evaluate_accuracy`` path bit-for-bit on a given BLAS build (the wide
shared-prefix GEMM may in principle differ to float32 rounding on BLAS
builds whose kernel selection changes the reduction order with the output
width; the equivalence tests pin this down exactly on the build in use).
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.mapping import model_fault_masks
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.nn.functional import im2col

MaskDict = Dict[str, np.ndarray]

# Stacked per-chip weights cost ``chips x model-size`` floats; population
# helpers evaluate in chunks of this many chips to bound peak memory.
DEFAULT_CHIP_CHUNK = 16


@dataclasses.dataclass
class _BatchedLayer:
    """One mappable layer with its B stacked, pre-masked GEMM weights."""

    name: str
    module: nn.Module
    stack: np.ndarray  # (B, N_out, K) masked per-chip weights
    wide: Optional[np.ndarray] = None  # (K, B * N_out), built on first shared use

    @property
    def stacked_t(self) -> np.ndarray:
        """The (B, K, N_out) matmul operand (transposed view, zero-copy)."""
        return self.stack.transpose(0, 2, 1)

    def wide_weights(self) -> np.ndarray:
        """The (K, B * N_out) operand of the shared-prefix wide GEMM."""
        if self.wide is None:
            chips, out_dim, k = self.stack.shape
            self.wide = np.ascontiguousarray(
                self.stack.transpose(2, 0, 1).reshape(k, chips * out_dim)
            )
        return self.wide


def _as_eval_loader(data: Union[Dataset, DataLoader], batch_size: int) -> DataLoader:
    if isinstance(data, DataLoader):
        return data
    return DataLoader(data, batch_size=batch_size, shuffle=False, seed=0)


class BatchedFaultEvaluator:
    """Evaluate one model under B per-chip fault-mask sets in batched passes.

    Parameters
    ----------
    model:
        The model whose *current* weights are the shared starting point (for
        the Reduce flow: the pre-trained DNN).  Masked weight stacks are
        captured at construction; biases, batch-norm statistics and every
        non-mappable parameter are read live at evaluation time.
    mask_sets:
        One mask dict per chip (as produced by ``build_fap_masks``), all with
        identical layer keys.  ``True`` marks a weight forced to zero.
    """

    def __init__(self, model: nn.Module, mask_sets: Sequence[MaskDict]) -> None:
        if not mask_sets:
            raise ValueError("mask_sets must contain at least one chip")
        self.model = model
        self.num_chips = len(mask_sets)
        key_set = set(mask_sets[0])
        for index, masks in enumerate(mask_sets[1:], start=1):
            if set(masks) != key_set:
                raise ValueError(
                    f"mask set {index} has layer keys {sorted(masks)} != {sorted(key_set)}"
                )
        modules = dict(model.named_modules())
        self._layers: List[_BatchedLayer] = []
        # True while the forward pass is still on the shared (un-replicated)
        # prefix; flipped by the first masked layer that executes.
        self._shared_prefix = True
        for name in mask_sets[0]:
            module = modules.get(name)
            if module is None:
                raise KeyError(f"mask refers to unknown layer {name!r}")
            weight = getattr(module, "weight", None)
            if weight is None:
                raise ValueError(f"layer {name!r} has no weight to mask")
            if not isinstance(module, (nn.Linear, nn.Conv2d)):
                raise TypeError(f"layer {name!r} is not mappable (Linear/Conv2d)")
            out_dim = weight.data.shape[0]
            stacked = np.empty((self.num_chips,) + weight.data.shape, dtype=weight.data.dtype)
            for chip, masks in enumerate(mask_sets):
                mask = masks[name]
                if mask.shape != weight.data.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} does not match weight shape "
                        f"{weight.data.shape} for layer {name!r}"
                    )
                # np.where (not multiply) so masked entries are exact +0.0,
                # bit-identical to the serial ``weight.data[mask] = 0.0`` path.
                stacked[chip] = np.where(mask, weight.data.dtype.type(0), weight.data)
            self._layers.append(
                _BatchedLayer(
                    name=name, module=module, stack=stacked.reshape(self.num_chips, out_dim, -1)
                )
            )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_fault_maps(
        cls,
        model: nn.Module,
        fault_maps: Iterable[FaultMap],
        column_permutations: Optional[Dict[str, Sequence[int]]] = None,
    ) -> "BatchedFaultEvaluator":
        """Build the evaluator straight from per-chip fault maps."""
        mask_sets = [
            model_fault_masks(model, fault_map, column_permutations)
            for fault_map in fault_maps
        ]
        return cls(model, mask_sets)

    # -- batched forward plumbing --------------------------------------------

    def _expand_shared(self, gemm_input: np.ndarray, layer: _BatchedLayer) -> np.ndarray:
        """Shared-prefix GEMM: one ``(P, K)`` operand against all B chips.

        Returns the folded ``(B, P, N_out)`` result.  The per-chip weight
        columns are concatenated into one ``(K, B * N_out)`` operand so a
        single wide GEMM replaces B narrow ones.
        """
        rows = gemm_input.shape[0]
        out = gemm_input @ layer.wide_weights()  # (P, B * N_out)
        out = out.reshape(rows, self.num_chips, -1).transpose(1, 0, 2)
        self._shared_prefix = False
        return out

    def _linear_forward(self, layer: _BatchedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            data = x.data
            if data.ndim != 2:
                data = data.reshape(data.shape[0], -1)
            if self._shared_prefix:
                out = self._expand_shared(data, layer)  # (B, n, O)
            else:
                total, k = data.shape
                per_chip = total // self.num_chips
                out = np.matmul(data.reshape(self.num_chips, per_chip, k), layer.stacked_t)
            bias = layer.module.bias
            if bias is not None:
                out += bias.data
            return nn.Tensor(out.reshape(out.shape[0] * out.shape[1], -1))

        return forward

    def _conv_forward(self, layer: _BatchedLayer):
        def forward(x: nn.Tensor) -> nn.Tensor:
            module = layer.module
            data = x.data
            cols, out_h, out_w = im2col(data, module.kernel_size, module.stride, module.padding)
            if self._shared_prefix:
                out = self._expand_shared(cols, layer)  # (B, n*oh*ow, O)
            else:
                rows_per_chip = cols.shape[0] // self.num_chips
                out = np.matmul(
                    cols.reshape(self.num_chips, rows_per_chip, cols.shape[1]),
                    layer.stacked_t,
                )
            bias = module.bias
            if bias is not None:
                out += bias.data
            folded = out.shape[0] * out.shape[1] // (out_h * out_w)
            out = out.reshape(folded, out_h, out_w, -1).transpose(0, 3, 1, 2)
            return nn.Tensor(np.ascontiguousarray(out))

        return forward

    @contextlib.contextmanager
    def _patched(self):
        """Temporarily route every mappable layer through its batched GEMM."""
        patched: List[nn.Module] = []
        try:
            for layer in self._layers:
                if "forward" in layer.module.__dict__:
                    raise RuntimeError(
                        f"layer {layer.name!r} already has a patched forward "
                        "(nested batched evaluation is not supported)"
                    )
                make = (
                    self._linear_forward
                    if isinstance(layer.module, nn.Linear)
                    else self._conv_forward
                )
                object.__setattr__(layer.module, "forward", make(layer))
                patched.append(layer.module)
            yield
        finally:
            for module in reversed(patched):
                object.__delattr__(module, "forward")

    def _forward_all_chips(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for one (shared) input batch under every chip: (B, n, C)."""
        self._shared_prefix = True
        logits = self.model(nn.Tensor(inputs)).data
        if self._shared_prefix:
            # No masked layer executed (empty mask sets): every chip sees the
            # same logits.
            return np.broadcast_to(logits[None], (self.num_chips,) + logits.shape)
        return logits.reshape(self.num_chips, inputs.shape[0], -1)

    # -- evaluation ----------------------------------------------------------

    def evaluate_logits(self, inputs: Union[nn.Tensor, np.ndarray]) -> np.ndarray:
        """Logits of one input batch under every chip: ``(B, n, classes)``."""
        data = inputs.data if isinstance(inputs, nn.Tensor) else np.asarray(inputs)
        was_training = self.model.training
        self.model.eval()
        try:
            with nn.no_grad(), self._patched():
                return self._forward_all_chips(data).copy()
        finally:
            if was_training:
                self.model.train()

    def evaluate_accuracy(
        self,
        data: Union[Dataset, DataLoader],
        batch_size: int = 128,
    ) -> List[float]:
        """Per-chip top-1 accuracy on ``data`` (one pass over the loader)."""
        loader = _as_eval_loader(data, batch_size=batch_size)
        correct = np.zeros(self.num_chips, dtype=np.int64)
        total = 0
        was_training = self.model.training
        self.model.eval()
        try:
            with nn.no_grad(), self._patched():
                for inputs, targets in loader:
                    n = inputs.data.shape[0]
                    logits = self._forward_all_chips(inputs.data)
                    predictions = logits.argmax(axis=-1)
                    correct += (predictions == np.asarray(targets)[None, :]).sum(axis=1)
                    total += n
        finally:
            if was_training:
                self.model.train()
        if total == 0:
            return [0.0] * self.num_chips
        return [int(c) / total for c in correct]


def evaluate_chip_accuracies(
    model: nn.Module,
    data: Union[Dataset, DataLoader],
    mask_sets: Sequence[MaskDict],
    batch_size: int = 128,
    chip_chunk: int = DEFAULT_CHIP_CHUNK,
) -> List[float]:
    """Accuracy of ``model`` under each chip's masks, batched in chip chunks.

    The convenience wrapper over :class:`BatchedFaultEvaluator` used by the
    population triage and campaign checkpoints: peak memory is bounded by
    ``chip_chunk`` stacked weight copies regardless of population size.
    """
    if chip_chunk < 1:
        raise ValueError(f"chip_chunk must be >= 1, got {chip_chunk}")
    accuracies: List[float] = []
    for start in range(0, len(mask_sets), chip_chunk):
        evaluator = BatchedFaultEvaluator(model, mask_sets[start:start + chip_chunk])
        accuracies.extend(evaluator.evaluate_accuracy(data, batch_size=batch_size))
    return accuracies
