"""Functional simulation of GEMMs executed on a faulty systolic array.

This module closes the loop between the *model-side* view of fault-aware
pruning (boolean weight masks produced by :mod:`repro.accelerator.mapping`)
and the *hardware-side* behaviour it stands for: a PE whose MAC is bypassed
contributes zero to every partial sum it would have produced.

``simulate_gemm_on_array`` executes ``activations @ weights`` the way the
faulty array would (weight-stationary mapping, bypassed MACs contribute 0),
so tests can verify that running the FAP-masked model in software is exactly
equivalent to running the original model on the faulty hardware.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.mapping import gemm_fault_mask, layer_gemm_shape, mappable_layers
from repro.accelerator.systolic_array import SystolicArray


def simulate_gemm_on_array(
    activations: np.ndarray,
    weight_matrix: np.ndarray,
    fault_map: FaultMap,
    column_permutation: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Compute ``activations @ weight_matrix.T`` on a faulty array.

    ``activations`` has shape ``(M, K)`` and ``weight_matrix`` the layer's
    native ``(N_out, K)`` layout.  Every weight mapped onto a faulty PE is
    treated as bypassed (contributes zero), exactly as the FAP hardware of
    Zhang et al. (VTS 2018) behaves.
    """
    activations = np.asarray(activations)
    weight_matrix = np.asarray(weight_matrix)
    if activations.ndim != 2 or weight_matrix.ndim != 2:
        raise ValueError("simulate_gemm_on_array expects 2-D activations and weights")
    if activations.shape[1] != weight_matrix.shape[1]:
        raise ValueError(
            f"reduction-dimension mismatch: activations K={activations.shape[1]} vs "
            f"weights K={weight_matrix.shape[1]}"
        )
    gemm = layer_gemm_shape_from_matrix(weight_matrix)
    mask = gemm_fault_mask(gemm, fault_map, column_permutation)  # (N_out, K), True = bypassed
    effective_weights = np.where(mask, 0.0, weight_matrix)
    return activations @ effective_weights.T


def layer_gemm_shape_from_matrix(weight_matrix: np.ndarray):
    """GEMM shape of a raw ``(N_out, K)`` weight matrix."""
    from repro.accelerator.mapping import GemmShape

    n_out, k = weight_matrix.shape
    return GemmShape(reduce_dim=k, output_dim=n_out)


def simulate_linear_layer(
    layer: nn.Linear,
    inputs: np.ndarray,
    fault_map: FaultMap,
    column_permutation: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Output of a Linear layer executed on the faulty array (bias unaffected).

    The bias addition happens in the accumulator/output stage, outside the PE
    grid, so it is applied normally.
    """
    output = simulate_gemm_on_array(inputs, layer.weight.data, fault_map, column_permutation)
    if layer.bias is not None:
        output = output + layer.bias.data
    return output


def model_masks_match_hardware(
    model: nn.Module,
    fault_map_or_array,
    inputs: np.ndarray,
    atol: float = 1e-5,
) -> bool:
    """Check FAP-mask/hardware equivalence for every Linear layer of ``model``.

    For each Linear layer the output of (a) the layer with its weights masked
    in software and (b) the functional faulty-array simulation must agree.
    Convolutions are lowered to the same GEMM form, so verifying the Linear
    path validates the shared mapping code.
    """
    fault_map = (
        fault_map_or_array.fault_map
        if isinstance(fault_map_or_array, SystolicArray)
        else fault_map_or_array
    )
    inputs = np.asarray(inputs, dtype=np.float32)
    for _name, module in mappable_layers(model):
        if not isinstance(module, nn.Linear):
            continue
        layer_inputs = inputs
        if layer_inputs.shape[1] != module.in_features:
            layer_inputs = np.random.default_rng(0).standard_normal(
                (inputs.shape[0], module.in_features)
            ).astype(np.float32)
        hardware = simulate_linear_layer(module, layer_inputs, fault_map)
        mask = gemm_fault_mask(layer_gemm_shape(module), fault_map)
        masked_weight = np.where(mask, 0.0, module.weight.data)
        software = layer_inputs @ masked_weight.T
        if module.bias is not None:
            software = software + module.bias.data
        if not np.allclose(hardware, software, atol=atol):
            return False
    return True
