"""Fault maps of the systolic computational array.

A :class:`FaultMap` records which processing elements (PEs) of an ``R x C``
systolic array suffer a permanent fault.  Following the fault model of
Zhang et al. (VTS 2018) — the model the paper builds on — a faulty PE is
assumed to have a fault in its MAC unit that is mitigated by *bypassing* the
multiplier (Fault-Aware Pruning), which is equivalent to forcing every weight
mapped onto that PE to zero.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class FaultMap:
    """Boolean map of permanently faulty PEs in an ``R x C`` systolic array."""

    def __init__(self, faulty: np.ndarray) -> None:
        array = np.asarray(faulty)
        if array.ndim != 2:
            raise ValueError(f"a fault map must be 2-D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("a fault map must have at least one PE")
        self._faulty = array.astype(bool).copy()
        self._faulty.setflags(write=False)

    # -- constructors --------------------------------------------------------

    @classmethod
    def none(cls, rows: int, cols: int) -> "FaultMap":
        """A fully functional (fault-free) array."""
        return cls(np.zeros((rows, cols), dtype=bool))

    @classmethod
    def from_array(cls, faulty: Sequence[Sequence[bool]]) -> "FaultMap":
        return cls(np.asarray(faulty, dtype=bool))

    @classmethod
    def from_indices(cls, rows: int, cols: int, indices: Iterable[Tuple[int, int]]) -> "FaultMap":
        """Build a map from explicit ``(row, col)`` faulty-PE coordinates."""
        faulty = np.zeros((rows, cols), dtype=bool)
        for r, c in indices:
            if not (0 <= r < rows and 0 <= c < cols):
                raise IndexError(f"PE coordinate ({r}, {c}) outside a {rows}x{cols} array")
            faulty[r, c] = True
        return cls(faulty)

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        fault_rate: float,
        seed: SeedLike = None,
        exact: bool = True,
    ) -> "FaultMap":
        """Random permanent-fault map (the paper's fault-injection model).

        With ``exact=True`` exactly ``round(fault_rate * rows * cols)`` PEs are
        marked faulty (uniformly without replacement), which makes the
        realised fault rate deterministic; with ``exact=False`` each PE fails
        independently with probability ``fault_rate``.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        rng = new_rng(seed)
        total = rows * cols
        faulty = np.zeros(total, dtype=bool)
        if exact:
            count = int(round(fault_rate * total))
            if count > 0:
                chosen = rng.choice(total, size=count, replace=False)
                faulty[chosen] = True
        else:
            faulty = rng.random(total) < fault_rate
        return cls(faulty.reshape(rows, cols))

    @classmethod
    def clustered(
        cls,
        rows: int,
        cols: int,
        fault_rate: float,
        cluster_size: int = 4,
        seed: SeedLike = None,
    ) -> "FaultMap":
        """Spatially clustered faults (e.g. from localized manufacturing defects).

        Faults are added as square clusters of roughly ``cluster_size`` PEs
        until the target fault count is reached; the final cluster is truncated
        so the realised count matches ``round(fault_rate * rows * cols)``.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if cluster_size <= 0:
            raise ValueError("cluster_size must be positive")
        rng = new_rng(seed)
        target = int(round(fault_rate * rows * cols))
        faulty = np.zeros((rows, cols), dtype=bool)
        side = max(1, int(round(np.sqrt(cluster_size))))
        guard = 0
        while faulty.sum() < target and guard < 100 * rows * cols:
            guard += 1
            top = int(rng.integers(0, rows))
            left = int(rng.integers(0, cols))
            block = faulty[top:top + side, left:left + side]
            needed = target - int(faulty.sum())
            flat = block.reshape(-1)
            healthy = np.flatnonzero(~flat)
            to_fail = healthy[:needed]
            flat[to_fail] = True
            faulty[top:top + side, left:left + side] = flat.reshape(block.shape)
        return cls(faulty)

    @classmethod
    def faulty_rows(cls, rows: int, cols: int, row_indices: Iterable[int]) -> "FaultMap":
        """Whole rows dead (e.g. broken accumulation chains)."""
        faulty = np.zeros((rows, cols), dtype=bool)
        for index in row_indices:
            faulty[index, :] = True
        return cls(faulty)

    @classmethod
    def faulty_columns(cls, rows: int, cols: int, col_indices: Iterable[int]) -> "FaultMap":
        """Whole columns dead (e.g. broken weight-load buses)."""
        faulty = np.zeros((rows, cols), dtype=bool)
        for index in col_indices:
            faulty[:, index] = True
        return cls(faulty)

    # -- properties -----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """Read-only boolean array, ``True`` where the PE is faulty."""
        return self._faulty

    @property
    def rows(self) -> int:
        return self._faulty.shape[0]

    @property
    def cols(self) -> int:
        return self._faulty.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self._faulty.shape

    @property
    def num_pes(self) -> int:
        return self._faulty.size

    @property
    def num_faulty(self) -> int:
        return int(self._faulty.sum())

    @property
    def fault_rate(self) -> float:
        """Fraction of faulty PEs — the statistic Reduce keys its lookup on."""
        return self.num_faulty / self.num_pes

    def faulty_indices(self) -> np.ndarray:
        """``(K, 2)`` array of the (row, col) coordinates of faulty PEs."""
        return np.argwhere(self._faulty)

    def row_fault_counts(self) -> np.ndarray:
        """Number of faulty PEs in each row."""
        return self._faulty.sum(axis=1)

    def column_fault_counts(self) -> np.ndarray:
        """Number of faulty PEs in each column."""
        return self._faulty.sum(axis=0)

    def rows_with_faults(self) -> np.ndarray:
        return np.flatnonzero(self.row_fault_counts() > 0)

    def columns_with_faults(self) -> np.ndarray:
        return np.flatnonzero(self.column_fault_counts() > 0)

    # -- transformations -------------------------------------------------------

    def permuted_columns(self, permutation: Sequence[int]) -> "FaultMap":
        """Return a new map with columns reordered by ``permutation``.

        Used by fault-aware mapping (FAM): logically re-mapping which weight
        column lands on which physical column is equivalent to permuting the
        columns of the fault map seen by the weights.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.cols,) or sorted(perm.tolist()) != list(range(self.cols)):
            raise ValueError("permutation must be a permutation of range(cols)")
        return FaultMap(self._faulty[:, perm])

    def union(self, other: "FaultMap") -> "FaultMap":
        """PEs faulty in either map (e.g. faults appearing over a device's lifetime)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return FaultMap(self._faulty | other.array)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "faulty_indices": [[int(r), int(c)] for r, c in self.faulty_indices()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultMap":
        return cls.from_indices(
            int(data["rows"]), int(data["cols"]), [tuple(pair) for pair in data["faulty_indices"]]
        )

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultMap):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._faulty, other.array))

    def __hash__(self) -> int:
        return hash((self.shape, self._faulty.tobytes()))

    def __repr__(self) -> str:
        return (
            f"FaultMap({self.rows}x{self.cols}, faulty={self.num_faulty}, "
            f"rate={self.fault_rate:.4f})"
        )
