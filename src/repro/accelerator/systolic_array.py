"""Systolic-array accelerator model.

The model follows the TPU-style weight-stationary design assumed by the
paper (and by Zhang et al., VTS 2018, whose FAP-enabled accelerator the paper
adopts): an ``R x C`` grid of multiply-accumulate PEs, where each PE holds one
weight, activations stream in from the left (one row per reduction index) and
partial sums flow down each column (one column per output neuron / channel).

The class bundles the array geometry, an optional :class:`FaultMap`, and the
technology parameters used by the timing and energy models.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.accelerator.fault_map import FaultMap


@dataclasses.dataclass(frozen=True)
class ArrayTechnology:
    """Technology/operating parameters used by the timing and energy models.

    Default values are representative of an edge-scale inference accelerator
    in a recent CMOS node; the experiments only rely on *relative* numbers.
    """

    frequency_mhz: float = 700.0
    mac_energy_pj: float = 0.9
    sram_access_energy_pj: float = 5.0
    dram_access_energy_pj: float = 160.0
    bytes_per_weight: int = 1
    bytes_per_activation: int = 1

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")
        if min(self.mac_energy_pj, self.sram_access_energy_pj, self.dram_access_energy_pj) < 0:
            raise ValueError("energy parameters must be non-negative")


class SystolicArray:
    """Geometry + fault state of a weight-stationary systolic array."""

    def __init__(
        self,
        rows: int = 256,
        cols: int = 256,
        fault_map: Optional[FaultMap] = None,
        technology: Optional[ArrayTechnology] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if fault_map is not None and fault_map.shape != (rows, cols):
            raise ValueError(
                f"fault map shape {fault_map.shape} does not match array ({rows}, {cols})"
            )
        self.rows = rows
        self.cols = cols
        self.fault_map = fault_map if fault_map is not None else FaultMap.none(rows, cols)
        self.technology = technology if technology is not None else ArrayTechnology()

    # -- basic properties -----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def num_faulty_pes(self) -> int:
        return self.fault_map.num_faulty

    @property
    def fault_rate(self) -> float:
        return self.fault_map.fault_rate

    @property
    def is_fault_free(self) -> bool:
        return self.num_faulty_pes == 0

    # -- derived views ----------------------------------------------------------

    def with_fault_map(self, fault_map: FaultMap) -> "SystolicArray":
        """Return a copy of this array with a different fault map."""
        return SystolicArray(self.rows, self.cols, fault_map=fault_map, technology=self.technology)

    def fault_free(self) -> "SystolicArray":
        """Return a fault-free copy (the golden reference array)."""
        return SystolicArray(self.rows, self.cols, technology=self.technology)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "fault_map": self.fault_map.to_dict(),
            "technology": dataclasses.asdict(self.technology),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystolicArray":
        fault_map = FaultMap.from_dict(data["fault_map"]) if "fault_map" in data else None
        technology = (
            ArrayTechnology(**data["technology"]) if "technology" in data else None
        )
        return cls(
            int(data["rows"]), int(data["cols"]), fault_map=fault_map, technology=technology
        )

    def __repr__(self) -> str:
        return (
            f"SystolicArray({self.rows}x{self.cols}, faulty_pes={self.num_faulty_pes}, "
            f"fault_rate={self.fault_rate:.4f})"
        )
