"""First-order energy model for the systolic-array accelerator.

Energy is decomposed into MAC energy, on-chip SRAM traffic (weights loaded
once per tile, activations and partial sums streamed per GEMM) and off-chip
DRAM traffic (each weight and input activation fetched once per inference).
The constants come from :class:`~repro.accelerator.systolic_array.ArrayTechnology`
and are representative rather than calibrated; experiments use relative
comparisons only.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro import nn
from repro.accelerator.systolic_array import ArrayTechnology, SystolicArray
from repro.accelerator.timing import GemmWorkload, model_gemm_workloads


@dataclasses.dataclass(frozen=True)
class LayerEnergy:
    """Energy estimate of one layer (all numbers in nanojoules)."""

    name: str
    mac_nj: float
    sram_nj: float
    dram_nj: float

    @property
    def total_nj(self) -> float:
        return self.mac_nj + self.sram_nj + self.dram_nj


@dataclasses.dataclass(frozen=True)
class ModelEnergy:
    """Aggregate per-inference energy estimate."""

    layers: Tuple[LayerEnergy, ...]

    @property
    def total_nj(self) -> float:
        return sum(layer.total_nj for layer in self.layers)

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6

    def per_layer(self) -> Dict[str, float]:
        return {layer.name: layer.total_nj for layer in self.layers}


def gemm_energy(
    workload: GemmWorkload,
    technology: ArrayTechnology,
    rows: int,
    cols: int,
    zero_weight_fraction: float = 0.0,
) -> LayerEnergy:
    """Energy of one GEMM.

    ``zero_weight_fraction`` models the MAC energy saved by fault-aware
    pruning / clock-gated zero weights (the FAP hardware gates the multiplier
    of bypassed PEs).
    """
    if not 0.0 <= zero_weight_fraction <= 1.0:
        raise ValueError("zero_weight_fraction must be in [0, 1]")
    macs = workload.macs * (1.0 - zero_weight_fraction)
    mac_nj = macs * technology.mac_energy_pj * 1e-3

    row_tiles = -(-workload.k // rows)
    col_tiles = -(-workload.n // cols)
    weight_loads = workload.k * workload.n  # each weight loaded once per inference
    activation_reads = workload.m * workload.k * col_tiles  # activations re-streamed per column tile
    partial_sum_writes = workload.m * workload.n * row_tiles
    sram_accesses = weight_loads + activation_reads + partial_sum_writes
    sram_nj = sram_accesses * technology.sram_access_energy_pj * 1e-3

    dram_bytes = (
        workload.k * workload.n * technology.bytes_per_weight
        + workload.m * workload.k * technology.bytes_per_activation
    )
    dram_nj = dram_bytes * technology.dram_access_energy_pj * 1e-3
    return LayerEnergy(name=workload.name, mac_nj=mac_nj, sram_nj=sram_nj, dram_nj=dram_nj)


def estimate_model_energy(
    model: nn.Module,
    array: SystolicArray,
    input_shape: Sequence[int],
    batch_size: int = 1,
    zero_weight_fraction: float = 0.0,
) -> ModelEnergy:
    """Per-inference energy estimate of a model on the given array."""
    layers = [
        gemm_energy(workload, array.technology, array.rows, array.cols, zero_weight_fraction)
        for workload in model_gemm_workloads(model, input_shape, batch_size=batch_size)
    ]
    return ModelEnergy(layers=tuple(layers))
