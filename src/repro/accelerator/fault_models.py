"""Fault-injection models generating :class:`FaultMap` instances.

A fault model captures *how* permanent faults are distributed over the PE
array of a fabricated chip.  The paper uses a uniformly random model (as in
Zhang et al., VTS 2018); clustered and row/column models are provided for the
sensitivity ablation (experiment A2 in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.accelerator.fault_map import FaultMap
from repro.utils.rng import SeedLike, new_rng


class FaultModel:
    """Base class: sample fault maps for an ``R x C`` array."""

    name: str = "base"

    def sample(self, rows: int, cols: int, fault_rate: float, rng: np.random.Generator) -> FaultMap:
        raise NotImplementedError  # pragma: no cover - abstract

    def sample_many(
        self,
        rows: int,
        cols: int,
        fault_rate: float,
        count: int,
        seed: SeedLike = None,
    ) -> List[FaultMap]:
        """Sample ``count`` independent fault maps at the same fault rate."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = new_rng(seed)
        return [self.sample(rows, cols, fault_rate, rng) for _ in range(count)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclasses.dataclass
class RandomFaultModel(FaultModel):
    """Uniformly random permanent faults (the paper's model).

    ``exact=True`` fixes the number of faulty PEs to ``round(rate * PEs)``.
    """

    exact: bool = True
    name: str = "random"

    def sample(self, rows: int, cols: int, fault_rate: float, rng: np.random.Generator) -> FaultMap:
        return FaultMap.random(rows, cols, fault_rate, seed=rng, exact=self.exact)


@dataclasses.dataclass
class ClusteredFaultModel(FaultModel):
    """Spatially clustered faults modelling localized manufacturing defects."""

    cluster_size: int = 4
    name: str = "clustered"

    def sample(self, rows: int, cols: int, fault_rate: float, rng: np.random.Generator) -> FaultMap:
        return FaultMap.clustered(rows, cols, fault_rate, cluster_size=self.cluster_size, seed=rng)


@dataclasses.dataclass
class RowFaultModel(FaultModel):
    """Entire rows fail (e.g. broken horizontal interconnect)."""

    name: str = "row"

    def sample(self, rows: int, cols: int, fault_rate: float, rng: np.random.Generator) -> FaultMap:
        num_rows = int(round(fault_rate * rows))
        chosen = rng.choice(rows, size=num_rows, replace=False) if num_rows else []
        return FaultMap.faulty_rows(rows, cols, chosen)


@dataclasses.dataclass
class ColumnFaultModel(FaultModel):
    """Entire columns fail (e.g. broken weight-load buses)."""

    name: str = "column"

    def sample(self, rows: int, cols: int, fault_rate: float, rng: np.random.Generator) -> FaultMap:
        num_cols = int(round(fault_rate * cols))
        chosen = rng.choice(cols, size=num_cols, replace=False) if num_cols else []
        return FaultMap.faulty_columns(rows, cols, chosen)


_FAULT_MODELS = {
    "random": RandomFaultModel,
    "clustered": ClusteredFaultModel,
    "row": RowFaultModel,
    "column": ColumnFaultModel,
}


def get_fault_model(name: str, **kwargs) -> FaultModel:
    """Build a fault model by name (``random``, ``clustered``, ``row``, ``column``)."""
    key = name.lower()
    if key not in _FAULT_MODELS:
        raise KeyError(f"unknown fault model {name!r}; available: {', '.join(sorted(_FAULT_MODELS))}")
    return _FAULT_MODELS[key](**kwargs)


def available_fault_models() -> Sequence[str]:
    return tuple(sorted(_FAULT_MODELS))
