"""PE-bypass (array shrinking) fault-mitigation baseline.

Classic fault-tolerant systolic-array schemes (Kim & Reddy, 1989) bypass the
rows/columns that contain faulty PEs so that the remaining PEs form a smaller
fault-free array.  Accuracy is preserved perfectly, but throughput drops with
the effective array size — which is the motivation the paper gives for
preferring FAP + retraining.  This module quantifies that performance cost so
the trade-off can be reproduced (ablation A3 in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.systolic_array import SystolicArray
from repro.accelerator.timing import ModelTiming, estimate_model_timing


@dataclasses.dataclass(frozen=True)
class BypassPlan:
    """Effective array size after bypassing faulty rows and/or columns."""

    original_rows: int
    original_cols: int
    effective_rows: int
    effective_cols: int

    @property
    def surviving_pe_fraction(self) -> float:
        return (self.effective_rows * self.effective_cols) / (self.original_rows * self.original_cols)

    def __post_init__(self) -> None:
        if self.effective_rows <= 0 or self.effective_cols <= 0:
            raise ValueError(
                "bypassing removed every row or column; the chip cannot run the workload"
            )


def column_bypass_plan(fault_map: FaultMap) -> BypassPlan:
    """Bypass every column containing at least one faulty PE."""
    bad_columns = len(fault_map.columns_with_faults())
    return BypassPlan(
        original_rows=fault_map.rows,
        original_cols=fault_map.cols,
        effective_rows=fault_map.rows,
        effective_cols=fault_map.cols - bad_columns,
    )


def row_bypass_plan(fault_map: FaultMap) -> BypassPlan:
    """Bypass every row containing at least one faulty PE."""
    bad_rows = len(fault_map.rows_with_faults())
    return BypassPlan(
        original_rows=fault_map.rows,
        original_cols=fault_map.cols,
        effective_rows=fault_map.rows - bad_rows,
        effective_cols=fault_map.cols,
    )


def best_bypass_plan(fault_map: FaultMap) -> BypassPlan:
    """Choose row- or column-bypass, whichever preserves more PEs.

    Either plan may be infeasible at high fault rates (every row/column hit);
    infeasible plans are skipped, and ``ValueError`` is raised when both fail.
    """
    plans = []
    for builder in (column_bypass_plan, row_bypass_plan):
        try:
            plans.append(builder(fault_map))
        except ValueError:
            continue
    if not plans:
        raise ValueError("bypass mitigation is infeasible: every row and column contains faults")
    return max(plans, key=lambda plan: plan.surviving_pe_fraction)


def bypass_timing(
    model: nn.Module,
    array: SystolicArray,
    input_shape: Sequence[int],
    batch_size: int = 1,
    plan: str = "best",
) -> Tuple[BypassPlan, ModelTiming]:
    """Timing of a model on the bypassed (shrunk) array.

    ``plan`` selects ``"row"``, ``"column"`` or ``"best"`` bypassing.
    """
    builders = {
        "row": row_bypass_plan,
        "column": column_bypass_plan,
        "best": best_bypass_plan,
    }
    if plan not in builders:
        raise ValueError(f"unknown bypass plan {plan!r}; expected one of {sorted(builders)}")
    chosen = builders[plan](array.fault_map)
    timing = estimate_model_timing(
        model,
        array,
        input_shape,
        batch_size=batch_size,
        effective_rows=chosen.effective_rows,
        effective_cols=chosen.effective_cols,
    )
    return chosen, timing


def bypass_slowdown(
    model: nn.Module,
    array: SystolicArray,
    input_shape: Sequence[int],
    batch_size: int = 1,
    plan: str = "best",
) -> float:
    """Latency ratio (bypassed array / full array); >= 1.0 by construction."""
    _, shrunk = bypass_timing(model, array, input_shape, batch_size=batch_size, plan=plan)
    full = estimate_model_timing(model, array, input_shape, batch_size=batch_size)
    if full.total_cycles == 0:
        return 1.0
    return shrunk.total_cycles / full.total_cycles
