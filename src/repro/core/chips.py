"""Faulty-chip abstractions.

Each fabricated accelerator chip has its own permanent-fault map.  The Reduce
framework receives the fault maps of all chips to be deployed and decides,
per chip, how much fault-aware retraining to spend on it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.accelerator.fault_map import FaultMap
from repro.accelerator.fault_models import FaultModel, RandomFaultModel
from repro.accelerator.systolic_array import SystolicArray
from repro.utils.rng import SeedLike, new_rng


@dataclasses.dataclass(frozen=True)
class Chip:
    """A fabricated chip: an identifier plus its permanent-fault map."""

    chip_id: str
    fault_map: FaultMap

    @property
    def fault_rate(self) -> float:
        """Fraction of faulty PEs — the statistic Reduce keys its policy on."""
        return self.fault_map.fault_rate

    @property
    def num_faulty_pes(self) -> int:
        return self.fault_map.num_faulty

    def array(self, technology=None) -> SystolicArray:
        """The chip viewed as a :class:`SystolicArray` with its fault map."""
        rows, cols = self.fault_map.shape
        return SystolicArray(rows, cols, fault_map=self.fault_map, technology=technology)

    def to_dict(self) -> Dict[str, Any]:
        return {"chip_id": self.chip_id, "fault_map": self.fault_map.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Chip":
        return cls(chip_id=str(data["chip_id"]), fault_map=FaultMap.from_dict(data["fault_map"]))


class ChipPopulation:
    """An ordered collection of faulty chips (e.g. one production lot)."""

    def __init__(self, chips: Sequence[Chip]) -> None:
        if not chips:
            raise ValueError("a chip population must contain at least one chip")
        ids = [chip.chip_id for chip in chips]
        if len(set(ids)) != len(ids):
            raise ValueError("chip identifiers must be unique")
        shapes = {chip.fault_map.shape for chip in chips}
        if len(shapes) != 1:
            raise ValueError(f"all chips must share the same array shape, got {shapes}")
        self._chips: List[Chip] = list(chips)

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        count: int,
        rows: int,
        cols: int,
        fault_rates: Union[Tuple[float, float], Sequence[float], float] = (0.0, 0.3),
        fault_model: Optional[FaultModel] = None,
        seed: SeedLike = None,
        id_prefix: str = "chip",
    ) -> "ChipPopulation":
        """Generate a random chip population.

        ``fault_rates`` may be a ``(low, high)`` tuple (each chip's fault rate
        is drawn uniformly from the interval — modelling chips of varying
        quality, as in the paper's 100-chip experiment), an explicit sequence
        of per-chip fault rates, or a single value shared by all chips.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        rng = new_rng(seed)
        model = fault_model if fault_model is not None else RandomFaultModel()

        if isinstance(fault_rates, (int, float)):
            rates = np.full(count, float(fault_rates))
        elif isinstance(fault_rates, tuple) and len(fault_rates) == 2:
            low, high = fault_rates
            if not 0.0 <= low <= high <= 1.0:
                raise ValueError(f"invalid fault-rate range {fault_rates}")
            rates = rng.uniform(low, high, size=count)
        else:
            rates = np.asarray(list(fault_rates), dtype=float)
            if rates.shape != (count,):
                raise ValueError(
                    f"expected {count} per-chip fault rates, got {rates.shape[0]}"
                )
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("fault rates must be in [0, 1]")

        digits = max(3, len(str(count)))
        chips = [
            Chip(
                chip_id=f"{id_prefix}-{index:0{digits}d}",
                fault_map=model.sample(rows, cols, float(rates[index]), rng),
            )
            for index in range(count)
        ]
        return cls(chips)

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._chips)

    def __iter__(self) -> Iterator[Chip]:
        return iter(self._chips)

    def __getitem__(self, index: int) -> Chip:
        return self._chips[index]

    @property
    def chips(self) -> List[Chip]:
        return list(self._chips)

    @property
    def array_shape(self) -> Tuple[int, int]:
        return self._chips[0].fault_map.shape

    # -- statistics ----------------------------------------------------------------

    def fault_rates(self) -> np.ndarray:
        """Per-chip fault rates in population order."""
        return np.array([chip.fault_rate for chip in self._chips])

    def fault_rate_summary(self) -> Dict[str, float]:
        rates = self.fault_rates()
        return {
            "min": float(rates.min()),
            "max": float(rates.max()),
            "mean": float(rates.mean()),
            "median": float(np.median(rates)),
        }

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"chips": [chip.to_dict() for chip in self._chips]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChipPopulation":
        return cls([Chip.from_dict(entry) for entry in data["chips"]])

    def __repr__(self) -> str:
        summary = self.fault_rate_summary()
        return (
            f"ChipPopulation(n={len(self)}, array={self.array_shape[0]}x{self.array_shape[1]}, "
            f"fault_rate mean={summary['mean']:.3f} range=[{summary['min']:.3f}, {summary['max']:.3f}])"
        )
