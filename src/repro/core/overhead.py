"""Retraining-overhead accounting.

The paper's goal is to reduce the *overheads* of fault-aware retraining.  In
the evaluation those overheads are expressed in epochs; this module converts
epoch counts into wall-clock time and energy for a given training platform so
that campaign results can be reported in the units a production flow cares
about (e.g. "GPU-hours per thousand chips").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.reduce import CampaignResult


@dataclasses.dataclass(frozen=True)
class RetrainingCostModel:
    """Per-epoch cost of fault-aware retraining on the tuning platform.

    Defaults are representative of fine-tuning a VGG11-class network on
    CIFAR-10 with a single workstation GPU; both values are linear knobs, so
    any platform can be modelled by overriding them.
    """

    seconds_per_epoch: float = 30.0
    joules_per_epoch: float = 7500.0  # ~250 W for 30 s
    evaluation_seconds: float = 2.0
    evaluation_joules: float = 500.0

    def __post_init__(self) -> None:
        if self.seconds_per_epoch < 0 or self.joules_per_epoch < 0:
            raise ValueError("per-epoch costs must be non-negative")
        if self.evaluation_seconds < 0 or self.evaluation_joules < 0:
            raise ValueError("per-evaluation costs must be non-negative")


@dataclasses.dataclass(frozen=True)
class CampaignOverhead:
    """Aggregate retraining overhead of one campaign under a cost model."""

    policy_name: str
    num_chips: int
    total_epochs: float
    total_evaluations: int
    retraining_seconds: float
    evaluation_seconds: float
    retraining_joules: float
    evaluation_joules: float

    @property
    def total_seconds(self) -> float:
        return self.retraining_seconds + self.evaluation_seconds

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0

    @property
    def total_joules(self) -> float:
        return self.retraining_joules + self.evaluation_joules

    @property
    def total_kwh(self) -> float:
        return self.total_joules / 3.6e6

    @property
    def seconds_per_chip(self) -> float:
        return self.total_seconds / max(self.num_chips, 1)

    def as_dict(self) -> Dict[str, float]:
        return {
            "policy": self.policy_name,
            "num_chips": self.num_chips,
            "total_epochs": self.total_epochs,
            "total_evaluations": self.total_evaluations,
            "total_hours": self.total_hours,
            "total_kwh": self.total_kwh,
            "seconds_per_chip": self.seconds_per_chip,
        }


def campaign_overhead(
    campaign: CampaignResult,
    cost_model: Optional[RetrainingCostModel] = None,
    evaluations_per_chip: int = 1,
) -> CampaignOverhead:
    """Overhead of a retraining campaign under a cost model.

    ``evaluations_per_chip`` counts the test-set evaluations the policy needs
    per chip during Step 3 (1 for Reduce and the fixed policies; the adaptive
    baseline performs one per increment — pass its measured average).
    """
    model = cost_model if cost_model is not None else RetrainingCostModel()
    if evaluations_per_chip < 0:
        raise ValueError("evaluations_per_chip must be non-negative")
    total_epochs = campaign.total_epochs
    total_evaluations = int(round(evaluations_per_chip * campaign.num_chips))
    return CampaignOverhead(
        policy_name=campaign.policy_name,
        num_chips=campaign.num_chips,
        total_epochs=total_epochs,
        total_evaluations=total_evaluations,
        retraining_seconds=total_epochs * model.seconds_per_epoch,
        evaluation_seconds=total_evaluations * model.evaluation_seconds,
        retraining_joules=total_epochs * model.joules_per_epoch,
        evaluation_joules=total_evaluations * model.evaluation_joules,
    )


def overhead_saving(
    proposed: CampaignOverhead, baseline: CampaignOverhead
) -> Dict[str, float]:
    """Relative savings of ``proposed`` vs ``baseline`` (positive = cheaper)."""
    def _saving(new: float, old: float) -> float:
        if old <= 0:
            return 0.0
        return 1.0 - new / old

    return {
        "epochs_saving": _saving(proposed.total_epochs, baseline.total_epochs),
        "time_saving": _saving(proposed.total_seconds, baseline.total_seconds),
        "energy_saving": _saving(proposed.total_joules, baseline.total_joules),
    }
