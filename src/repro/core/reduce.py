"""The Reduce framework: orchestration of Steps 1-3.

``ReduceFramework`` ties everything together exactly as in Fig. 1 of the
paper: given a pre-trained DNN, a dataset, a user-defined accuracy constraint
and the fault maps of the faulty chips, it

1. computes the DNN's resilience to faults at different fault rates and
   amounts of retraining (:class:`~repro.core.resilience.ResilienceAnalyzer`),
2. selects the retraining amount for each chip from the resilience profile
   (:class:`~repro.core.selection.ResilienceDrivenPolicy`), and
3. performs fault-aware retraining per chip and returns the fault-aware DNNs
   together with the bookkeeping needed to reproduce Fig. 3
   (:class:`CampaignResult`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.accelerator.batched import (
    BatchedFaultTrainer,
    EvalPipeline,
    evaluate_chip_accuracies,
)
from repro.accelerator.systolic_array import SystolicArray
from repro.core.chips import Chip, ChipPopulation
from repro.core.constraints import AccuracyConstraint
from repro.core.profiles import ResilienceProfile
from repro.core.resilience import ResilienceAnalyzer, ResilienceConfig
from repro.core.selection import FixedEpochPolicy, ResilienceDrivenPolicy, RetrainingPolicy
from repro.data.synthetic import DatasetBundle
from repro.mitigation.strategy import (
    DEFAULT_STRATEGY_NAME,
    StrategyLike,
    resolve_strategy,
)
from repro.nn.serialization import clone_state_dict
from repro.training import (
    Trainer,
    TrainingConfig,
    enforce_weight_masks,
    evaluate_accuracy,
)
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("core.reduce")

# Chips whose Step-2 budgets agree are retrained together in stacked batches
# of at most this many chips (bounds the stacked-weight memory footprint).
DEFAULT_FAT_BATCH = 8


@dataclasses.dataclass(frozen=True)
class ChipRetrainingResult:
    """Per-chip outcome of a retraining campaign (one point of Fig. 3a-e)."""

    chip_id: str
    fault_rate: float
    epochs_allocated: float
    epochs_trained: float
    accuracy_before: float
    accuracy_after: float
    meets_constraint: bool
    masked_weight_fraction: float
    # The mitigation strategy the chip was prepared with ("fat" = the
    # classic FAP-masks-plus-retraining flow of the original campaigns).
    strategy: str = DEFAULT_STRATEGY_NAME

    @property
    def accuracy_recovered(self) -> float:
        return self.accuracy_after - self.accuracy_before

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChipRetrainingResult":
        return cls(
            chip_id=str(data["chip_id"]),
            fault_rate=float(data["fault_rate"]),
            epochs_allocated=float(data["epochs_allocated"]),
            epochs_trained=float(data["epochs_trained"]),
            accuracy_before=float(data["accuracy_before"]),
            accuracy_after=float(data["accuracy_after"]),
            meets_constraint=bool(data["meets_constraint"]),
            masked_weight_fraction=float(data["masked_weight_fraction"]),
            strategy=str(data.get("strategy", DEFAULT_STRATEGY_NAME)),
        )


@dataclasses.dataclass
class CampaignResult:
    """Aggregate outcome of retraining a whole chip population under one policy."""

    policy_name: str
    target_accuracy: float
    clean_accuracy: float
    results: List[ChipRetrainingResult]
    # Chips the supervisor gave up on (quarantined chunks): one record per
    # chip with at least ``chip_id``, ``reason`` and ``attempts``.  A
    # degraded campaign reports them here instead of crashing; the per-chip
    # views below cover only the chips that completed.
    failed_chips: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.results and not self.failed_chips:
            raise ValueError("a campaign result must contain at least one chip result")

    # -- per-chip views -------------------------------------------------------

    @property
    def num_chips(self) -> int:
        return len(self.results)

    def epochs(self) -> np.ndarray:
        """Per-chip retraining amounts actually spent (scatter y-axis of Fig. 3)."""
        return np.array([result.epochs_trained for result in self.results])

    def accuracies(self) -> np.ndarray:
        """Per-chip final accuracies (scatter x-axis of Fig. 3)."""
        return np.array([result.accuracy_after for result in self.results])

    def fault_rates(self) -> np.ndarray:
        return np.array([result.fault_rate for result in self.results])

    # -- aggregates ------------------------------------------------------------

    @property
    def average_epochs(self) -> float:
        """Average retraining epochs per chip (x-axis of Fig. 3f)."""
        return float(self.epochs().mean())

    @property
    def total_epochs(self) -> float:
        """Total retraining cost over the whole population."""
        return float(self.epochs().sum())

    @property
    def fraction_meeting_constraint(self) -> float:
        """Fraction of chips meeting the accuracy constraint (y-axis of Fig. 3f)."""
        return float(np.mean([result.meets_constraint for result in self.results]))

    @property
    def percent_meeting_constraint(self) -> float:
        return 100.0 * self.fraction_meeting_constraint

    @property
    def mean_accuracy(self) -> float:
        return float(self.accuracies().mean())

    @property
    def worst_accuracy(self) -> float:
        return float(self.accuracies().min())

    def summary(self) -> Dict[str, float]:
        """The row this policy contributes to Fig. 3f."""
        return {
            "policy": self.policy_name,
            "num_chips": self.num_chips,
            "target_accuracy": self.target_accuracy,
            "average_epochs": self.average_epochs,
            "total_epochs": self.total_epochs,
            "percent_meeting_constraint": self.percent_meeting_constraint,
            "mean_accuracy": self.mean_accuracy,
            "worst_accuracy": self.worst_accuracy,
        }

    def scatter_points(self) -> List[Dict[str, float]]:
        """(accuracy, epochs) pairs for the Fig. 3a-e style scatter plots."""
        return [
            {
                "chip_id": result.chip_id,
                "accuracy": result.accuracy_after,
                "epochs": result.epochs_trained,
                "fault_rate": result.fault_rate,
                "meets_constraint": float(result.meets_constraint),
            }
            for result in self.results
        ]

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "policy_name": self.policy_name,
            "target_accuracy": self.target_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "summary": self.summary(),
            "chips": [dataclasses.asdict(result) for result in self.results],
        }
        if self.failed_chips:
            payload["failed_chips"] = list(self.failed_chips)
        return payload


def _build_chip_result(
    chip: Chip,
    masks: Dict[str, np.ndarray],
    epochs_allocated: float,
    epochs_trained: float,
    accuracy_before: float,
    accuracy_after: float,
    target: float,
    strategy: str = DEFAULT_STRATEGY_NAME,
) -> ChipRetrainingResult:
    """Assemble one chip's result row (shared by the serial and batched paths)."""
    masked = sum(int(mask.sum()) for mask in masks.values())
    total = sum(mask.size for mask in masks.values())
    return ChipRetrainingResult(
        chip_id=chip.chip_id,
        fault_rate=chip.fault_rate,
        epochs_allocated=float(epochs_allocated),
        epochs_trained=float(epochs_trained),
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
        meets_constraint=accuracy_after >= target - 1e-12,
        masked_weight_fraction=masked / total if total else 0.0,
        strategy=strategy,
    )


@dataclasses.dataclass
class ReduceConfig:
    """Top-level configuration of the Reduce framework."""

    constraint: AccuracyConstraint = dataclasses.field(
        default_factory=lambda: AccuracyConstraint.within_drop_of_clean(0.02)
    )
    resilience: ResilienceConfig = dataclasses.field(default_factory=ResilienceConfig)
    retraining: Optional[TrainingConfig] = None
    statistic: str = "max"
    interpolation: str = "ceil"
    margin_epochs: float = 0.0

    def effective_retraining_config(self) -> TrainingConfig:
        """Training hyper-parameters used for per-chip retraining (Step 3)."""
        return self.retraining if self.retraining is not None else self.resilience.training


class ReduceFramework:
    """End-to-end implementation of the Reduce flow (Fig. 1 of the paper)."""

    def __init__(
        self,
        model: nn.Module,
        pretrained_state: Dict[str, np.ndarray],
        bundle: DatasetBundle,
        array: SystolicArray,
        config: Optional[ReduceConfig] = None,
        eval_pipeline: Optional[EvalPipeline] = None,
    ) -> None:
        self.model = model
        self.pretrained_state = clone_state_dict(pretrained_state)
        self.bundle = bundle
        self.array = array
        self.config = config if config is not None else ReduceConfig()
        # Pipelined-eval configuration + the shared lowering cache.  Passing
        # one pipeline into several frameworks (as the experiment context
        # does) shares the cache across them: triage, campaign chunks and
        # whole strategy-sweep arms over the same population lower each eval
        # batch once instead of once per consumer.
        self.eval_pipeline = eval_pipeline if eval_pipeline is not None else EvalPipeline()
        self._profile: Optional[ResilienceProfile] = None
        self._clean_accuracy: Optional[float] = None

    # -- shared helpers -----------------------------------------------------------

    def _restore_pretrained(self) -> None:
        self.model.load_state_dict(self.pretrained_state)

    @property
    def clean_accuracy(self) -> float:
        """Accuracy of the pre-trained model on a fault-free chip."""
        if self._clean_accuracy is None:
            self._restore_pretrained()
            self._clean_accuracy = evaluate_accuracy(self.model, self.bundle.test)
        return self._clean_accuracy

    @property
    def target_accuracy(self) -> float:
        """The accuracy constraint resolved to an absolute threshold."""
        return self.config.constraint.resolve(self.clean_accuracy)

    # -- Step 1: resilience analysis -----------------------------------------------

    def analyze_resilience(self, force: bool = False) -> ResilienceProfile:
        """Run (or return the cached) resilience analysis."""
        if self._profile is None or force:
            analyzer = ResilienceAnalyzer(
                self.model,
                self.pretrained_state,
                self.bundle,
                self.array,
                self.config.resilience,
            )
            self._profile = analyzer.run()
            self._clean_accuracy = self._profile.clean_accuracy
        return self._profile

    def set_profile(self, profile: ResilienceProfile) -> None:
        """Inject a pre-computed resilience profile (e.g. loaded from disk)."""
        self._profile = profile
        self._clean_accuracy = profile.clean_accuracy

    def set_clean_accuracy(self, accuracy: float) -> None:
        """Inject a pre-computed clean accuracy (e.g. from the experiment
        context), avoiding a redundant test-set evaluation."""
        self._clean_accuracy = float(accuracy)

    # -- Step 2: retraining-amount selection -----------------------------------------

    def build_policy(self, statistic: Optional[str] = None) -> ResilienceDrivenPolicy:
        """The resilience-driven selection policy backed by the Step-1 profile."""
        profile = self.analyze_resilience()
        return ResilienceDrivenPolicy(
            profile=profile,
            constraint=self.config.constraint,
            statistic=statistic if statistic is not None else self.config.statistic,
            interpolation=self.config.interpolation,
            margin_epochs=self.config.margin_epochs,
        )

    def select_retraining_amounts(
        self, population: ChipPopulation, statistic: Optional[str] = None
    ) -> Dict[str, float]:
        """Per-chip retraining amounts (Step 2 output)."""
        return self.build_policy(statistic).epochs_for_population(population)

    # -- Step 2.5: batched population triage --------------------------------------

    def triage_population(
        self,
        chips: Iterable[Chip],
        chip_chunk: int = 16,
        strategy: StrategyLike = None,
        backend: Optional[str] = None,
    ) -> Dict[str, float]:
        """Pre-retraining accuracy of every chip, in batched multi-chip passes.

        This is the "accuracy checkpoint" each retraining run would otherwise
        evaluate serially (``accuracy_before`` in the per-chip results): the
        pre-trained model under each chip's masks.  ``strategy`` selects how
        those masks are built (plain FAP masks by default; FAM strategies
        measure under their permuted masks — bypass strategies measure under
        the plain masks, their *pre-mitigation* faulty accuracy).  All chips
        share the pre-trained weights and differ only in their masks, so a
        :class:`~repro.accelerator.batched.BatchedFaultEvaluator` computes B
        of them per forward sweep.  Results are numerically identical to the
        serial per-chip evaluation.  ``backend`` selects the compute backend
        the evaluator replays its captured forward graphs through (``None``
        keeps the eager path; ``"numpy"`` is bit-identical to it).
        """
        chip_list = list(chips)
        if not chip_list:
            return {}
        strategy = resolve_strategy(strategy)
        self._restore_pretrained()
        eval_batch = self.config.effective_retraining_config().batch_size * 4
        accuracies: List[float] = []
        # The pipeline's shared lowering cache serves the whole population —
        # and any other consumer of this pipeline (later campaign chunks,
        # other sweep arms): every chunk evaluates the same unshuffled test
        # batches against the same pre-trained weights, so each batch is
        # im2col-lowered exactly once regardless of how many chip chunks (or
        # strategy arms) walk it.
        pipeline = self.eval_pipeline
        # Masks are built (and released) chunk by chunk so peak memory is
        # bounded by ``chip_chunk`` mask sets, not the population size.
        for start in range(0, len(chip_list), chip_chunk):
            mask_sets = [
                strategy.chip_masks(self.model, chip.fault_map)
                for chip in chip_list[start:start + chip_chunk]
            ]
            accuracies.extend(
                evaluate_chip_accuracies(
                    self.model,
                    self.bundle.test,
                    mask_sets,
                    batch_size=eval_batch,
                    chip_chunk=chip_chunk,
                    lowering_cache=pipeline.cache,
                    backend=backend,
                    prefetch=pipeline.prefetch,
                )
            )
        return {chip.chip_id: acc for chip, acc in zip(chip_list, accuracies)}

    # -- Step 3: per-chip fault-aware retraining ---------------------------------------

    def _fat_training_config(self) -> TrainingConfig:
        """Training config for Step-3 retraining, with the FAT seed resolved.

        The seed is shared across the whole population (not derived per chip):
        chips differ in their fault masks, not in their data — and a shared
        mini-batch/dropout stream is what lets same-budget chips coalesce into
        one :class:`BatchedFaultTrainer` run that is bit-identical to the
        serial per-chip path.
        """
        return dataclasses.replace(
            self.config.effective_retraining_config(),
            seed=derive_seed(self.config.resilience.seed, "fat"),
        )

    def retrain_chip(
        self,
        chip: Chip,
        epochs: float,
        return_state: bool = False,
        target_accuracy: Optional[float] = None,
        accuracy_before: Optional[float] = None,
        strategy: StrategyLike = None,
        backend: Optional[str] = None,
    ) -> Union[ChipRetrainingResult, tuple]:
        """Mitigate (and possibly retrain) the pre-trained model for one chip.

        The framework model is restored to its pre-trained weights first, so
        repeated calls are independent.  With ``return_state=True`` the
        fault-aware weights (the DNN shipped to that chip) are returned too.
        ``target_accuracy`` overrides the framework's resolved constraint —
        campaign workers pass the value resolved once in the parent process so
        executing a job never needs the clean-accuracy evaluation.
        ``accuracy_before`` injects a pre-computed initial accuracy (from the
        batched :meth:`triage_population` pass, which is numerically identical
        to the serial evaluation) so the per-chip run skips the initial
        test-set sweep; zero-epoch chips then need no training machinery at
        all.

        ``strategy`` selects the mitigation recipe (default: classic FAT).
        Non-retraining strategies clamp the budget to zero; FAM strategies
        retrain under saliency-permuted masks; bypass strategies return the
        clean accuracy for bypassable chips (the shrunk array has no faults)
        and fall back to FAP(+FAT, if the strategy retrains) otherwise.

        ``backend`` is accepted so per-job execution mirrors the batched
        path's signature, but the serial per-chip trainer always executes
        eagerly — backends route the *stacked* substrate, whose ``"numpy"``
        replay is bit-identical to eager execution, so a campaign that mixes
        batched chunks (replayed) with singleton chunks (eager) records the
        same values either way.
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        strategy = resolve_strategy(strategy)
        target = target_accuracy if target_accuracy is not None else self.target_accuracy
        self._restore_pretrained()
        if strategy.bypass and strategy.bypass_plan(chip.fault_map) is not None:
            # Bypassable chip: the surviving PEs form a fault-free array, so
            # the shipped DNN is the unmodified pre-trained model (no weights
            # pruned, nothing retrained).  ``accuracy_before`` remains the
            # chip's pre-mitigation faulty accuracy (under the plain masks,
            # which are only built when triage has not measured it already).
            if accuracy_before is None:
                masks = strategy.chip_masks(self.model, chip.fault_map)
                enforce_weight_masks(self.model, masks)
                accuracy_before = evaluate_accuracy(
                    self.model,
                    self.bundle.test,
                    batch_size=self.config.effective_retraining_config().batch_size * 4,
                )
                self._restore_pretrained()
            result = _build_chip_result(
                chip, {}, 0.0, 0.0, accuracy_before, self.clean_accuracy, target,
                strategy=strategy.name,
            )
            if return_state:
                return result, clone_state_dict(self.model.state_dict())
            return result
        masks = strategy.chip_masks(self.model, chip.fault_map)
        epochs = strategy.effective_epochs(epochs, chip.fault_map)
        if epochs > 0 or return_state or accuracy_before is None:
            training_config = self._fat_training_config()
            trainer = Trainer(
                self.model,
                self.bundle.train,
                self.bundle.test,
                config=training_config,
                masks=masks,
            )
            if accuracy_before is None:
                accuracy_before = trainer.evaluate()
            if epochs > 0:
                history = trainer.train(epochs, include_initial=False)
                accuracy_after = history.final_accuracy
                epochs_trained = history.total_epochs
            else:
                accuracy_after = accuracy_before
                epochs_trained = 0.0
        else:
            # Triage already measured this chip and no retraining or state
            # was requested: the result is fully determined.
            accuracy_after = accuracy_before
            epochs_trained = 0.0
        result = _build_chip_result(
            chip, masks, epochs, epochs_trained, accuracy_before, accuracy_after,
            target, strategy=strategy.name,
        )
        if return_state:
            return result, clone_state_dict(self.model.state_dict())
        return result

    def retrain_chips_batched(
        self,
        chips: Sequence[Chip],
        epochs: float,
        target_accuracy: Optional[float] = None,
        accuracies_before: Optional[Dict[str, float]] = None,
        fat_batch: int = DEFAULT_FAT_BATCH,
        strategy: StrategyLike = None,
        backend: Optional[str] = None,
    ) -> List[ChipRetrainingResult]:
        """Mitigate several chips under one strategy/budget in stacked batches.

        Equivalent to ``[self.retrain_chip(chip, epochs, ...) for chip in
        chips]`` — bit-identical results on this BLAS build — but each batch
        of up to ``fat_batch`` chips shares every GEMM of the retraining loop
        through a :class:`~repro.accelerator.batched.BatchedFaultTrainer`.
        Every parametric layer family stacks (including training-mode batch
        norm, whose per-chip-fold statistics replicate the serial runs), so
        there is no serial fallback: a genuinely unstackable custom layer
        raises :class:`~repro.accelerator.batched.UnsupportedModelError` at
        trainer construction.

        ``accuracies_before`` injects pre-computed initial accuracies (from
        :meth:`triage_population`) per chip id; missing chips are evaluated
        in one batched pass before training.

        ``strategy`` prepares each chip exactly like the serial path: a
        strategy's masks are just another per-chip mask set stacked into the
        batched trainer's keep-multipliers, so FAP/FAM prune masks ride the
        same machinery as plain fault masks.  Bypassable chips under a bypass
        strategy never enter training (their accuracy is preserved by the
        shrunk array); the rest of the batch trains normally.

        ``backend`` selects the compute backend the stacked trainer and
        evaluators replay their captured op graphs through (``None`` keeps
        the eager path; ``"numpy"`` is bit-identical to it).
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if fat_batch < 1:
            raise ValueError(f"fat_batch must be >= 1, got {fat_batch}")
        strategy = resolve_strategy(strategy)
        chip_list = list(chips)
        if not chip_list:
            return []
        target = target_accuracy if target_accuracy is not None else self.target_accuracy
        before_map = accuracies_before or {}
        eval_batch = self.config.effective_retraining_config().batch_size * 4
        pipeline = self.eval_pipeline
        results: List[Optional[ChipRetrainingResult]] = [None] * len(chip_list)

        # Bypassable chips are satisfied by the shrunk array alone: their
        # result is fully determined once the pre-mitigation accuracy is
        # known, so they are peeled off before any stacked training.
        if strategy.bypass:
            bypassed = [
                index for index, chip in enumerate(chip_list)
                if strategy.bypass_plan(chip.fault_map) is not None
            ]
            bypassed_set = set(bypassed)
            trainable = [
                index for index in range(len(chip_list)) if index not in bypassed_set
            ]
        else:
            bypassed = []
            trainable = list(range(len(chip_list)))
        if bypassed:
            before = [before_map.get(chip_list[index].chip_id) for index in bypassed]
            missing = [pos for pos, value in enumerate(before) if value is None]
            if missing:
                self._restore_pretrained()
                mask_sets = [
                    strategy.chip_masks(self.model, chip_list[bypassed[pos]].fault_map)
                    for pos in missing
                ]
                evaluated = evaluate_chip_accuracies(
                    self.model,
                    self.bundle.test,
                    mask_sets,
                    batch_size=eval_batch,
                    chip_chunk=fat_batch,
                    lowering_cache=pipeline.cache,
                    backend=backend,
                    prefetch=pipeline.prefetch,
                )
                for position, pos in enumerate(missing):
                    before[pos] = evaluated[position]
            clean = self.clean_accuracy
            for pos, index in enumerate(bypassed):
                results[index] = _build_chip_result(
                    chip_list[index], {}, 0.0, 0.0, before[pos], clean, target,
                    strategy=strategy.name,
                )

        # Non-retraining strategies spend no budget; bypass-infeasible chips
        # of a retraining bypass strategy fall back to the full FAT budget.
        epochs = float(epochs) if strategy.retrain else 0.0
        for start in range(0, len(trainable), fat_batch):
            indices = trainable[start:start + fat_batch]
            chunk = [chip_list[index] for index in indices]
            self._restore_pretrained()
            mask_sets = [strategy.chip_masks(self.model, chip.fault_map) for chip in chunk]
            if epochs == 0:
                # No training requested: any missing initial accuracy comes
                # from the forward-only batched evaluator (identical to the
                # triage values), and no stacked training machinery is built
                # (mirrors the serial ``retrain_chip`` zero-epoch shortcut).
                before = [before_map.get(chip.chip_id) for chip in chunk]
                missing = [i for i, value in enumerate(before) if value is None]
                if missing:
                    evaluated = evaluate_chip_accuracies(
                        self.model,
                        self.bundle.test,
                        [mask_sets[i] for i in missing],
                        batch_size=eval_batch,
                        chip_chunk=fat_batch,
                        lowering_cache=pipeline.cache,
                        backend=backend,
                        prefetch=pipeline.prefetch,
                    )
                    for position, index in enumerate(missing):
                        before[index] = evaluated[position]
                for position, index in enumerate(indices):
                    results[index] = _build_chip_result(
                        chunk[position], mask_sets[position], 0.0, 0.0,
                        before[position], before[position], target,
                        strategy=strategy.name,
                    )
                continue
            trainer = BatchedFaultTrainer(
                self.model,
                mask_sets,
                self.bundle.train,
                self.bundle.test,
                config=self._fat_training_config(),
                backend=backend,
                lowering_cache=pipeline.cache,
                prefetch=pipeline.prefetch,
                widened_eval=pipeline.widened_eval,
            )
            before = [before_map.get(chip.chip_id) for chip in chunk]
            if any(value is None for value in before):
                evaluated = trainer.evaluate()
                before = [
                    value if value is not None else evaluated[index]
                    for index, value in enumerate(before)
                ]
            histories = trainer.train(epochs, include_initial=False)
            for position, index in enumerate(indices):
                results[index] = _build_chip_result(
                    chunk[position], mask_sets[position], epochs,
                    histories[position].total_epochs, before[position],
                    histories[position].final_accuracy, target,
                    strategy=strategy.name,
                )
        return list(results)

    def retrain_population(
        self,
        population: ChipPopulation,
        policy: RetrainingPolicy,
        progress: bool = False,
        batched: bool = True,
        fat_batch: int = DEFAULT_FAT_BATCH,
        strategy: StrategyLike = None,
        backend: Optional[str] = None,
    ) -> CampaignResult:
        """Run Step 3 for every chip under an arbitrary retraining policy.

        The initial accuracy checkpoints of all chips are evaluated first in
        batched multi-chip passes (:meth:`triage_population`); with
        ``batched=True`` (the default) chips whose Step-2 budgets agree are
        then retrained together through the stacked batched-FAT path, which
        is bit-identical to the serial per-chip loop on this BLAS build.
        ``strategy`` selects the mitigation recipe applied before/instead of
        retraining (default: classic FAT); ``backend`` selects the compute
        backend the batched substrate replays its captured graphs through.
        """
        strategy = resolve_strategy(strategy)
        amounts = policy.epochs_for_population(population)
        effective = {
            chip.chip_id: strategy.effective_epochs(
                float(amounts[chip.chip_id]), chip.fault_map
            )
            for chip in population
        }
        triage = self.triage_population(population, strategy=strategy, backend=backend)
        by_id: Dict[str, ChipRetrainingResult] = {}
        if batched:
            groups: Dict[float, List[Chip]] = {}
            for chip in population:
                groups.setdefault(effective[chip.chip_id], []).append(chip)
            for epochs, chips in groups.items():
                if epochs > 0 and len(chips) > 1:
                    for result in self.retrain_chips_batched(
                        chips,
                        epochs,
                        accuracies_before=triage,
                        fat_batch=fat_batch,
                        strategy=strategy,
                        backend=backend,
                    ):
                        by_id[result.chip_id] = result
        results: List[ChipRetrainingResult] = []
        for chip in population:
            result = by_id.get(chip.chip_id)
            if result is None:
                result = self.retrain_chip(
                    chip,
                    effective[chip.chip_id],
                    accuracy_before=triage.get(chip.chip_id),
                    strategy=strategy,
                    backend=backend,
                )
            results.append(result)
            if progress:
                logger.info(
                    "chip %s: rate=%.3f epochs=%.3f acc=%.3f meets=%s",
                    chip.chip_id,
                    result.fault_rate,
                    result.epochs_trained,
                    result.accuracy_after,
                    result.meets_constraint,
                )
        return CampaignResult(
            policy_name=policy.name,
            target_accuracy=self.target_accuracy,
            clean_accuracy=self.clean_accuracy,
            results=results,
        )

    # -- end-to-end -----------------------------------------------------------------

    def run(
        self,
        population: ChipPopulation,
        statistic: Optional[str] = None,
        progress: bool = False,
    ) -> CampaignResult:
        """Steps 1 + 2 + 3 for a chip population with the Reduce policy."""
        policy = self.build_policy(statistic)
        return self.retrain_population(population, policy, progress=progress)

    def run_fixed_policy(
        self,
        population: ChipPopulation,
        epochs: float,
        progress: bool = False,
    ) -> CampaignResult:
        """The state-of-the-art baseline: fixed retraining amount per chip."""
        return self.retrain_population(population, FixedEpochPolicy(epochs), progress=progress)
