"""Reporting helpers for retraining campaigns.

These render the comparison of Fig. 3 as plain-text tables and CSV rows so
that experiment scripts and benchmarks can print the same information the
paper plots.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.reduce import CampaignResult


def campaign_summary_table(campaigns: Sequence[CampaignResult]) -> str:
    """Fig. 3f as a text table: one row per policy."""
    if not campaigns:
        raise ValueError("no campaigns to summarise")
    headers = [
        "policy",
        "avg epochs/chip",
        "total epochs",
        "% chips meeting constraint",
        "mean accuracy",
        "worst accuracy",
    ]
    rows = []
    for campaign in campaigns:
        summary = campaign.summary()
        rows.append(
            [
                str(summary["policy"]),
                f"{summary['average_epochs']:.4f}",
                f"{summary['total_epochs']:.2f}",
                f"{summary['percent_meeting_constraint']:.1f}",
                f"{summary['mean_accuracy']:.4f}",
                f"{summary['worst_accuracy']:.4f}",
            ]
        )
    return format_table(headers, rows)


def campaign_scatter_csv(campaign: CampaignResult) -> str:
    """Per-chip (accuracy, epochs) points of one campaign as CSV text."""
    buffer = io.StringIO()
    buffer.write("chip_id,fault_rate,accuracy,epochs,meets_constraint\n")
    for point in campaign.scatter_points():
        buffer.write(
            f"{point['chip_id']},{point['fault_rate']:.6f},{point['accuracy']:.6f},"
            f"{point['epochs']:.6f},{int(point['meets_constraint'])}\n"
        )
    return buffer.getvalue()


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def constraint_satisfaction_report(campaign: CampaignResult) -> Dict[str, float]:
    """Compact dictionary summarising one campaign (used in EXPERIMENTS.md)."""
    return {
        "policy": campaign.policy_name,
        "chips": campaign.num_chips,
        "avg_epochs": round(campaign.average_epochs, 4),
        "pct_meeting": round(campaign.percent_meeting_constraint, 2),
        "mean_acc": round(campaign.mean_accuracy, 4),
        "target_acc": round(campaign.target_accuracy, 4),
    }
