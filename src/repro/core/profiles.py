"""Resilience profiles (the output of Step 1 of the Reduce framework).

A :class:`ResilienceProfile` stores, for a grid of fault rates and retraining
amounts (epoch checkpoints) and a number of random fault-map trials per rate,
the accuracy the model reached.  From it one can read

* the accuracy-vs-fault-rate curves at fixed retraining amounts (Fig. 2a),
* the epochs-needed-vs-fault-rate curves for a target accuracy, with
  min/mean/max statistics over trials (Fig. 2b), and
* — through :mod:`repro.core.selection` — the retraining amount to use for a
  chip with a given fault rate (Step 2).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

STATISTICS = ("min", "mean", "max", "median")


def _require_statistic(statistic: str) -> str:
    if statistic not in STATISTICS:
        raise ValueError(f"unknown statistic {statistic!r}; expected one of {STATISTICS}")
    return statistic


@dataclasses.dataclass
class ResilienceProfile:
    """Accuracy grid over (fault rate, trial, retraining amount).

    ``accuracies[i, t, j]`` is the accuracy at fault rate ``fault_rates[i]``,
    fault-map trial ``t`` and retraining amount ``epoch_checkpoints[j]``.
    ``epoch_checkpoints`` always starts at 0.0 (no retraining).
    """

    fault_rates: np.ndarray
    epoch_checkpoints: np.ndarray
    accuracies: np.ndarray
    clean_accuracy: float
    metadata: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.fault_rates = np.asarray(self.fault_rates, dtype=float)
        self.epoch_checkpoints = np.asarray(self.epoch_checkpoints, dtype=float)
        self.accuracies = np.asarray(self.accuracies, dtype=float)
        if self.fault_rates.ndim != 1 or self.epoch_checkpoints.ndim != 1:
            raise ValueError("fault_rates and epoch_checkpoints must be 1-D")
        if np.any(np.diff(self.fault_rates) < 0) or np.any(np.diff(self.epoch_checkpoints) < 0):
            raise ValueError("fault_rates and epoch_checkpoints must be sorted ascending")
        expected = (len(self.fault_rates), self.accuracies.shape[1] if self.accuracies.ndim == 3 else 0, len(self.epoch_checkpoints))
        if self.accuracies.ndim != 3 or self.accuracies.shape[0] != expected[0] or self.accuracies.shape[2] != expected[2]:
            raise ValueError(
                f"accuracies must have shape (rates, trials, checkpoints); got {self.accuracies.shape}"
            )
        if not 0.0 <= self.clean_accuracy <= 1.0:
            raise ValueError("clean_accuracy must be in [0, 1]")

    # -- basic views -----------------------------------------------------------

    @property
    def num_trials(self) -> int:
        return self.accuracies.shape[1]

    @property
    def max_epochs(self) -> float:
        return float(self.epoch_checkpoints[-1])

    def accuracy_vs_fault_rate(self, epochs: float, statistic: str = "mean") -> np.ndarray:
        """Accuracy at each fault rate for a given retraining amount (Fig. 2a)."""
        _require_statistic(statistic)
        column = int(np.argmin(np.abs(self.epoch_checkpoints - epochs)))
        values = self.accuracies[:, :, column]
        return getattr(np, statistic)(values, axis=1)

    def accuracy_surface(self, statistic: str = "mean") -> np.ndarray:
        """``(rates, checkpoints)`` accuracy grid aggregated over trials."""
        _require_statistic(statistic)
        return getattr(np, statistic)(self.accuracies, axis=1)

    # -- epochs required -----------------------------------------------------------

    def _trial_epochs_required(self, rate_index: int, trial_index: int, target: float) -> Optional[float]:
        accuracy_curve = self.accuracies[rate_index, trial_index]
        meets = np.flatnonzero(accuracy_curve >= target - 1e-12)
        if meets.size == 0:
            return None
        return float(self.epoch_checkpoints[meets[0]])

    def epochs_required_trials(self, rate_index: int, target_accuracy: float) -> List[Optional[float]]:
        """Per-trial retraining amounts needed at one grid fault rate."""
        if not 0 <= rate_index < len(self.fault_rates):
            raise IndexError(f"rate_index {rate_index} out of range")
        return [
            self._trial_epochs_required(rate_index, trial, target_accuracy)
            for trial in range(self.num_trials)
        ]

    def epochs_required_at_grid_rate(
        self,
        rate_index: int,
        target_accuracy: float,
        statistic: str = "max",
        unreachable: str = "max_epochs",
    ) -> Optional[float]:
        """Aggregate retraining amount needed at one grid fault rate.

        ``statistic`` follows the paper: ``"max"`` over trials gives high
        confidence of meeting the constraint (the proposed policy), ``"mean"``
        risks under-training (Fig. 3b), ``"min"`` is optimistic.

        ``unreachable`` controls what happens when a trial never reached the
        target within the analysed epoch budget: ``"max_epochs"`` substitutes
        the largest analysed amount (conservative but finite), ``"none"``
        propagates ``None``.
        """
        _require_statistic(statistic)
        if unreachable not in ("max_epochs", "none"):
            raise ValueError(f"unknown unreachable policy {unreachable!r}")
        trials = self.epochs_required_trials(rate_index, target_accuracy)
        if any(value is None for value in trials):
            if unreachable == "none":
                return None
            trials = [self.max_epochs if value is None else value for value in trials]
        values = np.asarray(trials, dtype=float)
        return float(getattr(np, statistic)(values))

    def epochs_required_curve(
        self,
        target_accuracy: float,
        statistic: str = "max",
        unreachable: str = "max_epochs",
    ) -> List[Optional[float]]:
        """Epochs needed at every grid fault rate (one line of Fig. 2b)."""
        return [
            self.epochs_required_at_grid_rate(index, target_accuracy, statistic, unreachable)
            for index in range(len(self.fault_rates))
        ]

    def epochs_required(
        self,
        fault_rate: float,
        target_accuracy: float,
        statistic: str = "max",
        interpolation: str = "ceil",
        unreachable: str = "max_epochs",
    ) -> float:
        """Retraining amount for an arbitrary (off-grid) fault rate.

        ``interpolation`` controls how the two neighbouring grid rates are
        combined: ``"ceil"`` (default) takes the larger requirement
        (conservative), ``"linear"`` interpolates linearly, ``"floor"`` takes
        the smaller requirement.
        """
        if fault_rate < 0 or fault_rate > 1:
            raise ValueError("fault_rate must be in [0, 1]")
        if interpolation not in ("ceil", "linear", "floor"):
            raise ValueError(f"unknown interpolation {interpolation!r}")
        rates = self.fault_rates
        if fault_rate <= rates[0]:
            low = high = 0
            weight = 0.0
        elif fault_rate >= rates[-1]:
            low = high = len(rates) - 1
            weight = 0.0
        else:
            high = int(np.searchsorted(rates, fault_rate, side="left"))
            low = high - 1
            span = rates[high] - rates[low]
            weight = 0.0 if span == 0 else (fault_rate - rates[low]) / span

        low_req = self.epochs_required_at_grid_rate(low, target_accuracy, statistic, unreachable)
        high_req = self.epochs_required_at_grid_rate(high, target_accuracy, statistic, unreachable)
        if low_req is None or high_req is None:
            candidates = [value for value in (low_req, high_req) if value is not None]
            return float(candidates[0]) if len(candidates) == 1 else float(self.max_epochs)
        if interpolation == "ceil":
            return float(max(low_req, high_req))
        if interpolation == "floor":
            return float(min(low_req, high_req))
        return float((1.0 - weight) * low_req + weight * high_req)

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault_rates": self.fault_rates.tolist(),
            "epoch_checkpoints": self.epoch_checkpoints.tolist(),
            "accuracies": self.accuracies.tolist(),
            "clean_accuracy": self.clean_accuracy,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceProfile":
        return cls(
            fault_rates=np.asarray(data["fault_rates"], dtype=float),
            epoch_checkpoints=np.asarray(data["epoch_checkpoints"], dtype=float),
            accuracies=np.asarray(data["accuracies"], dtype=float),
            clean_accuracy=float(data["clean_accuracy"]),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return (
            f"ResilienceProfile(rates={len(self.fault_rates)}, trials={self.num_trials}, "
            f"checkpoints={len(self.epoch_checkpoints)}, clean={self.clean_accuracy:.3f})"
        )


def save_profile(profile: ResilienceProfile, path) -> None:
    """Persist a resilience profile as JSON (Step 1 is the expensive step —
    saving it lets Step 2/3 be re-run for new chip batches without repeating it)."""
    from repro.utils.config import save_json

    save_json(profile.to_dict(), path)


def load_profile(path) -> ResilienceProfile:
    """Load a resilience profile previously written by :func:`save_profile`."""
    from repro.utils.config import load_json

    return ResilienceProfile.from_dict(load_json(path))
