"""The Reduce framework (the paper's primary contribution).

Step 1 — :mod:`repro.core.resilience` (fault-injection resilience analysis),
Step 2 — :mod:`repro.core.selection` (resilience-driven retraining-amount selection),
Step 3 — :mod:`repro.core.reduce` (per-chip fault-aware retraining orchestration).
"""

from repro.core.chips import Chip, ChipPopulation
from repro.core.constraints import AccuracyConstraint
from repro.core.profiles import ResilienceProfile, load_profile, save_profile
from repro.core.resilience import ResilienceAnalyzer, ResilienceConfig, analyze_resilience
from repro.core.adaptive import (
    AdaptiveCampaignResult,
    adaptive_retrain_chip,
    run_adaptive_campaign,
)
from repro.core.overhead import (
    CampaignOverhead,
    RetrainingCostModel,
    campaign_overhead,
    overhead_saving,
)
from repro.core.selection import (
    RetrainingPolicy,
    FixedEpochPolicy,
    ResilienceDrivenPolicy,
    make_policy,
)
from repro.core.reduce import (
    ChipRetrainingResult,
    CampaignResult,
    ReduceConfig,
    ReduceFramework,
)
from repro.core.reporting import (
    campaign_summary_table,
    campaign_scatter_csv,
    format_table,
    constraint_satisfaction_report,
)

__all__ = [
    "Chip",
    "ChipPopulation",
    "AccuracyConstraint",
    "ResilienceProfile",
    "save_profile",
    "load_profile",
    "ResilienceAnalyzer",
    "ResilienceConfig",
    "analyze_resilience",
    "AdaptiveCampaignResult",
    "adaptive_retrain_chip",
    "run_adaptive_campaign",
    "CampaignOverhead",
    "RetrainingCostModel",
    "campaign_overhead",
    "overhead_saving",
    "RetrainingPolicy",
    "FixedEpochPolicy",
    "ResilienceDrivenPolicy",
    "make_policy",
    "ChipRetrainingResult",
    "CampaignResult",
    "ReduceConfig",
    "ReduceFramework",
    "campaign_summary_table",
    "campaign_scatter_csv",
    "format_table",
    "constraint_satisfaction_report",
]
