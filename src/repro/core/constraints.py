"""User-defined accuracy constraints.

The Reduce framework takes an accuracy constraint as input (91 % in the
paper's evaluation) and selects, per chip, the smallest retraining amount
expected to satisfy it.  Because this reproduction runs on a synthetic
dataset (DESIGN.md §2), constraints can also be expressed *relative to the
clean accuracy* of the pre-trained model, which keeps the experiment
meaningful regardless of the absolute accuracy the substitute dataset allows.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass(frozen=True)
class AccuracyConstraint:
    """An accuracy target, either absolute or relative to the clean accuracy."""

    absolute: Optional[float] = None
    relative_drop: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.absolute is None) == (self.relative_drop is None):
            raise ValueError("specify exactly one of 'absolute' or 'relative_drop'")
        if self.absolute is not None and not 0.0 < self.absolute <= 1.0:
            raise ValueError(f"absolute accuracy constraint must be in (0, 1], got {self.absolute}")
        if self.relative_drop is not None and not 0.0 <= self.relative_drop < 1.0:
            raise ValueError(
                f"relative accuracy drop must be in [0, 1), got {self.relative_drop}"
            )

    @classmethod
    def at_least(cls, accuracy: float) -> "AccuracyConstraint":
        """Absolute constraint, e.g. ``AccuracyConstraint.at_least(0.91)``."""
        return cls(absolute=accuracy)

    @classmethod
    def within_drop_of_clean(cls, drop: float) -> "AccuracyConstraint":
        """Relative constraint: accuracy >= clean_accuracy - ``drop``."""
        return cls(relative_drop=drop)

    def resolve(self, clean_accuracy: Optional[float] = None) -> float:
        """Concrete accuracy threshold given the clean accuracy (if relative)."""
        if self.absolute is not None:
            return self.absolute
        if clean_accuracy is None:
            raise ValueError("a relative constraint requires the clean accuracy to resolve")
        return max(0.0, clean_accuracy - float(self.relative_drop))

    def is_met(self, accuracy: float, clean_accuracy: Optional[float] = None) -> bool:
        return accuracy >= self.resolve(clean_accuracy) - 1e-12

    def describe(self, clean_accuracy: Optional[float] = None) -> str:
        if self.absolute is not None:
            return f"accuracy >= {self.absolute:.2%}"
        if clean_accuracy is None:
            return f"accuracy >= clean - {self.relative_drop:.2%}"
        return f"accuracy >= {self.resolve(clean_accuracy):.2%} (clean - {self.relative_drop:.2%})"

    def to_dict(self) -> Dict[str, Any]:
        return {"absolute": self.absolute, "relative_drop": self.relative_drop}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AccuracyConstraint":
        return cls(absolute=data.get("absolute"), relative_drop=data.get("relative_drop"))
