"""Step 2 of the Reduce framework: resilience-driven retraining-amount selection.

A retraining policy maps a faulty chip (its fault map) to the number of
fault-aware retraining epochs to spend on it.  The paper compares:

* :class:`ResilienceDrivenPolicy` — the proposed policy: look up the chip's
  fault rate in the resilience profile and use the epochs required to meet
  the accuracy constraint, aggregated over trials with the *max* statistic
  (Fig. 3a) or the *mean* statistic (Fig. 3b);
* :class:`FixedEpochPolicy` — the state-of-the-art baseline: retrain every
  chip for the same pre-specified number of epochs (Fig. 3c–e).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

from repro.core.chips import Chip, ChipPopulation
from repro.core.constraints import AccuracyConstraint
from repro.core.profiles import ResilienceProfile


class RetrainingPolicy:
    """Base class: decide the retraining amount for each chip."""

    name: str = "policy"

    def epochs_for_chip(self, chip: Chip) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def epochs_for_population(self, population: ChipPopulation) -> Dict[str, float]:
        """Retraining amounts for every chip, keyed by chip id."""
        return {chip.chip_id: self.epochs_for_chip(chip) for chip in population}

    def describe(self) -> str:
        return self.name


@dataclasses.dataclass
class FixedEpochPolicy(RetrainingPolicy):
    """Retrain every chip for the same fixed number of epochs (baseline)."""

    epochs: float
    name: str = "fixed"

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        self.name = f"fixed-{self.epochs:g}ep"

    def epochs_for_chip(self, chip: Chip) -> float:
        return float(self.epochs)

    def describe(self) -> str:
        return f"fixed policy: {self.epochs:g} epochs per chip"


@dataclasses.dataclass
class ResilienceDrivenPolicy(RetrainingPolicy):
    """The Reduce policy: per-chip retraining amount from the resilience profile.

    Parameters
    ----------
    profile:
        Resilience profile produced by Step 1.
    constraint:
        User-defined accuracy constraint (absolute or relative to clean).
    statistic:
        Aggregation over the profile's fault-map trials.  The paper proposes
        ``"max"`` (high confidence of meeting the constraint) and shows that
        ``"mean"`` leads to under-training.
    interpolation:
        How requirements at neighbouring grid fault rates are combined for a
        chip whose fault rate falls between grid points (default: take the
        larger requirement).
    margin_epochs:
        Optional safety margin added to every selected amount.
    """

    profile: ResilienceProfile
    constraint: AccuracyConstraint
    statistic: str = "max"
    interpolation: str = "ceil"
    margin_epochs: float = 0.0
    name: str = "reduce"

    def __post_init__(self) -> None:
        if self.margin_epochs < 0:
            raise ValueError("margin_epochs must be non-negative")
        self.name = f"reduce-{self.statistic}"
        # Resolve the constraint once against the profile's clean accuracy.
        self._target_accuracy = self.constraint.resolve(self.profile.clean_accuracy)

    @property
    def target_accuracy(self) -> float:
        """The resolved (absolute) accuracy threshold used for selection."""
        return self._target_accuracy

    def epochs_for_chip(self, chip: Chip) -> float:
        required = self.profile.epochs_required(
            fault_rate=chip.fault_rate,
            target_accuracy=self._target_accuracy,
            statistic=self.statistic,
            interpolation=self.interpolation,
        )
        return float(required) + self.margin_epochs

    def describe(self) -> str:
        return (
            f"resilience-driven policy (statistic={self.statistic}, "
            f"target={self._target_accuracy:.2%}, margin={self.margin_epochs:g})"
        )


def make_policy(
    kind: str,
    profile: Optional[ResilienceProfile] = None,
    constraint: Optional[AccuracyConstraint] = None,
    epochs: Optional[float] = None,
    **kwargs,
) -> RetrainingPolicy:
    """Factory used by experiment configs (``"reduce-max"``, ``"reduce-mean"``,
    ``"fixed"``)."""
    key = kind.lower()
    if key in ("fixed", "fixed-epochs"):
        if epochs is None:
            raise ValueError("fixed policy requires 'epochs'")
        return FixedEpochPolicy(epochs=epochs)
    if key.startswith("reduce"):
        if profile is None or constraint is None:
            raise ValueError("reduce policy requires 'profile' and 'constraint'")
        statistic = key.split("-", 1)[1] if "-" in key else kwargs.pop("statistic", "max")
        return ResilienceDrivenPolicy(
            profile=profile, constraint=constraint, statistic=statistic, **kwargs
        )
    raise ValueError(f"unknown policy kind {kind!r}")
