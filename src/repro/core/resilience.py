"""Step 1 of the Reduce framework: resilience analysis.

The analyzer measures how the accuracy of the given pre-trained DNN degrades
under permanent faults at different fault rates, and how quickly fault-aware
retraining recovers it.  For every fault rate in a grid it samples several
random fault maps (trials), applies fault-aware pruning, and retrains the
model *progressively*, recording accuracy at a set of epoch checkpoints
(including very small fractional amounts, e.g. 0.05 epochs as in Fig. 2a of
the paper).  The result is a :class:`~repro.core.profiles.ResilienceProfile`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.accelerator.batched import BatchedFaultEvaluator
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.fault_models import FaultModel, RandomFaultModel
from repro.accelerator.systolic_array import SystolicArray
from repro.core.profiles import ResilienceProfile
from repro.data.synthetic import DatasetBundle
from repro.mitigation.fap import build_fap_masks
from repro.nn.serialization import clone_state_dict
from repro.training import Trainer, TrainingConfig, evaluate_accuracy
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("core.resilience")


@dataclasses.dataclass
class ResilienceConfig:
    """Configuration of the resilience-analysis grid.

    Defaults mirror the paper's evaluation: fault rates from 0 to 0.5, five
    fault-map trials per rate, and retraining amounts spanning fractional to
    multiple epochs.
    """

    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)
    epoch_checkpoints: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0)
    trials_per_rate: int = 5
    fault_model: FaultModel = dataclasses.field(default_factory=RandomFaultModel)
    training: TrainingConfig = dataclasses.field(default_factory=TrainingConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        rates = list(self.fault_rates)
        if not rates:
            raise ValueError("fault_rates must be non-empty")
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sorted(rates) != rates:
            raise ValueError("fault_rates must be sorted ascending")
        checkpoints = list(self.epoch_checkpoints)
        if not checkpoints:
            raise ValueError("epoch_checkpoints must be non-empty")
        if any(c <= 0 for c in checkpoints):
            raise ValueError("epoch_checkpoints must be positive (0.0 is recorded automatically)")
        if sorted(checkpoints) != checkpoints:
            raise ValueError("epoch_checkpoints must be sorted ascending")
        if self.trials_per_rate <= 0:
            raise ValueError("trials_per_rate must be positive")

    @property
    def max_epochs(self) -> float:
        return float(list(self.epoch_checkpoints)[-1])


class ResilienceAnalyzer:
    """Runs the fault-injection + progressive-retraining grid of Step 1."""

    def __init__(
        self,
        model: nn.Module,
        pretrained_state: Dict[str, np.ndarray],
        bundle: DatasetBundle,
        array: SystolicArray,
        config: Optional[ResilienceConfig] = None,
    ) -> None:
        self.model = model
        self.pretrained_state = clone_state_dict(pretrained_state)
        self.bundle = bundle
        self.array = array
        self.config = config if config is not None else ResilienceConfig()

    def _restore_pretrained(self) -> None:
        self.model.load_state_dict(self.pretrained_state)

    def _trial_fault_map(self, fault_rate: float, trial_index: int) -> Tuple[int, FaultMap]:
        """The (seed, fault map) pair of one trial, derived deterministically."""
        config = self.config
        trial_seed = derive_seed(config.seed, "trial", f"{fault_rate:.6f}", trial_index)
        rng = np.random.default_rng(trial_seed)
        fault_map = config.fault_model.sample(self.array.rows, self.array.cols, fault_rate, rng)
        return trial_seed, fault_map

    def _initial_accuracies(self, fault_maps: Sequence[FaultMap], chip_chunk: int = 16) -> List[float]:
        """Zero-epoch accuracy of every trial's masked model, batched.

        All trials start from the same pre-trained weights and differ only in
        their fault masks, so their 0.0-epoch checkpoints are B masked
        variants of one evaluation — exactly the workload
        :class:`~repro.accelerator.batched.BatchedFaultEvaluator` batches.
        Masks are built (and released) chunk by chunk to bound peak memory.
        """
        accuracies: List[float] = []
        self._restore_pretrained()
        eval_batch = self.config.training.batch_size * 4
        for start in range(0, len(fault_maps), chip_chunk):
            mask_sets = [
                build_fap_masks(self.model, fault_map)
                for fault_map in fault_maps[start:start + chip_chunk]
            ]
            evaluator = BatchedFaultEvaluator(self.model, mask_sets)
            accuracies.extend(
                evaluator.evaluate_accuracy(self.bundle.test, batch_size=eval_batch)
            )
        return accuracies

    def _run_trial(
        self,
        fault_rate: float,
        trial_index: int,
        fault_map: Optional[FaultMap] = None,
        initial_accuracy: Optional[float] = None,
    ) -> List[float]:
        """Accuracies at [0.0] + epoch_checkpoints for one random fault map."""
        config = self.config
        trial_seed = derive_seed(config.seed, "trial", f"{fault_rate:.6f}", trial_index)
        if fault_map is None:
            _, fault_map = self._trial_fault_map(fault_rate, trial_index)

        self._restore_pretrained()
        masks = build_fap_masks(self.model, fault_map)
        training_config = dataclasses.replace(config.training, seed=trial_seed)
        trainer = Trainer(
            self.model,
            self.bundle.train,
            self.bundle.test,
            config=training_config,
            masks=masks,
        )
        if initial_accuracy is None:
            history = trainer.train(
                epochs=config.max_epochs,
                eval_checkpoints=list(config.epoch_checkpoints),
                include_initial=True,
            )
            return history.accuracies
        history = trainer.train(
            epochs=config.max_epochs,
            eval_checkpoints=list(config.epoch_checkpoints),
            include_initial=False,
        )
        return [initial_accuracy] + history.accuracies

    def run(self, progress: bool = False) -> ResilienceProfile:
        """Execute the full grid and return the resilience profile."""
        config = self.config
        self._restore_pretrained()
        clean_accuracy = evaluate_accuracy(self.model, self.bundle.test)

        checkpoints = [0.0] + [float(c) for c in config.epoch_checkpoints]
        accuracies = np.zeros(
            (len(config.fault_rates), config.trials_per_rate, len(checkpoints)), dtype=float
        )
        # Derive every trial's fault map up front, then evaluate all their
        # 0.0-epoch checkpoints in batched multi-chip sweeps; the progressive
        # retraining below skips its (serial) initial evaluation.
        trial_grid = [
            (rate_index, fault_rate, trial_index)
            for rate_index, fault_rate in enumerate(config.fault_rates)
            if fault_rate != 0.0
            for trial_index in range(config.trials_per_rate)
        ]
        trial_maps = [
            self._trial_fault_map(fault_rate, trial_index)[1]
            for _, fault_rate, trial_index in trial_grid
        ]
        initial = self._initial_accuracies(trial_maps)
        for rate_index, fault_rate in enumerate(config.fault_rates):
            # A fault rate of exactly zero is deterministic: no faults, no
            # retraining effect; trials would waste work, so evaluate once.
            if fault_rate == 0.0:
                accuracies[rate_index, :, :] = clean_accuracy
        for (rate_index, fault_rate, trial_index), fault_map, initial_accuracy in zip(
            trial_grid, trial_maps, initial
        ):
            trial_accuracies = self._run_trial(
                fault_rate, trial_index, fault_map=fault_map, initial_accuracy=initial_accuracy
            )
            if len(trial_accuracies) != len(checkpoints):
                raise RuntimeError(
                    "trial returned an unexpected number of checkpoints: "
                    f"{len(trial_accuracies)} vs {len(checkpoints)}"
                )
            accuracies[rate_index, trial_index, :] = trial_accuracies
            if progress:
                logger.info(
                    "resilience: rate=%.3f trial=%d final_acc=%.3f",
                    fault_rate,
                    trial_index,
                    trial_accuracies[-1],
                )
        # Leave the model in its pre-trained state for downstream users.
        self._restore_pretrained()
        return ResilienceProfile(
            fault_rates=np.asarray(config.fault_rates, dtype=float),
            epoch_checkpoints=np.asarray(checkpoints, dtype=float),
            accuracies=accuracies,
            clean_accuracy=clean_accuracy,
            metadata={
                "trials_per_rate": config.trials_per_rate,
                "fault_model": config.fault_model.name,
                "array_rows": self.array.rows,
                "array_cols": self.array.cols,
                "dataset": self.bundle.name,
                "seed": config.seed,
            },
        )


def analyze_resilience(
    model: nn.Module,
    pretrained_state: Dict[str, np.ndarray],
    bundle: DatasetBundle,
    array: SystolicArray,
    config: Optional[ResilienceConfig] = None,
) -> ResilienceProfile:
    """Convenience wrapper building a :class:`ResilienceAnalyzer` and running it."""
    return ResilienceAnalyzer(model, pretrained_state, bundle, array, config).run()
