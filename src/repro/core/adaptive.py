"""Adaptive incremental retraining (extension / comparison point).

An obvious alternative to Reduce's profile-driven selection is to retrain each
chip *incrementally*: train a little, evaluate on the test set, stop as soon
as the accuracy constraint is met.  This per-chip train-evaluate loop needs no
resilience analysis, but it pays for a full test-set evaluation after every
increment of every chip — overhead that Reduce's one-off resilience analysis
amortises across the whole chip population (and across future populations).

This module implements that adaptive baseline so the trade-off can be
quantified (ablation A4 in DESIGN.md): epochs spent, constraint satisfaction
and the number of per-chip evaluations each approach performs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.chips import Chip, ChipPopulation
from repro.core.reduce import CampaignResult, ChipRetrainingResult, ReduceFramework
from repro.mitigation.fap import build_fap_masks
from repro.training import Trainer
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("core.adaptive")


@dataclasses.dataclass
class AdaptiveCampaignResult:
    """A retraining campaign plus the evaluation overhead it incurred."""

    campaign: CampaignResult
    evaluations_per_chip: Dict[str, int]

    @property
    def total_evaluations(self) -> int:
        """Total number of test-set evaluations performed across all chips."""
        return sum(self.evaluations_per_chip.values())

    @property
    def average_evaluations(self) -> float:
        return self.total_evaluations / max(len(self.evaluations_per_chip), 1)


def adaptive_retrain_chip(
    framework: ReduceFramework,
    chip: Chip,
    increments: Sequence[float],
) -> tuple:
    """Incrementally retrain one chip until the constraint is met.

    ``increments`` is the cumulative schedule of epoch amounts at which the
    accuracy is checked (e.g. ``[0.05, 0.25, 1.0, 2.0]``).  Returns
    ``(ChipRetrainingResult, num_evaluations)``.
    """
    increments = sorted(float(value) for value in increments if value > 0)
    if not increments:
        raise ValueError("increments must contain at least one positive epoch amount")

    framework._restore_pretrained()
    masks = build_fap_masks(framework.model, chip.fault_map)
    training_config = dataclasses.replace(
        framework.config.effective_retraining_config(),
        seed=derive_seed(framework.config.resilience.seed, "adaptive", chip.chip_id),
    )
    trainer = Trainer(
        framework.model,
        framework.bundle.train,
        framework.bundle.test,
        config=training_config,
        masks=masks,
    )
    target = framework.target_accuracy

    accuracy = trainer.evaluate()
    accuracy_before = accuracy
    evaluations = 1
    previous = 0.0
    for checkpoint in increments:
        if accuracy >= target - 1e-12:
            break
        delta = checkpoint - previous
        if delta > 0:
            history = trainer.train(delta, include_initial=False)
            accuracy = history.final_accuracy
            evaluations += 1
        previous = checkpoint

    masked = sum(int(mask.sum()) for mask in masks.values())
    total = sum(mask.size for mask in masks.values())
    result = ChipRetrainingResult(
        chip_id=chip.chip_id,
        fault_rate=chip.fault_rate,
        epochs_allocated=float(increments[-1]),
        epochs_trained=float(trainer.epochs_taken),
        accuracy_before=accuracy_before,
        accuracy_after=accuracy,
        meets_constraint=accuracy >= target - 1e-12,
        masked_weight_fraction=masked / total if total else 0.0,
    )
    return result, evaluations


def run_adaptive_campaign(
    framework: ReduceFramework,
    population: ChipPopulation,
    increments: Optional[Sequence[float]] = None,
    progress: bool = False,
) -> AdaptiveCampaignResult:
    """Run the adaptive train-evaluate-stop baseline over a chip population.

    ``increments`` defaults to the resilience configuration's epoch
    checkpoints, i.e. the same granularity Reduce's profile uses.
    """
    if increments is None:
        increments = list(framework.config.resilience.epoch_checkpoints)
    results: List[ChipRetrainingResult] = []
    evaluations: Dict[str, int] = {}
    for chip in population:
        result, num_evaluations = adaptive_retrain_chip(framework, chip, increments)
        results.append(result)
        evaluations[chip.chip_id] = num_evaluations
        if progress:
            logger.info(
                "adaptive: chip %s rate=%.3f epochs=%.3f evals=%d meets=%s",
                chip.chip_id,
                result.fault_rate,
                result.epochs_trained,
                num_evaluations,
                result.meets_constraint,
            )
    campaign = CampaignResult(
        policy_name="adaptive-incremental",
        target_accuracy=framework.target_accuracy,
        clean_accuracy=framework.clean_accuracy,
        results=results,
    )
    return AdaptiveCampaignResult(campaign=campaign, evaluations_per_chip=evaluations)
