"""VGG models (the paper's evaluation network is VGG11 on CIFAR-10).

The layer plan follows the original VGG configurations (Simonyan & Zisserman,
2015) with the common CIFAR adaptation of a single-hidden-layer classifier.
A ``width_multiplier`` scales every channel count so the same architecture
can be exercised at laptop-scale cost (see DESIGN.md §2); at
``width_multiplier=1.0`` the convolutional plan matches standard VGG11/13/16.

Max-pool stages that would shrink the feature map below 1x1 for small inputs
are skipped automatically, which keeps the architecture valid for the
down-scaled synthetic images used in the fast experiment presets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

from repro import nn
from repro.utils.rng import SeedLike, derive_seed

# 'M' denotes a 2x2 max-pooling stage.
VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
}


def _scaled(channels: int, width_multiplier: float) -> int:
    return max(1, int(round(channels * width_multiplier)))


class VGG(nn.Module):
    """VGG backbone + classifier with configurable width and input size."""

    def __init__(
        self,
        config: Sequence[Union[int, str]],
        input_shape: Tuple[int, int, int] = (3, 32, 32),
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        batch_norm: bool = True,
        classifier_hidden: int = 512,
        dropout: float = 0.0,
        seed: SeedLike = 0,
        name: str = "vgg",
    ) -> None:
        super().__init__()
        if len(input_shape) != 3:
            raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        self.name = name
        self.config = list(config)
        self.input_shape = tuple(input_shape)
        self.num_classes = num_classes
        self.width_multiplier = width_multiplier
        self.batch_norm = batch_norm
        base_seed = seed if isinstance(seed, int) else 0

        channels, height, width = input_shape
        layers: List[nn.Module] = []
        spatial = min(height, width)
        in_channels = channels
        conv_index = 0
        self.skipped_pools = 0
        for item in self.config:
            if item == "M":
                if spatial // 2 < 1:
                    # Input too small for another pooling stage; skip it.
                    self.skipped_pools += 1
                    continue
                layers.append(nn.MaxPool2d(2))
                spatial //= 2
                continue
            out_channels = _scaled(int(item), width_multiplier)
            layers.append(
                nn.Conv2d(
                    in_channels,
                    out_channels,
                    kernel_size=3,
                    padding=1,
                    bias=not batch_norm,
                    rng=derive_seed(base_seed, "conv", conv_index),
                )
            )
            if batch_norm:
                layers.append(nn.BatchNorm2d(out_channels))
            layers.append(nn.ReLU())
            in_channels = out_channels
            conv_index += 1
        self.features = nn.Sequential(*layers)
        self.final_channels = in_channels
        self.final_spatial = spatial

        hidden = _scaled(classifier_hidden, width_multiplier)
        classifier_layers: List[nn.Module] = [nn.Flatten()]
        flat_features = in_channels * spatial * spatial
        classifier_layers.append(
            nn.Linear(flat_features, hidden, rng=derive_seed(base_seed, "fc1"))
        )
        classifier_layers.append(nn.ReLU())
        if dropout > 0:
            classifier_layers.append(nn.Dropout(dropout, rng=derive_seed(base_seed, "drop1")))
        classifier_layers.append(
            nn.Linear(hidden, num_classes, rng=derive_seed(base_seed, "fc2"))
        )
        self.classifier = nn.Sequential(*classifier_layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.classifier(self.features(x))

    def extra_repr(self) -> str:
        return (
            f"name={self.name}, input_shape={self.input_shape}, num_classes={self.num_classes}, "
            f"width_multiplier={self.width_multiplier}, batch_norm={self.batch_norm}"
        )


def _make_vgg(
    config_name: str,
    input_shape: Tuple[int, int, int],
    num_classes: int,
    width_multiplier: float,
    batch_norm: bool,
    dropout: float,
    seed: SeedLike,
) -> VGG:
    return VGG(
        VGG_CONFIGS[config_name],
        input_shape=input_shape,
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        batch_norm=batch_norm,
        dropout=dropout,
        seed=seed,
        name=config_name,
    )


def vgg11(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    batch_norm: bool = True,
    dropout: float = 0.0,
    seed: SeedLike = 0,
) -> VGG:
    """VGG11 — the network evaluated in the paper (Fig. 2 and Fig. 3)."""
    return _make_vgg("vgg11", input_shape, num_classes, width_multiplier, batch_norm, dropout, seed)


def vgg13(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    batch_norm: bool = True,
    dropout: float = 0.0,
    seed: SeedLike = 0,
) -> VGG:
    return _make_vgg("vgg13", input_shape, num_classes, width_multiplier, batch_norm, dropout, seed)


def vgg16(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    batch_norm: bool = True,
    dropout: float = 0.0,
    seed: SeedLike = 0,
) -> VGG:
    return _make_vgg("vgg16", input_shape, num_classes, width_multiplier, batch_norm, dropout, seed)


def vgg11_mini(
    input_shape: Tuple[int, int, int] = (3, 16, 16),
    num_classes: int = 10,
    width_multiplier: float = 0.125,
    seed: SeedLike = 0,
) -> VGG:
    """A width-scaled VGG11 used by the fast experiment presets.

    The layer plan (number of conv stages, pooling schedule, classifier depth)
    is identical to VGG11; only channel counts are scaled by
    ``width_multiplier`` so that resilience analysis over many fault maps runs
    in seconds on a CPU.
    """
    model = _make_vgg("vgg11", input_shape, num_classes, width_multiplier, True, 0.0, seed)
    model.name = "vgg11_mini"
    return model
