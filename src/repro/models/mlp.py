"""Multi-layer perceptron models (used for fast experiments and tests)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import nn
from repro.utils.rng import SeedLike, derive_seed


class MLP(nn.Module):
    """A configurable fully-connected classifier.

    The MLP is the fastest workload on which the full Reduce pipeline runs;
    its linear layers map directly onto the systolic array (one GEMM each),
    making it the default model for unit and integration tests.
    """

    def __init__(
        self,
        input_features: int,
        num_classes: int,
        hidden_sizes: Sequence[int] = (128, 64),
        dropout: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if input_features <= 0:
            raise ValueError("input_features must be positive")
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        self.input_features = input_features
        self.num_classes = num_classes
        self.hidden_sizes = tuple(hidden_sizes)

        base_seed = seed if isinstance(seed, int) else 0
        layers = []
        previous = input_features
        for index, hidden in enumerate(self.hidden_sizes):
            if hidden <= 0:
                raise ValueError("hidden sizes must be positive")
            layers.append(nn.Linear(previous, hidden, rng=derive_seed(base_seed, "linear", index)))
            layers.append(nn.ReLU())
            if dropout > 0:
                layers.append(nn.Dropout(dropout, rng=derive_seed(base_seed, "dropout", index)))
            previous = hidden
        layers.append(nn.Linear(previous, num_classes, rng=derive_seed(base_seed, "head")))
        self.body = nn.Sequential(*layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if x.ndim > 2:
            x = x.flatten(start_dim=1)
        return self.body(x)

    def extra_repr(self) -> str:
        return (
            f"input_features={self.input_features}, hidden_sizes={self.hidden_sizes}, "
            f"num_classes={self.num_classes}"
        )
