"""Model registry: build models by name with uniform arguments.

Experiment configs reference models by name (e.g. ``"vgg11_mini"``) so that
the same experiment runner works for every architecture in the zoo.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro import nn
from repro.models.lenet import LeNet5
from repro.models.mlp import MLP
from repro.models.vgg import vgg11, vgg11_mini, vgg13, vgg16
from repro.utils.rng import SeedLike

ModelBuilder = Callable[..., nn.Module]

_REGISTRY: Dict[str, ModelBuilder] = {}


def register_model(name: str, builder: Optional[ModelBuilder] = None):
    """Register a model builder under ``name`` (usable as a decorator)."""

    def _register(fn: ModelBuilder) -> ModelBuilder:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"model {name!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def available_models() -> Tuple[str, ...]:
    """Names of all registered models."""
    return tuple(sorted(_REGISTRY))


def build_model(
    name: str,
    input_shape: Sequence[int],
    num_classes: int,
    seed: SeedLike = 0,
    **kwargs,
) -> nn.Module:
    """Build a registered model.

    ``input_shape`` is ``(C, H, W)`` for convolutional models or ``(F,)`` for
    MLPs; extra keyword arguments are forwarded to the underlying builder.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {', '.join(available_models())}")
    return _REGISTRY[key](input_shape=tuple(input_shape), num_classes=num_classes, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


@register_model("mlp")
def _build_mlp(input_shape, num_classes, seed=0, hidden_sizes=(128, 64), dropout=0.0):
    features = 1
    for dim in input_shape:
        features *= int(dim)
    return MLP(features, num_classes, hidden_sizes=hidden_sizes, dropout=dropout, seed=seed)


@register_model("lenet5")
def _build_lenet(input_shape, num_classes, seed=0):
    return LeNet5(input_shape=tuple(input_shape), num_classes=num_classes, seed=seed)


@register_model("vgg11")
def _build_vgg11(input_shape, num_classes, seed=0, width_multiplier=1.0, batch_norm=True, dropout=0.0):
    return vgg11(
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        batch_norm=batch_norm,
        dropout=dropout,
        seed=seed,
    )


@register_model("vgg11_mini")
def _build_vgg11_mini(input_shape, num_classes, seed=0, width_multiplier=0.125):
    return vgg11_mini(
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        seed=seed,
    )


@register_model("vgg13")
def _build_vgg13(input_shape, num_classes, seed=0, width_multiplier=1.0, batch_norm=True, dropout=0.0):
    return vgg13(
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        batch_norm=batch_norm,
        dropout=dropout,
        seed=seed,
    )


@register_model("vgg16")
def _build_vgg16(input_shape, num_classes, seed=0, width_multiplier=1.0, batch_norm=True, dropout=0.0):
    return vgg16(
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        batch_norm=batch_norm,
        dropout=dropout,
        seed=seed,
    )
