"""Model zoo: MLP, LeNet-5 and the VGG family used in the paper."""

from repro.models.mlp import MLP
from repro.models.lenet import LeNet5
from repro.models.vgg import VGG, VGG_CONFIGS, vgg11, vgg11_mini, vgg13, vgg16
from repro.models.registry import available_models, build_model, register_model

__all__ = [
    "MLP",
    "LeNet5",
    "VGG",
    "VGG_CONFIGS",
    "vgg11",
    "vgg11_mini",
    "vgg13",
    "vgg16",
    "available_models",
    "build_model",
    "register_model",
]
