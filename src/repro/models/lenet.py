"""LeNet-5 style convolutional network (medium-cost workload)."""

from __future__ import annotations

from typing import Tuple

from repro import nn
from repro.utils.rng import SeedLike, derive_seed


class LeNet5(nn.Module):
    """A LeNet-5 variant adapted to arbitrary input sizes and channel counts.

    Compared with the classic LeNet-5 (designed for 32x32 grey-scale MNIST),
    the classifier input size is computed from the actual feature-map size so
    that the model works on the synthetic image datasets of any resolution.
    """

    def __init__(
        self,
        input_shape: Tuple[int, int, int] = (3, 32, 32),
        num_classes: int = 10,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if len(input_shape) != 3:
            raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
        channels, height, width = input_shape
        if height < 12 or width < 12:
            raise ValueError("LeNet5 requires inputs of at least 12x12 pixels")
        self.input_shape = tuple(input_shape)
        self.num_classes = num_classes
        base_seed = seed if isinstance(seed, int) else 0

        self.features = nn.Sequential(
            nn.Conv2d(channels, 6, kernel_size=5, padding=2, rng=derive_seed(base_seed, "conv1")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 16, kernel_size=5, rng=derive_seed(base_seed, "conv2")),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        feature_height = ((height // 2) - 4) // 2
        feature_width = ((width // 2) - 4) // 2
        flat_features = 16 * feature_height * feature_width
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(flat_features, 120, rng=derive_seed(base_seed, "fc1")),
            nn.ReLU(),
            nn.Linear(120, 84, rng=derive_seed(base_seed, "fc2")),
            nn.ReLU(),
            nn.Linear(84, num_classes, rng=derive_seed(base_seed, "fc3")),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.classifier(self.features(x))

    def extra_repr(self) -> str:
        return f"input_shape={self.input_shape}, num_classes={self.num_classes}"
