"""Pluggable compute backends behind the Function layer.

The substrate's hot chains (stacked/folded GEMM evaluation, the autograd
ops they compose with) can be captured into a small op-graph IR and
replayed through a selectable lowering:

* ``numpy`` — reference executor, replays the exact eager kernels,
  bit-identical to eager execution, always available;
* ``fused`` — merges im2col -> GEMM -> bias -> ReLU chains into single
  kernels (numba-JIT'd when available, interpreted otherwise).

See README "Compute backends" for the capture -> lower -> execute
architecture and how to add a backend.
"""

from repro.backends.capture import (
    ChainCache,
    GraphCapture,
    capture_graph,
    is_capturing,
    record_function,
    recorded,
)
from repro.backends.errors import BackendError, describe_operands
from repro.backends.graph import Graph, Node, count_consumers, signature_of
from repro.backends.registry import (
    BACKEND_ENV_VAR,
    Backend,
    available_backends,
    env_backend_name,
    get_backend,
    numba_available,
    register_backend,
    resolve_backend,
)

# Importing the executor modules registers the built-in backends.
from repro.backends import numpy_backend as _numpy_backend  # noqa: F401,E402
from repro.backends import fused as _fused  # noqa: F401,E402

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendError",
    "ChainCache",
    "Graph",
    "GraphCapture",
    "Node",
    "available_backends",
    "capture_graph",
    "count_consumers",
    "describe_operands",
    "env_backend_name",
    "get_backend",
    "is_capturing",
    "numba_available",
    "record_function",
    "recorded",
    "register_backend",
    "resolve_backend",
    "signature_of",
]
