"""The numpy reference backend: replay captured graphs node by node.

Each node's kernel *is* the eager implementation (a closure recorded at
capture time), so replaying the node list in order reproduces the eager
path bit for bit.  This backend is always available and serves as the
correctness oracle for every other lowering.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.backends.errors import BackendError
from repro.backends.graph import Graph, resolve, signature_of
from repro.backends.registry import Backend, register_backend


class CompiledGraph:
    """Execute a graph's nodes in recorded order."""

    def __init__(self, graph: Graph, backend_name: str = "numpy") -> None:
        self.graph = graph
        self.backend_name = backend_name

    def __call__(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        graph = self.graph
        if signature_of(inputs) != graph.signature:
            raise BackendError(
                f"{self.backend_name} backend executed with inputs "
                f"{signature_of(inputs)!r} but the graph was captured for "
                f"{graph.signature!r}"
            )
        values: Dict[int, np.ndarray] = {}
        for node in graph.nodes:
            args = [resolve(ref, inputs, values) for ref in node.inputs]
            kwargs = {key: resolve(ref, inputs, values) for key, ref in node.kwargs.items()}
            output = node.kernel(*args, **kwargs)
            if not isinstance(output, np.ndarray):
                raise BackendError(
                    f"kernel returned {type(output).__name__}, expected ndarray",
                    op=node.op,
                )
            if tuple(output.shape) != node.out_shape or output.dtype != node.out_dtype:
                raise BackendError(
                    f"kernel produced {tuple(output.shape)}/{output.dtype} but the "
                    f"graph recorded {node.out_shape}/{node.out_dtype}",
                    op=node.op,
                )
            values[node.id] = output
        return resolve(graph.output, inputs, values)


class NumpyBackend(Backend):
    """Reference executor — bit-identical to eager by construction."""

    name = "numpy"

    def compile(self, graph: Graph) -> CompiledGraph:
        return CompiledGraph(graph, backend_name=self.name)


register_backend("numpy", NumpyBackend)
