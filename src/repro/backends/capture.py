"""Graph capture: record eager op chains into the backend IR.

Capture is trace-based record-and-replay.  The first execution of a hot chain
for a given input signature runs **eagerly, unchanged** — every op executes
exactly as before — while a module-global capture session records each op as
a :class:`~repro.backends.graph.Node` whose kernel closes over the eager
implementation.  Subsequent executions with the same signature replay the
compiled graph through the selected backend instead of re-entering Python
dispatch per op.

Two capture entry points exist:

* :func:`recorded` — wraps a raw-numpy block (the batched evaluator's
  im2col/GEMM/bias/fold steps) as a single named node.
* :func:`record_function` — called from ``Function.apply`` in
  ``nn/tensor.py`` so every autograd op that executes while a capture is
  active is recorded automatically, without changing any call site.

Encoding rules (see :mod:`repro.backends.graph`) make replay safe across
batches and optimizer steps: fresh per-batch arrays become placeholders,
intermediate activations become node-output references, and model parameters
become *live* tensor references whose ``.data`` is read at execution time
(the optimizer and mask enforcement update those arrays in place).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.errors import BackendError, describe_operands
from repro.backends.graph import (
    ConstRef,
    Graph,
    Node,
    NodeOutput,
    Placeholder,
    TensorRef,
    TupleRef,
    signature_of,
)
from repro.observability import metrics

_ACTIVE: Optional["GraphCapture"] = None


def is_capturing() -> bool:
    """Whether a capture session is currently recording."""
    return _ACTIVE is not None


class GraphCapture:
    """One in-flight capture session over a fixed set of graph inputs."""

    def __init__(self, inputs: Sequence[np.ndarray]) -> None:
        self.signature = signature_of(inputs)
        self.nodes: list = []
        self._refs: Dict[int, Any] = {
            id(array): Placeholder(index) for index, array in enumerate(inputs)
        }
        # Keep every referenced array alive for the duration of the capture:
        # ``id()`` values are only unique among live objects, so letting an
        # intermediate be collected could alias a later array onto a stale ref.
        self._keepalive: list = list(inputs)

    def _encode(self, value: Any) -> Any:
        from repro.nn.tensor import Tensor  # deferred: nn imports this module

        if isinstance(value, Tensor):
            # An intermediate activation's backing array was registered when
            # its producing op was recorded — reuse that dynamic reference.
            # Unregistered tensors (parameters, buffers) become live refs.
            ref = self._refs.get(id(value.data))
            return ref if ref is not None else TensorRef(value)
        if isinstance(value, np.ndarray):
            ref = self._refs.get(id(value))
            if ref is not None:
                return ref
            self._keepalive.append(value)
            return ConstRef(value)
        if isinstance(value, tuple):
            return TupleRef(tuple(self._encode(element) for element in value))
        return value

    def record(
        self,
        op: str,
        args: Sequence[Any],
        kwargs: Dict[str, Any],
        output: np.ndarray,
        kernel: Callable[..., np.ndarray],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Node:
        node = Node(
            id=len(self.nodes),
            op=op,
            inputs=tuple(self._encode(arg) for arg in args),
            kwargs={key: self._encode(value) for key, value in kwargs.items()},
            kernel=kernel,
            out_shape=tuple(output.shape),
            out_dtype=output.dtype,
            attrs=dict(attrs or {}),
        )
        self.nodes.append(node)
        self._refs[id(output)] = NodeOutput(node.id)
        self._keepalive.append(output)
        return node

    def finish(self, output: Any) -> Optional[Graph]:
        """Close the session; ``None`` when the output was not captured."""
        if not isinstance(output, np.ndarray):
            return None
        ref = self._refs.get(id(output))
        if ref is None or not self.nodes:
            return None
        return Graph(signature=self.signature, nodes=self.nodes, output=ref)


@contextlib.contextmanager
def capture_graph(inputs: Sequence[np.ndarray]):
    """Record every op executed in the block into a fresh capture session."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise BackendError("nested graph capture is not supported")
    session = GraphCapture(inputs)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None


def recorded(
    op: str,
    inputs: Tuple[Any, ...],
    fn: Callable[..., np.ndarray],
    attrs: Optional[Dict[str, Any]] = None,
) -> np.ndarray:
    """Execute ``fn(*inputs)`` eagerly, recording it as one node if capturing.

    ``fn`` doubles as the node's replay kernel, so it must be a closure whose
    free variables are either immutable for a fixed input signature or
    intentionally live (e.g. reading ``self._batch_index`` to consult a
    lowering cache at replay time).
    """

    output = fn(*inputs)
    session = _ACTIVE
    if session is not None:
        if not isinstance(output, np.ndarray):
            raise BackendError(
                f"captured op returned {type(output).__name__}, expected ndarray",
                op=op,
            )
        session.record(op, inputs, {}, output, fn, attrs)
    return output


def _function_kernel(cls: type, tensor_positions: Tuple[int, ...]) -> Callable[..., np.ndarray]:
    """Replay kernel for an autograd ``Function``: forward + dtype demotion."""

    def kernel(*raw: Any, **kwargs: Any) -> np.ndarray:
        from repro.nn.tensor import Tensor  # deferred: nn imports this module

        ctx = cls()
        ctx.needs_input_grad = tuple(False for _ in tensor_positions)
        output = ctx.forward(*raw, **kwargs)
        if (
            getattr(output, "dtype", None) == np.float64
            and tensor_positions
            and all(raw[index].dtype != np.float64 for index in tensor_positions)
        ):
            output = output.astype(np.float32)
        # Mirror Tensor.__init__'s coercion (numpy scalars, integer dtypes)
        # so replay produces exactly the array the eager path handed on.
        return Tensor(output).data

    return kernel


def record_function(
    cls: type,
    args: Sequence[Any],
    kwargs: Dict[str, Any],
    output_data: np.ndarray,
) -> None:
    """Record one ``Function.apply`` execution into the active capture.

    Called from ``nn/tensor.py`` after the eager forward has produced
    ``output_data``; a no-op unless a capture session is active.
    """

    session = _ACTIVE
    if session is None:
        return
    from repro.nn.tensor import Tensor  # deferred: nn imports this module

    op = getattr(cls, "capture_name", cls.__name__.lower())
    tensor_positions = tuple(
        index for index, arg in enumerate(args) if isinstance(arg, Tensor)
    )
    session.record(
        op,
        args,
        kwargs,
        output_data,
        _function_kernel(cls, tensor_positions),
        attrs={"function": cls},
    )


_UNCACHABLE = object()


class ChainCache:
    """Signature-keyed cache of compiled graphs for one capture site.

    ``run`` executes the chain: on a signature miss it captures the eager
    execution and compiles the resulting graph with the backend; on a hit it
    replays the compiled graph.  Chains whose output cannot be traced back to
    recorded nodes are marked uncachable and permanently fall back to eager
    execution (counted as misses).
    """

    def __init__(self, backend: Any, name: str = "chain") -> None:
        self.backend = backend
        self.name = name
        self._compiled: Dict[Any, Any] = {}

    def run(self, inputs: Tuple[np.ndarray, ...], eager_fn: Callable[..., np.ndarray]) -> np.ndarray:
        backend_name = self.backend.name
        signature = signature_of(inputs)
        entry = self._compiled.get(signature)
        if entry is not None and entry is not _UNCACHABLE:
            metrics.counter("backend.graph_cache.hits", backend=backend_name).inc()
            with metrics.timer("backend.exec_seconds", backend=backend_name):
                return entry(inputs)
        metrics.counter("backend.graph_cache.misses", backend=backend_name).inc()
        if entry is _UNCACHABLE:
            return eager_fn(*inputs)
        with metrics.timer("backend.capture_seconds", backend=backend_name):
            with capture_graph(inputs) as session:
                result = eager_fn(*inputs)
            graph = session.finish(result)
            if graph is None:
                self._compiled[signature] = _UNCACHABLE
            else:
                self._compiled[signature] = self.backend.compile(graph)
        return result
