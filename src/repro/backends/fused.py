"""The fused backend: merge captured chains into single kernels.

Two lowering rules run over the captured graph before execution:

1. **Eval epilogue fusion** — the evaluator's ``eval.gemm -> eval.bias ->
   eval.fold_* (-> relu)`` chain collapses into one node whose kernel runs
   the GEMM and then applies bias, fold and activation in a single pass,
   eliding the intermediate materialisations the eager path performs.
2. **ReLU-into-producer** — a ``relu`` whose producer allocates a fresh
   output (stacked GEMMs, BatchNorm, ...) is applied in place on that
   output instead of allocating a new array.

When numba is importable the conv epilogue runs as a JIT-compiled loop
(bias + fold-to-NCHW + ReLU fused, one read and one write per element);
otherwise the same fusion executes as in-place vectorised numpy, so the
backend stays usable — and testable — without the optional dependency.
JIT compilation failures demote to the interpreted path with a warning
rather than failing the run.

Numerics: fused outputs are ``allclose`` to eager (the in-place ReLU uses
``np.maximum``, which differs from eager's ``a * (a > 0)`` only on signed
zeros) and deterministic across executions.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.backends.graph import Graph, Node, NodeOutput, TupleRef
from repro.backends.numpy_backend import CompiledGraph
from repro.backends.registry import Backend, numba_available, register_backend

logger = logging.getLogger("repro.backends")

FOLD_OPS = ("eval.fold_nchw", "eval.fold2d")

# Producers whose kernels allocate a fresh output array every call, making an
# in-place activation epilogue safe.  Ops that may return cached or shared
# arrays (eval.im2col, eval.lowering, broadcasts) must never appear here.
RELU_FUSABLE_PRODUCERS = frozenset(
    {
        "eval.gemm",
        "eval.bias",
        "eval.fold_nchw",
        "eval.fold2d",
        "stacked_linear",
        "stacked_conv2d",
        "stacked_batch_norm",
        "eval.stacked_bn",
        "linear",
        "matmul",
        "add",
        "conv2d",
        "batch_norm",
    }
)


class _JitConvEpilogue:
    """Lazily-compiled numba kernel for the conv epilogue; self-disabling."""

    def __init__(self) -> None:
        self._fn = None
        self._failed = False

    def __call__(
        self,
        src: np.ndarray,
        bias: np.ndarray,
        out_h: int,
        out_w: int,
        apply_relu: bool,
    ) -> Optional[np.ndarray]:
        if self._failed:
            return None
        try:
            if self._fn is None:
                from numba import njit

                @njit(cache=False)
                def epilogue(src, bias, dst, out_h, out_w, apply_relu):
                    chips, positions, channels = src.shape
                    images = positions // (out_h * out_w)
                    for chip in range(chips):
                        for channel in range(channels):
                            bias_value = bias[channel]
                            for image in range(images):
                                row = chip * images + image
                                for y in range(out_h):
                                    for x in range(out_w):
                                        value = src[chip, (image * out_h + y) * out_w + x, channel] + bias_value
                                        if apply_relu and value < 0.0:
                                            value = 0.0
                                        dst[row, channel, y, x] = value

                self._fn = epilogue
            chips, positions, channels = src.shape
            folded = chips * positions // (out_h * out_w)
            dst = np.empty((folded, channels, out_h, out_w), dtype=src.dtype)
            self._fn(src, bias, dst, out_h, out_w, apply_relu)
            return dst
        except Exception as exc:  # numba compile/runtime failure
            logger.warning(
                "fused backend: numba conv epilogue unavailable (%s); "
                "using the interpreted fusion path",
                exc,
            )
            self._failed = True
            return None


def _epilogue_kernel(
    gemm: Node,
    bias_node: Optional[Node],
    fold: Node,
    apply_relu: bool,
    jit: Optional[_JitConvEpilogue],
):
    """Compose gemm + bias + fold (+ relu) into one kernel."""

    fold_kind = fold.op
    out_h = fold.attrs.get("out_h")
    out_w = fold.attrs.get("out_w")
    module = bias_node.attrs.get("module") if bias_node is not None else None
    gemm_kernel = gemm.kernel

    def kernel(*args: Any, **kwargs: Any) -> np.ndarray:
        out = gemm_kernel(*args, **kwargs)
        bias = module.bias.data if module is not None and module.bias is not None else None
        if fold_kind == "eval.fold_nchw" and jit is not None:
            jit_bias = bias if bias is not None else np.zeros(out.shape[-1], dtype=out.dtype)
            result = jit(out, jit_bias, out_h, out_w, apply_relu)
            if result is not None:
                return result
        # Interpreted fusion: the GEMM output is graph-internal (its sole
        # consumer is this node), so bias and activation mutate it in place.
        if bias is not None:
            out += bias
        if fold_kind == "eval.fold_nchw":
            folded = out.shape[0] * out.shape[1] // (out_h * out_w)
            out = np.ascontiguousarray(
                out.reshape(folded, out_h, out_w, out.shape[-1]).transpose(0, 3, 1, 2)
            )
        else:
            out = out.reshape(out.shape[0] * out.shape[1], -1)
        if apply_relu:
            np.maximum(out, 0.0, out=out)
        return out

    return kernel


def _relu_into_producer_kernel(producer: Node):
    base = producer.kernel

    def kernel(*args: Any, **kwargs: Any) -> np.ndarray:
        out = base(*args, **kwargs)
        np.maximum(out, 0.0, out=out)
        return out

    return kernel


def _consumers(graph: Graph) -> Dict[int, List[int]]:
    consumers: Dict[int, List[int]] = {node.id: [] for node in graph.nodes}

    def visit(ref: Any, consumer_id: int) -> None:
        if isinstance(ref, NodeOutput):
            consumers[ref.node_id].append(consumer_id)
        elif isinstance(ref, TupleRef):
            for element in ref.elements:
                visit(element, consumer_id)

    for node in graph.nodes:
        for ref in node.inputs:
            visit(ref, node.id)
        for ref in node.kwargs.values():
            visit(ref, node.id)
    return consumers


def fuse_graph(graph: Graph, jit: Optional[_JitConvEpilogue]) -> Graph:
    """Apply the fusion rules, returning a rewritten graph.

    Fused nodes adopt the id of the *last* node in their chain so that every
    surviving reference (including the graph output) still resolves; the
    replaced intermediates are dropped from the node list.
    """

    by_id = {node.id: node for node in graph.nodes}
    consumers = _consumers(graph)

    def sole_consumer(node: Node) -> Optional[Node]:
        if graph.output == NodeOutput(node.id):
            return None
        refs = consumers[node.id]
        if len(refs) != 1:
            return None
        return by_id[refs[0]]

    removed: Set[int] = set()
    replaced: Dict[int, Node] = {}

    # Rule 1: eval epilogue chains.
    for node in graph.nodes:
        if node.op != "eval.gemm" or node.id in removed:
            continue
        chain = [node]
        cursor = sole_consumer(node)
        if cursor is not None and cursor.op == "eval.bias":
            chain.append(cursor)
            cursor = sole_consumer(cursor)
        if cursor is None or cursor.op not in FOLD_OPS:
            continue
        chain.append(cursor)
        relu = sole_consumer(cursor)
        if relu is not None and relu.op == "relu":
            chain.append(relu)
        gemm = chain[0]
        bias_node = chain[1] if chain[1].op == "eval.bias" else None
        fold = next(n for n in chain if n.op in FOLD_OPS)
        apply_relu = chain[-1].op == "relu"
        last = chain[-1]
        fused = Node(
            id=last.id,
            op="fused." + "+".join(n.op for n in chain),
            inputs=gemm.inputs,
            kwargs=gemm.kwargs,
            kernel=_epilogue_kernel(gemm, bias_node, fold, apply_relu, jit),
            out_shape=last.out_shape,
            out_dtype=last.out_dtype,
            attrs={"fused_from": tuple(n.op for n in chain)},
        )
        replaced[last.id] = fused
        removed.update(n.id for n in chain[:-1])

    # Rule 2: fold a lone relu into its (fresh-output) producer.
    for node in graph.nodes:
        if node.op != "relu" or node.id in removed or node.id in replaced:
            continue
        if len(node.inputs) != 1 or not isinstance(node.inputs[0], NodeOutput):
            continue
        producer = by_id[node.inputs[0].node_id]
        if producer.id in removed or producer.id in replaced:
            continue
        if producer.op not in RELU_FUSABLE_PRODUCERS:
            continue
        if sole_consumer(producer) is not node:
            continue
        fused = Node(
            id=node.id,
            op=f"fused.{producer.op}+relu",
            inputs=producer.inputs,
            kwargs=producer.kwargs,
            kernel=_relu_into_producer_kernel(producer),
            out_shape=node.out_shape,
            out_dtype=node.out_dtype,
            attrs={"fused_from": (producer.op, "relu")},
        )
        replaced[node.id] = fused
        removed.add(producer.id)

    if not replaced:
        return graph
    nodes: List[Node] = []
    for node in graph.nodes:
        if node.id in removed:
            continue
        nodes.append(replaced.get(node.id, node))
    return Graph(signature=graph.signature, nodes=nodes, output=graph.output)


class FusedBackend(Backend):
    """Fusion lowering; JIT-compiled when numba is present, else interpreted."""

    name = "fused"

    def __init__(self, use_jit: Optional[bool] = None) -> None:
        self.use_jit = numba_available() if use_jit is None else use_jit
        self._jit = _JitConvEpilogue() if self.use_jit else None

    def describe(self) -> str:
        mode = "numba-jit" if self.use_jit else "interpreted"
        return f"{self.name} ({mode})"

    def compile(self, graph: Graph) -> CompiledGraph:
        return CompiledGraph(fuse_graph(graph, self._jit), backend_name=self.name)


register_backend("fused", FusedBackend)
