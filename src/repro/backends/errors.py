"""Typed errors raised by the compute-backend layer.

The capture/lower/execute pipeline surfaces its invariant violations as
:class:`BackendError` so that a lowering bug fails with the op name and the
offending shapes/dtypes in the message instead of a bare ``AssertionError``
deep inside a kernel.  The module is import-free on purpose: it must be
importable from ``nn/tensor.py`` without creating a cycle.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


class BackendError(RuntimeError):
    """A backend or lowering invariant was violated.

    Attributes
    ----------
    op:
        Name of the op whose execution (or capture) broke the invariant,
        when known.
    """

    def __init__(self, message: str, op: Optional[str] = None) -> None:
        if op is not None:
            message = f"[op={op}] {message}"
        super().__init__(message)
        self.op = op


def describe_operands(values: Sequence[Any]) -> str:
    """Render operand shapes/dtypes for error messages.

    Arrays and tensors show as ``shape/dtype``; everything else shows as its
    ``repr`` truncated to keep messages one-line readable.
    """

    parts = []
    for value in values:
        # The value's own shape/dtype first: an ndarray's ``.data`` is a
        # memoryview (no dtype), so only tensor-like wrappers fall through
        # to their backing array.
        shape = getattr(value, "shape", None)
        dtype = getattr(value, "dtype", None)
        if shape is None or dtype is None:
            data = getattr(value, "data", None)
            shape = getattr(data, "shape", shape)
            dtype = getattr(data, "dtype", dtype)
        if shape is not None and dtype is not None:
            parts.append(f"{tuple(shape)}/{dtype}")
        else:
            text = repr(value)
            parts.append(text if len(text) <= 32 else text[:29] + "...")
    return "(" + ", ".join(parts) + ")"
