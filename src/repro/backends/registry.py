"""Backend registry: named lowerings for captured graphs.

A backend turns a captured :class:`~repro.backends.graph.Graph` into an
executable callable via ``compile``.  Backends register under a short name
(``numpy``, ``fused``) and are instantiated lazily, once per process.

Resolution semantics
--------------------
* ``get_backend(name)`` — strict registry lookup.  ``fused`` always
  constructs (it runs interpreted when numba is missing), which is what the
  per-op equivalence tests rely on.
* ``resolve_backend(name)`` — production resolution used by the trainer,
  evaluator, and campaign layers.  ``None`` means "eager" (no capture at
  all, the historical path); ``"fused"`` degrades gracefully to the
  ``numpy`` reference backend with a logged warning when numba is not
  importable.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backends.errors import BackendError

logger = logging.getLogger("repro.backends")

BACKEND_ENV_VAR = "REPRO_BACKEND"


class Backend:
    """Base class for graph lowerings."""

    name = "abstract"

    def compile(self, graph):  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}
_NUMBA_AVAILABLE: Optional[bool] = None
_FALLBACK_WARNED = False


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    _FACTORIES[name] = factory


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_FACTORIES))


def get_backend(name: Union[str, Backend]) -> Backend:
    """Strict lookup: raise :class:`BackendError` for unknown names."""
    if isinstance(name, Backend):
        return name
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown backend {name!r} (available: {', '.join(available_backends())})"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def numba_available() -> bool:
    """Whether the optional numba dependency is importable (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def env_backend_name() -> Optional[str]:
    """The backend selected via ``REPRO_BACKEND``, if any."""
    value = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return value or None


def resolve_backend(name: Optional[Union[str, Backend]]) -> Optional[Backend]:
    """Resolve a backend selection for production execution.

    ``None`` selects the historical eager path (returns ``None``); unknown
    names raise :class:`BackendError`; ``fused`` without numba falls back to
    the ``numpy`` reference backend with a one-time warning.
    """

    global _FALLBACK_WARNED
    if name is None:
        return None
    if isinstance(name, Backend):
        return name
    backend = get_backend(name)
    if name == "fused" and not numba_available():
        if not _FALLBACK_WARNED:
            logger.warning(
                "backend 'fused' requested but numba is not importable; "
                "falling back to the 'numpy' reference backend"
            )
            _FALLBACK_WARNED = True
        return get_backend("numpy")
    return backend
