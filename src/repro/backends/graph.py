"""A small op-graph IR for the substrate's hot chains.

The IR follows the deeplink-style capture-then-lower split: eager execution
records each op as a :class:`Node` whose *kernel* is a closure over the exact
numpy code the eager path ran, and whose inputs are encoded as value
references.  A finished :class:`Graph` can then be lowered by a backend
(reference replay, kernel fusion, ...) and re-executed for any batch with the
same input signature.

Value references
----------------
``Placeholder(i)``
    The ``i``-th graph input — a fresh array supplied at every execution.
``NodeOutput(node_id)``
    The output of an earlier node in the same graph.
``TensorRef(tensor)``
    A *live* read of ``tensor.data`` at execution time.  Used for model
    parameters and buffers: the optimizer and the mask-enforcement paths
    update those arrays in place between executions, so freezing them at
    capture time would replay stale weights.
``ConstRef(value)``
    An array captured by reference and assumed immutable between executions
    (e.g. keep-multiplier masks that are rebuilt — not mutated — on change
    would be unsafe; hence constants are only used for arrays the capture
    site does not track as live tensors).
``TupleRef(elements)``
    A tuple whose elements are themselves encoded references (used e.g. for
    the trainer's ``lowering=(cols, out_h, out_w)`` argument).

Anything else is stored verbatim as a literal.  Shape-derived scalars frozen
this way are safe because compiled graphs are cached per input *signature*
(shape + dtype of every placeholder): a different shape simply captures a
different graph.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.errors import BackendError


@dataclasses.dataclass(frozen=True)
class Placeholder:
    """Reference to the ``index``-th graph input."""

    index: int


@dataclasses.dataclass(frozen=True)
class NodeOutput:
    """Reference to the output of node ``node_id``."""

    node_id: int


class TensorRef:
    """Live reference to a Tensor's backing array (read at execution time)."""

    __slots__ = ("tensor",)

    def __init__(self, tensor: Any) -> None:
        self.tensor = tensor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        data = self.tensor.data
        return f"TensorRef(shape={tuple(data.shape)}, dtype={data.dtype})"


class ConstRef:
    """An ndarray captured by reference."""

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConstRef(shape={tuple(self.value.shape)}, dtype={self.value.dtype})"


class TupleRef:
    """A tuple whose elements are encoded references."""

    __slots__ = ("elements",)

    def __init__(self, elements: Tuple[Any, ...]) -> None:
        self.elements = elements

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TupleRef({self.elements!r})"


@dataclasses.dataclass
class Node:
    """One captured op.

    ``kernel`` is a callable closing over the eager implementation; calling
    it with the resolved inputs reproduces the eager op exactly (this is what
    makes the numpy backend a bit-exactness oracle by construction).
    ``attrs`` carries backend-facing metadata (layer/module handles, fold
    geometry) that fusion rules may consult without re-deriving it from the
    kernel closure.
    """

    id: int
    op: str
    inputs: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    kernel: Callable[..., np.ndarray]
    out_shape: Tuple[int, ...]
    out_dtype: np.dtype
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Graph:
    """A captured chain of nodes with a single output."""

    signature: Tuple[Tuple[Tuple[int, ...], str], ...]
    nodes: List[Node]
    output: Any

    def ops(self) -> Tuple[str, ...]:
        """The op vocabulary of this graph, in execution order."""
        return tuple(node.op for node in self.nodes)

    def describe(self) -> str:
        """One-line human-readable lowering summary (for logs/debugging)."""
        return " -> ".join(self.ops()) or "<empty>"


def signature_of(inputs: Sequence[np.ndarray]) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
    """The cache key for a set of graph inputs: shape + dtype of each."""
    return tuple((tuple(arr.shape), str(arr.dtype)) for arr in inputs)


def resolve(ref: Any, inputs: Sequence[np.ndarray], values: Dict[int, np.ndarray]) -> Any:
    """Materialise an encoded reference against live inputs/node values."""
    if isinstance(ref, Placeholder):
        return inputs[ref.index]
    if isinstance(ref, NodeOutput):
        value = values.get(ref.node_id)
        if value is None:
            raise BackendError(
                f"node {ref.node_id} consumed before it was executed"
            )
        return value
    if isinstance(ref, TensorRef):
        return ref.tensor.data
    if isinstance(ref, ConstRef):
        return ref.value
    if isinstance(ref, TupleRef):
        return tuple(resolve(element, inputs, values) for element in ref.elements)
    return ref


def count_consumers(graph: Graph) -> Dict[int, int]:
    """How many times each node's output is consumed (incl. as graph output).

    Fusion rules use this to decide whether an intermediate may be elided:
    a node whose output is consumed exactly once and is not the graph output
    can be folded into its consumer.
    """

    counts: Dict[int, int] = {node.id: 0 for node in graph.nodes}

    def visit(ref: Any) -> None:
        if isinstance(ref, NodeOutput):
            counts[ref.node_id] += 1
        elif isinstance(ref, TupleRef):
            for element in ref.elements:
                visit(element)

    for node in graph.nodes:
        for ref in node.inputs:
            visit(ref)
        for ref in node.kwargs.values():
            visit(ref)
    visit(graph.output)
    return counts
