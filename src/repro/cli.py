"""Command-line interface: ``repro-reduce``.

Runs the paper's experiments from the terminal and prints the tables/plots
the figures are built from, e.g.::

    repro-reduce fig2a --preset fast
    repro-reduce fig3  --preset fast --chips 24
    repro-reduce all   --preset smoke --output results.json

The CLI is a thin wrapper over :mod:`repro.experiments`; everything it does
can also be driven from Python (see ``examples/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.reporting import campaign_summary_table
from repro.experiments import (
    ExperimentContext,
    available_presets,
    get_preset,
    run_fig2a,
    run_fig2b,
    run_fig3,
)
from repro.utils.logging import set_verbosity


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-reduce",
        description="Reproduce the experiments of 'Reduce' (DATE 2023).",
    )
    parser.add_argument(
        "command",
        choices=["fig2a", "fig2b", "fig3", "all", "info"],
        help="which experiment to run ('info' prints the preset summary)",
    )
    parser.add_argument(
        "--preset",
        default="fast",
        choices=list(available_presets()),
        help="experiment scale (default: fast)",
    )
    parser.add_argument("--chips", type=int, default=None, help="override the number of chips (fig3)")
    parser.add_argument("--output", type=Path, default=None, help="write results as JSON to this path")
    parser.add_argument("-v", "--verbose", action="count", default=0, help="increase log verbosity")
    return parser


def _result_payload(command: str, result: Any) -> Dict[str, Any]:
    if command == "fig2a":
        return {"figure": "2a", "rows": result.rows(), "clean_accuracy": result.clean_accuracy}
    if command == "fig2b":
        return {"figure": "2b", "rows": result.rows(), "clean_accuracy": result.clean_accuracy}
    if command == "fig3":
        return {"figure": "3", **result.to_dict()}
    raise ValueError(f"unknown command {command!r}")


def _run_command(command: str, context: ExperimentContext, chips: Optional[int]) -> Any:
    if command == "fig2a":
        result = run_fig2a(context)
        print(result.render())
        return result
    if command == "fig2b":
        result = run_fig2b(context)
        print(result.render())
        return result
    if command == "fig3":
        result = run_fig3(context, num_chips=chips)
        print(result.summary_table())
        print()
        print(result.render_scatter())
        print()
        print("Pareto-optimal policies:", ", ".join(result.pareto_policies()))
        return result
    raise ValueError(f"unknown command {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    set_verbosity(args.verbose)

    preset = get_preset(args.preset)
    if args.command == "info":
        print(f"preset: {preset.name}")
        print(f"  model: {preset.model.name} {preset.model.kwargs}")
        print(f"  dataset: {preset.dataset}")
        print(f"  array: {preset.array_rows}x{preset.array_cols}")
        print(f"  resilience grid: rates={list(preset.fault_rates)} "
              f"checkpoints={list(preset.epoch_checkpoints)} trials={preset.trials_per_rate}")
        print(f"  chips: {preset.num_chips} fault rates in {preset.chip_fault_rate_range}")
        print(f"  constraint: clean accuracy - {preset.constraint_drop:.1%}")
        return 0

    print(f"[repro-reduce] building context for preset {preset.name!r} "
          f"(pre-training {preset.model.name}; this runs once per session)...")
    context = ExperimentContext.from_preset(preset)
    print(f"[repro-reduce] clean accuracy: {context.clean_accuracy:.3f}, "
          f"accuracy constraint: {context.target_accuracy():.3f}")

    commands = ["fig2a", "fig2b", "fig3"] if args.command == "all" else [args.command]
    payloads = []
    for command in commands:
        print(f"\n=== {command} ===")
        result = _run_command(command, context, args.chips)
        payloads.append(_result_payload(command, result))

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("w", encoding="utf-8") as handle:
            json.dump(payloads if len(payloads) > 1 else payloads[0], handle, indent=2)
        print(f"\n[repro-reduce] wrote results to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
