"""Command-line interface: ``repro-reduce``.

Runs the paper's experiments from the terminal and prints the tables/plots
the figures are built from, e.g.::

    repro-reduce fig2a    --preset fast
    repro-reduce fig3     --preset fast --chips 24 --jobs 4
    repro-reduce campaign --preset fast --chips 24 --jobs 4 --campaign-dir campaigns
    repro-reduce compare  --preset fast --strategies fat,fap,fam+fat,bypass --jobs 4
    repro-reduce campaign --preset fast --jobs 2 --fat-batch 4 --trace trace
    repro-reduce trace    trace
    repro-reduce all      --preset smoke --output results.json

The ``campaign`` command runs a single retraining campaign through the
parallel campaign engine: per-chip results are persisted to a resumable JSONL
store under ``--campaign-dir``, so re-running the same command skips every
chip that already completed.  ``fig3`` and ``all`` accept the same ``--jobs``
and ``--campaign-dir`` flags (defaulting to the serial, in-memory behaviour).

The ``compare`` command sweeps one chip population through several mitigation
strategies (``--strategies fat,fap,fap+fat,fam+fat,bypass,bypass+fat,none``)
and prints the per-strategy comparison table — accuracy recovered, epochs
spent, energy/timing overhead — plus the Pareto-optimal strategies.  Each
strategy's campaign is its own resumable store under ``--campaign-dir``.

Campaign execution is supervised (worker death/hang recovery, capped chunk
retries, poison-chunk quarantine): ``--max-chunk-retries`` and
``--chunk-timeout`` tune the fault-tolerance policy, ``--chaos SPEC`` (or the
``REPRO_CHAOS`` environment variable) enables the deterministic fault
injector, and ``repro-reduce verify-store [PATH]`` audits the integrity of
every campaign store under a directory (torn tails, checksum mismatches,
duplicate rows, corrupt manifests).

Campaigns also scale across hosts.  ``--listen [HOST:]PORT`` makes
``campaign``/``compare`` serve chunks to socket workers started elsewhere with
``repro-reduce worker --join HOST:PORT``; ``--workers HOST:PORT,...`` dials
the other way (workers started with ``worker --listen``).  ``--jobs N`` then
counts *local* socket workers forked next to the coordinator (``--jobs 0``
runs remote-only).  Distributed campaigns commit through the same
content-addressed store, so they resume and fingerprint exactly like local
ones, and remote workers ship their trace/metrics shards home so
``repro-reduce trace`` attributes time per ``host:pid``::

    repro-reduce worker   --join 192.0.2.10:7000 --cache-dir prestate  # on each host
    repro-reduce campaign --preset fast --listen 7000 --jobs 2 --chips 64

The CLI is a thin wrapper over :mod:`repro.experiments` and
:mod:`repro.campaign`; everything it does can also be driven from Python
(see ``examples/``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.backends import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    numba_available,
)
from repro.campaign import (
    CHAOS_ENV_VAR,
    CampaignEngine,
    ChaosSpec,
    TransportError,
    WorkerRejected,
    discover_stores,
    parse_address,
    run_worker,
)
from repro.core.reporting import campaign_summary_table
from repro.experiments import (
    ExperimentContext,
    available_presets,
    build_population,
    get_preset,
    run_compare,
    run_fig2a,
    run_fig2b,
    run_fig3,
)
from repro.mitigation.strategy import available_strategies, parse_strategy, parse_strategy_list
from repro.utils.logging import set_verbosity


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-reduce",
        description="Reproduce the experiments of 'Reduce' (DATE 2023).",
    )
    parser.add_argument(
        "command",
        choices=[
            "fig2a", "fig2b", "fig3", "campaign", "compare", "all", "info",
            "trace", "verify-store", "worker",
        ],
        help="which experiment to run ('info' prints the preset summary; "
        "'trace' summarizes a recorded campaign trace; 'verify-store' audits "
        "the integrity of campaign stores under a directory; 'worker' joins "
        "a distributed campaign as a socket worker)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        type=Path,
        default=None,
        help="trace directory, merged trace.json or shard to summarize "
        "(the 'trace' command; default: ./trace), or the store/base directory "
        "to audit (the 'verify-store' command; default: ./campaigns)",
    )
    parser.add_argument(
        "--preset",
        default="fast",
        choices=list(available_presets()),
        help="experiment scale (default: fast)",
    )
    parser.add_argument(
        "--chips", type=int, default=None, help="override the number of chips (fig3/campaign)"
    )
    parser.add_argument("--output", type=Path, default=None, help="write results as JSON to this path")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-chip retraining (default: 1 = serial). "
        "With --listen/--workers this counts *local* socket workers forked "
        "next to the coordinator; 0 runs the campaign on remote workers only",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="campaign/compare: serve chunks to socket workers that dial in "
        "with 'worker --join' (PORT 0 picks a free port, printed at startup); "
        "worker: wait for one coordinator started with --workers to dial in",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT,...",
        help="campaign/compare: dial out to socket workers already waiting "
        "with 'worker --listen' (comma-separated addresses)",
    )
    parser.add_argument(
        "--join",
        default=None,
        metavar="HOST:PORT",
        help="worker: dial the campaign coordinator at HOST:PORT (retries "
        "until --join-timeout, so workers may start before the campaign)",
    )
    parser.add_argument(
        "--join-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="worker: how long to keep retrying the initial connection "
        "(default: 120)",
    )
    parser.add_argument(
        "--expect-preset",
        default=None,
        metavar="NAME",
        help="worker: refuse campaigns built from any other preset (default: "
        "accept whatever preset the coordinator announces)",
    )
    parser.add_argument(
        "--campaign-dir",
        type=Path,
        default=None,
        help="persist per-chip results to resumable stores under this directory "
        "(default for 'campaign': ./campaigns; fig3/all: in-memory only)",
    )
    parser.add_argument(
        "--policy",
        default="reduce-max",
        choices=["reduce-max", "reduce-mean", "fixed"],
        help="retraining policy for the 'campaign'/'compare' commands (default: reduce-max)",
    )
    parser.add_argument(
        "--strategy",
        default="fat",
        help="mitigation strategy for the 'campaign' command: a '+'-separated "
        f"spec such as {', '.join(available_strategies())} (default: fat)",
    )
    parser.add_argument(
        "--strategies",
        default="fat,fap,fam+fat,bypass",
        help="comma-separated mitigation strategies for the 'compare' command "
        "(default: fat,fap,fam+fat,bypass)",
    )
    parser.add_argument(
        "--fixed-epochs",
        type=float,
        default=0.5,
        help="epoch budget when --policy fixed (default: 0.5)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore previously recorded chip results in the campaign store",
    )
    parser.add_argument(
        "--fat-batch",
        type=int,
        default=None,
        help="max same-budget chips retrained together in one stacked batched-FAT "
        "run; composes with --jobs N (each worker retrains a whole batch per "
        "dispatch). Default: 8; 1 disables coalescing; results are bit-identical "
        "either way",
    )
    parser.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable background prefetch of eval-batch lowerings "
        "(campaign/compare). Prefetch overlaps the next batch's im2col with "
        "the current batch's stacked GEMMs; results are bit-identical with "
        "or without it",
    )
    parser.add_argument(
        "--lowering-cache-mb",
        type=float,
        default=None,
        metavar="MB",
        help="byte cap (in MB) of the shared eval-lowering cache "
        "(campaign/compare; default: 128, sized to hold the fast preset's "
        "lowered test set). LRU batches are evicted past the cap; 0 disables "
        "caching. Pure throughput knob — results are bit-identical",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for the batched campaign substrate: 'numpy' "
        "(reference graph replay, bit-identical to eager execution; the "
        "default) or 'fused' (merged im2col/GEMM/bias/ReLU chains, numba-JIT "
        "compiled when numba is installed). Also honoured via the "
        f"{BACKEND_ENV_VAR} environment variable",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="record campaign spans to per-process shards under DIR and merge "
        "them into DIR/trace.json (Chrome trace-event format; see the "
        "'trace' command); also enables --metrics",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect hot-path metrics (GEMM/im2col timers, cache hit rates, "
        "fsync latency) and write a metrics.json snapshot next to the trace "
        "or campaign store",
    )
    parser.add_argument(
        "--max-chunk-retries",
        type=int,
        default=None,
        help="re-executions allowed per chunk after a worker death, hang or "
        "transient exception before the chunk is quarantined "
        "(campaign/compare; default: 2)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="fixed per-chunk deadline in seconds for hang detection "
        "(campaign/compare; default: adaptive from observed chunk durations)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for the campaign executor, e.g. "
        "'seed=7,kill=2,hang=1,exc=1,torn=1,hang_s=5' (campaign/compare; "
        "also honoured via the REPRO_CHAOS environment variable). Injected "
        "faults exercise the recovery paths without changing recorded values",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="on-disk cache of pre-trained model states (skips pre-training on reuse; "
        "also honoured via the REPRO_CACHE_DIR environment variable)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0, help="increase log verbosity")
    return parser


def _result_payload(command: str, result: Any) -> Dict[str, Any]:
    if command == "fig2a":
        return {"figure": "2a", "rows": result.rows(), "clean_accuracy": result.clean_accuracy}
    if command == "fig2b":
        return {"figure": "2b", "rows": result.rows(), "clean_accuracy": result.clean_accuracy}
    if command == "fig3":
        return {"figure": "3", **result.to_dict()}
    raise ValueError(f"unknown command {command!r}")


def _run_command(command: str, context: ExperimentContext, args: argparse.Namespace) -> Any:
    if command == "fig2a":
        result = run_fig2a(context)
        print(result.render())
        return result
    if command == "fig2b":
        result = run_fig2b(context)
        print(result.render())
        return result
    if command == "fig3":
        result = run_fig3(
            context,
            num_chips=args.chips,
            jobs=args.jobs,
            campaign_dir=args.campaign_dir,
            resume=not args.no_resume,
            disk_cache_dir=args.cache_dir,
            fat_batch=args.fat_batch,
        )
        print(result.summary_table())
        print()
        print(result.render_scatter())
        print()
        print("Pareto-optimal policies:", ", ".join(result.pareto_policies()))
        return result
    raise ValueError(f"unknown command {command!r}")


def _run_campaign(context: ExperimentContext, args: argparse.Namespace) -> Dict[str, Any]:
    """The 'campaign' command: one policy through the parallel engine."""
    population = build_population(context, num_chips=args.chips)
    store_base = args.campaign_dir if args.campaign_dir is not None else Path("campaigns")
    print(f"[repro-reduce] compute backend: {get_backend(args.backend).describe()}")
    engine = CampaignEngine(
        context,
        jobs=args.jobs,
        store_base=store_base,
        resume=not args.no_resume,
        progress=True,
        disk_cache_dir=args.cache_dir,
        fat_batch=args.fat_batch,
        max_chunk_retries=args.max_chunk_retries,
        chunk_timeout=args.chunk_timeout,
        chaos=args.chaos,
        backend=args.backend,
        prefetch=not args.no_prefetch,
        lowering_cache_mb=args.lowering_cache_mb,
        listen=args.listen_address,
        workers=args.worker_addresses,
    )
    try:
        if engine.distributed and engine.listen_address is not None:
            host, port = engine.listen_address
            print(f"[repro-reduce] coordinator listening on {host}:{port} "
                  f"(workers join with: repro-reduce worker --join {host}:{port})")
        if args.policy == "fixed":
            result = engine.run_fixed(population, args.fixed_epochs, strategy=args.strategy)
        else:
            statistic = args.policy.split("-", 1)[1]
            result = engine.run_reduce(population, statistic=statistic, strategy=args.strategy)
        report = engine.last_report
    finally:
        engine.close()

    print(campaign_summary_table([result]))
    print()
    print(f"[repro-reduce] campaign {report.describe()}")
    if report.skipped:
        print(f"[repro-reduce] resumed: {report.skipped} chip(s) loaded from the store, "
              f"{report.executed} executed")
    if result.failed_chips:
        failed_ids = ", ".join(str(r["chip_id"]) for r in result.failed_chips)
        print(f"[repro-reduce] WARNING: {len(result.failed_chips)} chip(s) "
              f"quarantined after repeated failures: {failed_ids} "
              f"(see quarantine.jsonl in the store)")
    payload: Dict[str, Any] = {"figure": "campaign", **result.to_dict()}
    payload["strategy"] = parse_strategy(args.strategy).name
    payload["backend"] = args.backend
    payload["report"] = {
        "policy": report.policy_name,
        "total_chips": report.total_chips,
        "executed": report.executed,
        "skipped": report.skipped,
        "failed": report.failed,
        "jobs": report.jobs,
        "elapsed_seconds": report.elapsed_seconds,
        "fingerprint": report.fingerprint,
        "store_dir": str(report.store_dir) if report.store_dir is not None else None,
    }
    return payload


def _run_compare(context: ExperimentContext, args: argparse.Namespace) -> Dict[str, Any]:
    """The 'compare' command: one population through K mitigation strategies."""
    store_base = args.campaign_dir if args.campaign_dir is not None else Path("campaigns")
    print(f"[repro-reduce] compute backend: {get_backend(args.backend).describe()}")
    result = run_compare(
        context,
        args.strategies,
        num_chips=args.chips,
        policy_name=args.policy,
        fixed_epochs=args.fixed_epochs,
        jobs=args.jobs,
        campaign_dir=store_base,
        resume=not args.no_resume,
        progress=True,
        fat_batch=args.fat_batch,
        disk_cache_dir=args.cache_dir,
        max_chunk_retries=args.max_chunk_retries,
        chunk_timeout=args.chunk_timeout,
        chaos=args.chaos,
        backend=args.backend,
        prefetch=not args.no_prefetch,
        lowering_cache_mb=args.lowering_cache_mb,
        listen=args.listen_address,
        workers=args.worker_addresses,
    )
    print(result.table())
    print()
    print("Pareto-optimal strategies:", ", ".join(result.pareto_strategies()))
    reports = result.sweep.reports
    for name in result.strategy_names:
        print(f"[repro-reduce] {name}: {reports[name].describe()}")
    payload: Dict[str, Any] = {"figure": "compare", **result.to_dict()}
    payload["reports"] = {
        name: {
            "executed": report.executed,
            "skipped": report.skipped,
            "elapsed_seconds": report.elapsed_seconds,
            "fingerprint": report.fingerprint,
            "store_dir": str(report.store_dir) if report.store_dir is not None else None,
        }
        for name, report in reports.items()
    }
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    set_verbosity(args.verbose)
    # Engine-constructor (and population) arguments are validated here with
    # parser.error — a clean usage message and exit code 2 — instead of
    # surfacing as CampaignEngine/ChipPopulation tracebacks after the
    # expensive context build.
    distributed = args.listen is not None or args.workers is not None
    if args.command == "worker":
        if (args.join is None) == (args.listen is None):
            parser.error("'worker' requires exactly one of --join or --listen")
        if args.workers is not None:
            parser.error("--workers is only valid with 'campaign' and 'compare'")
    else:
        if args.join is not None or args.expect_preset is not None:
            parser.error("--join/--expect-preset are only valid with the 'worker' command")
        if distributed and args.command not in ("campaign", "compare"):
            parser.error(
                "--listen/--workers are only valid with 'campaign', 'compare' "
                "and 'worker'"
            )
    if distributed and args.command in ("campaign", "compare"):
        if args.jobs < 0:
            parser.error("--jobs must be >= 0 with --listen/--workers "
                         "(0 = remote socket workers only)")
    elif args.command != "worker" and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.join_timeout <= 0:
        parser.error("--join-timeout must be positive")
    listen_address: Optional[Tuple[str, int]] = None
    worker_addresses: Optional[List[Tuple[str, int]]] = None
    join_address: Optional[Tuple[str, int]] = None
    try:
        if args.listen is not None:
            listen_address = parse_address(args.listen)
        if args.join is not None:
            join_address = parse_address(args.join)
        if args.workers is not None:
            worker_addresses = [
                parse_address(spec)
                for spec in str(args.workers).split(",")
                if spec.strip()
            ]
            if not worker_addresses:
                parser.error("--workers requires at least one HOST:PORT")
    except ValueError as error:
        parser.error(f"invalid address: {error}")
    args.listen_address = listen_address
    args.worker_addresses = worker_addresses
    if args.fat_batch is not None and args.fat_batch < 1:
        parser.error("--fat-batch must be >= 1")
    if args.chips is not None and args.chips < 1:
        parser.error("--chips must be >= 1")
    if args.fixed_epochs < 0:
        parser.error("--fixed-epochs must be non-negative")
    if args.max_chunk_retries is not None and args.max_chunk_retries < 0:
        parser.error("--max-chunk-retries must be >= 0")
    if args.chunk_timeout is not None and args.chunk_timeout <= 0:
        parser.error("--chunk-timeout must be positive")
    if args.lowering_cache_mb is not None and args.lowering_cache_mb < 0:
        parser.error("--lowering-cache-mb must be non-negative")
    if args.backend is None:
        args.backend = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    if args.backend not in available_backends():
        parser.error(
            f"unknown --backend {args.backend!r}; available: "
            f"{', '.join(available_backends())}"
        )
    if args.backend == "fused" and not numba_available():
        parser.error(
            "--backend fused requires numba, which is not installed in this "
            "environment; use --backend numpy (the always-available reference "
            "backend, bit-identical to eager execution) or install numba to "
            "enable the JIT-fused kernels"
        )
    if args.chaos is None:
        args.chaos = os.environ.get(CHAOS_ENV_VAR) or None
    if args.chaos is not None:
        try:
            ChaosSpec.parse(args.chaos)
        except ValueError as error:
            parser.error(f"invalid --chaos spec: {error}")
    try:
        parse_strategy(args.strategy)
        parse_strategy_list(args.strategies)
    except ValueError as error:
        parser.error(str(error))
    if args.path is not None and args.command not in ("trace", "verify-store"):
        parser.error(f"positional path is only valid with the 'trace' and "
                     f"'verify-store' commands, not {args.command!r}")

    if args.command == "worker":
        # Socket worker: the coordinator announces the preset, so no local
        # context build (the worker pre-trains from the announced preset,
        # hitting --cache-dir when the coordinator host shipped one over).
        where = (
            f"joining {args.join}" if join_address is not None
            else f"listening on {args.listen}"
        )
        print(f"[repro-reduce] socket worker {where} (pid {os.getpid()})")
        try:
            executed = run_worker(
                join=join_address,
                listen=listen_address,
                cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
                expect_preset=args.expect_preset,
                connect_timeout=args.join_timeout,
            )
        except WorkerRejected as error:
            print(f"[repro-reduce] worker rejected by coordinator: {error}",
                  file=sys.stderr)
            return 1
        except TransportError as error:
            print(f"[repro-reduce] worker transport failure: {error}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print("[repro-reduce] worker interrupted", file=sys.stderr)
            return 130
        print(f"[repro-reduce] worker done: {executed} chunk(s) executed")
        return 0

    if args.command == "verify-store":
        # Pure store auditing: no context build needed.
        base = args.path if args.path is not None else Path("campaigns")
        stores = discover_stores(base)
        if not stores:
            print(f"[repro-reduce] no campaign stores found under {base}")
            return 1
        clean = True
        for store in stores:
            report = store.verify()
            clean = clean and report.is_clean
            print(report.describe())
        print(
            f"[repro-reduce] verified {len(stores)} store(s): "
            f"{'all clean' if clean else 'INTEGRITY ISSUES FOUND'}"
        )
        return 0 if clean else 1

    if args.command == "trace":
        # Pure post-processing of a recorded trace: no context build needed.
        from repro.observability import load_trace, render_trace_summary, summarize_trace

        trace_path = args.path if args.path is not None else Path("trace")
        try:
            events = load_trace(trace_path)
        except (OSError, ValueError) as error:
            parser.error(str(error))
        if not events:
            print(f"[repro-reduce] no trace events found at {trace_path}")
            return 1
        try:
            print(render_trace_summary(summarize_trace(events)))
        except BrokenPipeError:
            # `repro-reduce trace | head` closes stdout early; that is not
            # an error worth a traceback.
            sys.stderr.close()
        return 0

    if args.trace is not None:
        from repro.observability import metrics, trace

        trace.enable(args.trace)
        metrics.enabled = True
        print(f"[repro-reduce] tracing enabled: shards + merged trace.json under {args.trace}")
    elif args.metrics:
        from repro.observability import metrics

        metrics.enabled = True

    preset = get_preset(args.preset)
    if args.command == "info":
        print(f"preset: {preset.name}")
        print(f"  model: {preset.model.name} {preset.model.kwargs}")
        print(f"  dataset: {preset.dataset}")
        print(f"  array: {preset.array_rows}x{preset.array_cols}")
        print(f"  resilience grid: rates={list(preset.fault_rates)} "
              f"checkpoints={list(preset.epoch_checkpoints)} trials={preset.trials_per_rate}")
        print(f"  chips: {preset.num_chips} fault rates in {preset.chip_fault_rate_range}")
        print(f"  constraint: clean accuracy - {preset.constraint_drop:.1%}")
        return 0

    print(f"[repro-reduce] building context for preset {preset.name!r} "
          f"(pre-training {preset.model.name}; this runs once per session)...")
    context = ExperimentContext.from_preset(preset, disk_cache_dir=args.cache_dir)
    print(f"[repro-reduce] clean accuracy: {context.clean_accuracy:.3f}, "
          f"accuracy constraint: {context.target_accuracy():.3f}")

    payloads = []
    if args.command == "campaign":
        payloads.append(_run_campaign(context, args))
    elif args.command == "compare":
        payloads.append(_run_compare(context, args))
    else:
        commands = ["fig2a", "fig2b", "fig3"] if args.command == "all" else [args.command]
        for command in commands:
            print(f"\n=== {command} ===")
            result = _run_command(command, context, args)
            payloads.append(_result_payload(command, result))

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("w", encoding="utf-8") as handle:
            json.dump(payloads if len(payloads) > 1 else payloads[0], handle, indent=2)
        print(f"\n[repro-reduce] wrote results to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
