"""Dataset abstractions (map-style, in-memory).

Datasets return ``(input, target)`` pairs as numpy arrays; batching into
:class:`~repro.nn.tensor.Tensor` objects happens in the
:class:`~repro.data.dataloader.DataLoader`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def num_classes(self) -> int:
        """Number of target classes; subclasses with labels should override."""
        raise NotImplementedError(f"{type(self).__name__} does not define num_classes")


class TensorDataset(Dataset):
    """Dataset wrapping pre-computed input and target arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) must have the same length"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    @property
    def num_classes(self) -> int:
        if self.targets.dtype.kind in "iu":
            return int(self.targets.max()) + 1 if len(self.targets) else 0
        raise ValueError("num_classes is only defined for integer targets")

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the underlying ``(inputs, targets)`` arrays."""
        return self.inputs, self.targets


class Subset(Dataset):
    """View of a dataset restricted to a list of indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= len(dataset)):
            raise IndexError("subset indices out of range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.dataset[int(self.indices[index])]

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes


class TransformedDataset(Dataset):
    """Apply a transform to the inputs of an underlying dataset."""

    def __init__(self, dataset: Dataset, transform: Callable[[np.ndarray], np.ndarray]) -> None:
        self.dataset = dataset
        self.transform = transform

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        x, y = self.dataset[index]
        return self.transform(x), y

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes


def random_split(
    dataset: Dataset, fractions: Sequence[float], seed: SeedLike = None
) -> List[Subset]:
    """Randomly split a dataset into subsets with the given fractions.

    The last subset absorbs rounding remainders so that every sample is used.
    """
    rng = new_rng(seed)
    fractions = list(fractions)
    if not fractions:
        raise ValueError("fractions must be non-empty")
    if any(f < 0 for f in fractions):
        raise ValueError("fractions must be non-negative")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1.0, got {sum(fractions)}")
    n = len(dataset)
    order = rng.permutation(n)
    sizes = [int(round(f * n)) for f in fractions]
    sizes[-1] = n - sum(sizes[:-1])
    if sizes[-1] < 0:
        raise ValueError("rounding produced a negative split size; adjust fractions")
    subsets: List[Subset] = []
    start = 0
    for size in sizes:
        subsets.append(Subset(dataset, order[start:start + size]))
        start += size
    return subsets


def stratified_split(
    dataset: Dataset, test_fraction: float, seed: SeedLike = None
) -> Tuple[Subset, Subset]:
    """Split into train/test subsets preserving per-class proportions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = new_rng(seed)
    targets = np.asarray([int(np.asarray(dataset[i][1])) for i in range(len(dataset))])
    train_indices: List[int] = []
    test_indices: List[int] = []
    for label in np.unique(targets):
        label_indices = np.flatnonzero(targets == label)
        label_indices = rng.permutation(label_indices)
        n_test = max(1, int(round(test_fraction * len(label_indices))))
        test_indices.extend(label_indices[:n_test].tolist())
        train_indices.extend(label_indices[n_test:].tolist())
    return Subset(dataset, sorted(train_indices)), Subset(dataset, sorted(test_indices))
