"""Input transforms (normalisation and light augmentation).

Transforms operate on single samples shaped ``(C, H, W)`` (images) or ``(F,)``
(feature vectors) and are composable with :class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

Transform = Callable[[np.ndarray], np.ndarray]


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            x = transform(x)
        return x

    def __repr__(self) -> str:
        inner = ", ".join(type(t).__name__ for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Channel-wise normalisation ``(x - mean) / std`` for CHW images."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std


class RandomHorizontalFlip:
    """Flip a CHW image horizontally with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: SeedLike = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self._rng = new_rng(seed)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return np.ascontiguousarray(x[..., ::-1])
        return x


class RandomCrop:
    """Randomly crop a CHW image after zero-padding the borders."""

    def __init__(self, size: int, padding: int = 0, seed: SeedLike = None) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.padding = padding
        self._rng = new_rng(seed)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.padding:
            x = np.pad(x, ((0, 0), (self.padding, self.padding), (self.padding, self.padding)))
        _, h, w = x.shape
        if h < self.size or w < self.size:
            raise ValueError(f"image ({h}x{w}) smaller than crop size {self.size}")
        top = int(self._rng.integers(0, h - self.size + 1))
        left = int(self._rng.integers(0, w - self.size + 1))
        return np.ascontiguousarray(x[:, top:top + self.size, left:left + self.size])


class GaussianNoise:
    """Add zero-mean Gaussian noise (simple augmentation / robustness probe)."""

    def __init__(self, std: float, seed: SeedLike = None) -> None:
        if std < 0:
            raise ValueError("std must be non-negative")
        self.std = std
        self._rng = new_rng(seed)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.std == 0:
            return x
        return (x + self._rng.normal(0.0, self.std, size=x.shape)).astype(x.dtype)


class ToFloat32:
    """Cast inputs to float32 (the library's default dtype)."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float32)


def channel_statistics(images: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel mean and std of an ``(N, C, H, W)`` image array."""
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, C, H, W) array, got shape {images.shape}")
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    return mean, std
