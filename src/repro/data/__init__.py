"""Datasets, loaders and synthetic data generators."""

from repro.data.dataset import (
    Dataset,
    TensorDataset,
    Subset,
    TransformedDataset,
    random_split,
    stratified_split,
)
from repro.data.dataloader import DataLoader, full_batch
from repro.data.transforms import (
    Compose,
    Normalize,
    RandomHorizontalFlip,
    RandomCrop,
    GaussianNoise,
    ToFloat32,
    channel_statistics,
)
from repro.data.synthetic import (
    DatasetBundle,
    make_class_template_images,
    make_cifar10_like,
    make_blob_classification,
)

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "TransformedDataset",
    "random_split",
    "stratified_split",
    "DataLoader",
    "full_batch",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "ToFloat32",
    "channel_statistics",
    "DatasetBundle",
    "make_class_template_images",
    "make_cifar10_like",
    "make_blob_classification",
]
