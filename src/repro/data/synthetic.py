"""Synthetic classification datasets.

The original paper evaluates on CIFAR-10, which is not available in this
offline environment.  These generators produce image-classification problems
with the properties the Reduce experiments actually depend on:

* a clean model can reach high accuracy (there is head-room above the
  accuracy constraint);
* accuracy degrades *gradually* as weights are pruned / faults are injected
  (class evidence is distributed over many pixels rather than a single one);
* generation is fully deterministic given a seed, so the resilience analysis
  and the per-chip experiments see exactly the same data distribution.

Two families are provided: smooth class-template images (``ClassTemplateImages``,
the CIFAR-10 stand-in) and Gaussian blob feature vectors (for fast MLP tests).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import TensorDataset
from repro.utils.rng import SeedLike, derive_seed, new_rng


@dataclasses.dataclass
class DatasetBundle:
    """A train/test dataset pair plus the metadata models need to be built."""

    name: str
    train: TensorDataset
    test: TensorDataset
    num_classes: int
    input_shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise ValueError("num_classes must be at least 2")

    @property
    def image_channels(self) -> int:
        if len(self.input_shape) != 3:
            raise ValueError("image_channels is only defined for image datasets")
        return self.input_shape[0]

    @property
    def image_size(self) -> int:
        if len(self.input_shape) != 3:
            raise ValueError("image_size is only defined for image datasets")
        return self.input_shape[1]

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.train)} train / {len(self.test)} test samples, "
            f"{self.num_classes} classes, input shape {self.input_shape}"
        )


def _smooth_template(
    rng: np.random.Generator, channels: int, image_size: int, grid: int
) -> np.ndarray:
    """Generate a smooth random pattern by bilinear upsampling a coarse grid."""
    coarse = rng.uniform(-1.0, 1.0, size=(channels, grid, grid))
    # Bilinear upsample the coarse grid to (image_size, image_size).
    positions = np.linspace(0, grid - 1, image_size)
    low = np.floor(positions).astype(int)
    high = np.minimum(low + 1, grid - 1)
    frac = positions - low
    # Interpolate rows then columns.
    rows = coarse[:, low, :] * (1 - frac)[None, :, None] + coarse[:, high, :] * frac[None, :, None]
    template = (
        rows[:, :, low] * (1 - frac)[None, None, :] + rows[:, :, high] * frac[None, None, :]
    )
    return template.astype(np.float32)


def _generate_class_template_split(
    rng: np.random.Generator,
    templates: np.ndarray,
    samples_per_class: int,
    noise_std: float,
    shift_pixels: int,
    signal_scale: float,
) -> Tuple[np.ndarray, np.ndarray]:
    num_classes, channels, size, _ = templates.shape
    total = num_classes * samples_per_class
    inputs = np.empty((total, channels, size, size), dtype=np.float32)
    targets = np.empty(total, dtype=np.int64)
    cursor = 0
    for label in range(num_classes):
        base = templates[label] * signal_scale
        for _ in range(samples_per_class):
            sample = base.copy()
            if shift_pixels > 0:
                dy = int(rng.integers(-shift_pixels, shift_pixels + 1))
                dx = int(rng.integers(-shift_pixels, shift_pixels + 1))
                sample = np.roll(sample, (dy, dx), axis=(1, 2))
            sample = sample + rng.normal(0.0, noise_std, size=sample.shape).astype(np.float32)
            inputs[cursor] = sample
            targets[cursor] = label
            cursor += 1
    order = rng.permutation(total)
    return inputs[order], targets[order]


def make_class_template_images(
    num_classes: int = 10,
    train_per_class: int = 64,
    test_per_class: int = 32,
    image_size: int = 16,
    channels: int = 3,
    noise_std: float = 0.35,
    shift_pixels: int = 1,
    template_grid: int = 4,
    signal_scale: float = 1.0,
    seed: SeedLike = 0,
    name: str = "class-template-images",
) -> DatasetBundle:
    """Synthetic image-classification dataset (CIFAR-10 stand-in).

    Each class is defined by a smooth random template; samples are noisy,
    slightly shifted copies of their class template.  ``noise_std`` controls
    task difficulty (larger noise → lower clean accuracy), ``shift_pixels``
    adds translation variability so convolutional features matter.
    """
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if image_size < template_grid:
        raise ValueError("image_size must be >= template_grid")
    if train_per_class <= 0 or test_per_class <= 0:
        raise ValueError("train_per_class and test_per_class must be positive")
    if noise_std < 0:
        raise ValueError("noise_std must be non-negative")
    base_seed = seed if isinstance(seed, int) else None
    rng = new_rng(seed)
    template_rng = new_rng(derive_seed(base_seed, "templates") if base_seed is not None else rng)
    templates = np.stack(
        [_smooth_template(template_rng, channels, image_size, template_grid) for _ in range(num_classes)]
    )
    train_rng = new_rng(derive_seed(base_seed, "train") if base_seed is not None else rng)
    test_rng = new_rng(derive_seed(base_seed, "test") if base_seed is not None else rng)
    train_x, train_y = _generate_class_template_split(
        train_rng, templates, train_per_class, noise_std, shift_pixels, signal_scale
    )
    test_x, test_y = _generate_class_template_split(
        test_rng, templates, test_per_class, noise_std, shift_pixels, signal_scale
    )
    return DatasetBundle(
        name=name,
        train=TensorDataset(train_x, train_y),
        test=TensorDataset(test_x, test_y),
        num_classes=num_classes,
        input_shape=(channels, image_size, image_size),
    )


def make_cifar10_like(
    train_per_class: int = 64,
    test_per_class: int = 32,
    image_size: int = 32,
    noise_std: float = 0.35,
    seed: SeedLike = 0,
) -> DatasetBundle:
    """A 10-class, 3-channel dataset shaped like CIFAR-10 (32x32 by default)."""
    return make_class_template_images(
        num_classes=10,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=image_size,
        channels=3,
        noise_std=noise_std,
        shift_pixels=2,
        template_grid=4,
        seed=seed,
        name="cifar10-like-synthetic",
    )


def make_blob_classification(
    num_classes: int = 4,
    features: int = 16,
    train_per_class: int = 64,
    test_per_class: int = 32,
    cluster_std: float = 1.0,
    center_scale: float = 3.0,
    seed: SeedLike = 0,
) -> DatasetBundle:
    """Gaussian-blob feature-vector classification (fast MLP workloads)."""
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if features <= 0:
        raise ValueError("features must be positive")
    if cluster_std < 0:
        raise ValueError("cluster_std must be non-negative")
    rng = new_rng(seed)
    centers = rng.standard_normal((num_classes, features)).astype(np.float32) * center_scale

    def _split(samples_per_class: int, split_rng: np.random.Generator):
        total = num_classes * samples_per_class
        inputs = np.empty((total, features), dtype=np.float32)
        targets = np.empty(total, dtype=np.int64)
        cursor = 0
        for label in range(num_classes):
            noise = split_rng.standard_normal((samples_per_class, features)).astype(np.float32)
            inputs[cursor:cursor + samples_per_class] = centers[label] + cluster_std * noise
            targets[cursor:cursor + samples_per_class] = label
            cursor += samples_per_class
        order = split_rng.permutation(total)
        return inputs[order], targets[order]

    train_x, train_y = _split(train_per_class, rng)
    test_x, test_y = _split(test_per_class, rng)
    return DatasetBundle(
        name="gaussian-blobs",
        train=TensorDataset(train_x, train_y),
        test=TensorDataset(test_x, test_y),
        num_classes=num_classes,
        input_shape=(features,),
    )
