"""Mini-batch loader converting dataset samples into tensors.

The loader is deliberately simple (single process, in-memory) but matches the
PyTorch ``DataLoader`` semantics the paper's training loops rely on:
shuffling per epoch, optional last-batch dropping and deterministic seeding.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset, TensorDataset
from repro.nn.tensor import DEFAULT_DTYPE, Tensor
from repro.utils.rng import SeedLike, new_rng


class DataLoader:
    """Iterate over a dataset in mini-batches of ``(Tensor, ndarray)`` pairs."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(seed)
        self._fast_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if isinstance(dataset, TensorDataset):
            self._fast_arrays = dataset.arrays()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def _gather(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._fast_arrays is not None:
            inputs, targets = self._fast_arrays
            return inputs[indices], targets[indices]
        samples = [self.dataset[int(i)] for i in indices]
        inputs = np.stack([np.asarray(x) for x, _ in samples])
        targets = np.asarray([y for _, y in samples])
        return inputs, targets

    def __iter__(self) -> Iterator[Tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            batch_indices = order[start:start + self.batch_size]
            if len(batch_indices) == 0:
                continue
            inputs, targets = self._gather(batch_indices)
            yield Tensor(np.ascontiguousarray(inputs, dtype=DEFAULT_DTYPE)), np.asarray(targets)

    def take(self, num_batches: int) -> Iterator[Tuple[Tensor, np.ndarray]]:
        """Yield at most ``num_batches`` batches (used for fractional epochs)."""
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        for batch_index, batch in enumerate(self):
            if batch_index >= num_batches:
                return
            yield batch


def full_batch(dataset: Dataset) -> Tuple[Tensor, np.ndarray]:
    """Materialise an entire dataset as a single ``(Tensor, targets)`` batch."""
    loader = DataLoader(dataset, batch_size=max(1, len(dataset)), shuffle=False)
    for batch in loader:
        return batch
    raise ValueError("dataset is empty")
