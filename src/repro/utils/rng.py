"""Deterministic random-number management.

Every stochastic component in the library (fault-map generation, dataset
synthesis, weight initialisation, data shuffling, fault-injection trials)
accepts either an integer seed or a :class:`numpy.random.Generator`.  The
helpers here normalise both forms and provide a reproducible way to derive
independent child generators from a parent seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    ``None`` produces a non-deterministic generator, an ``int`` produces a
    seeded generator and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Derive a stable 63-bit child seed from a base seed and components.

    The derivation uses SHA-256 so that different component tuples give
    statistically independent child seeds, and the same tuple always gives
    the same child seed across processes and platforms.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for component in components:
        hasher.update(b"/")
        hasher.update(str(component).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from a seed-like value."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = new_rng(seed)
    return [np.random.default_rng(s) for s in parent.bit_generator._seed_seq.spawn(count)] \
        if hasattr(parent.bit_generator, "_seed_seq") and parent.bit_generator._seed_seq is not None \
        else [np.random.default_rng(parent.integers(0, 2**63 - 1)) for _ in range(count)]


class RngMixin:
    """Mixin providing a lazily created, seedable ``self.rng`` attribute."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the internal generator to a new seed."""
        self._seed = seed
        self._rng = None


def choice_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct elements from ``population``.

    Raises ``ValueError`` when ``size`` exceeds the population size, mirroring
    :func:`numpy.random.Generator.choice` but with a clearer message.
    """
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} elements from population of {len(population)}"
        )
    return rng.choice(np.asarray(population), size=size, replace=False)


def shuffled_indices(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    return rng.permutation(n)


def split_indices(
    rng: np.random.Generator, n: int, fractions: Iterable[float]
) -> List[np.ndarray]:
    """Split ``range(n)`` into shuffled groups with the given fractions.

    The fractions must sum to at most 1.0; any remainder is appended to the
    final group so no index is ever dropped.
    """
    fractions = list(fractions)
    if any(f < 0 for f in fractions):
        raise ValueError("fractions must be non-negative")
    if sum(fractions) > 1.0 + 1e-9:
        raise ValueError(f"fractions sum to {sum(fractions)} > 1")
    order = rng.permutation(n)
    sizes = [int(round(f * n)) for f in fractions]
    total = sum(sizes)
    if total > n:
        sizes[-1] -= total - n
    groups: List[np.ndarray] = []
    start = 0
    for size in sizes[:-1]:
        groups.append(order[start:start + size])
        start += size
    groups.append(order[start:])
    return groups
