"""Serialization helpers for experiment configuration dataclasses.

Experiment configs throughout the library are plain ``dataclasses``.  These
helpers convert them to/from JSON-compatible dictionaries so that every
experiment can be saved next to its results and replayed exactly.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Type, TypeVar, Union

import numpy as np

T = TypeVar("T")


class ConfigError(ValueError):
    """Raised when a configuration value is invalid or cannot be serialized."""


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(f"value of type {type(value).__name__} is not JSON-serializable: {value!r}")


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Convert a dataclass config instance into a JSON-compatible dict."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigError(f"expected a dataclass instance, got {type(config).__name__}")
    return _to_jsonable(config)


def config_from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
    """Instantiate a dataclass ``cls`` from a dict, ignoring unknown keys.

    Nested dataclass fields are recursively reconstructed when the stored
    value is a dict.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(f"{cls!r} is not a dataclass type")
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        if name not in field_map:
            continue
        field = field_map[name]
        field_type = field.type
        resolved = _resolve_dataclass_type(cls, field_type)
        if resolved is not None and isinstance(value, dict):
            kwargs[name] = config_from_dict(resolved, value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _resolve_dataclass_type(owner: type, annotation: Any) -> Any:
    """Best-effort resolution of a dataclass type from a field annotation."""
    if isinstance(annotation, type) and dataclasses.is_dataclass(annotation):
        return annotation
    if isinstance(annotation, str):
        import sys

        module = sys.modules.get(owner.__module__)
        candidate = getattr(module, annotation, None) if module else None
        if isinstance(candidate, type) and dataclasses.is_dataclass(candidate):
            return candidate
    return None


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so a just-renamed entry survives a power cut.

    ``os.replace`` makes a rename atomic with respect to concurrent readers,
    but the *directory entry* itself is only durable once the directory's
    metadata reaches disk.  Platforms where directories cannot be opened for
    fsync (e.g. Windows) are silently skipped — the rename is still atomic,
    just not power-cut durable there.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def save_json(data: Any, path: Union[str, Path], atomic: bool = False) -> Path:
    """Write JSON-compatible ``data`` (or a dataclass) to ``path``.

    With ``atomic=True`` the payload is written to a sibling temp file,
    fsynced, moved into place with :func:`os.replace`, and the parent
    directory is fsynced — so concurrent readers (e.g. campaign workers
    inspecting a store manifest) never observe a torn file and the rename
    survives a power cut.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _to_jsonable(data)
    if atomic:
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(path.parent)
    else:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Read JSON data written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
