"""Utility helpers shared across the :mod:`repro` package.

The utilities are deliberately small and dependency free: deterministic RNG
management, lightweight logging, wall-clock timers and config serialization.
"""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs, derive_seed
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.timing import Timer, format_duration
from repro.utils.config import ConfigError, config_to_dict, config_from_dict, save_json, load_json

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rngs",
    "derive_seed",
    "get_logger",
    "set_verbosity",
    "Timer",
    "format_duration",
    "ConfigError",
    "config_to_dict",
    "config_from_dict",
    "save_json",
    "load_json",
]
