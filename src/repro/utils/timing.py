"""Wall-clock timing helpers used by trainers and experiment runners."""

from __future__ import annotations

import time
from typing import Optional


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as a short human-readable string."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m"


class Timer:
    """Context-manager / manual timer measuring elapsed wall-clock time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        label = self.name or "Timer"
        return f"{label}({format_duration(self.elapsed)})"
