"""Wall-clock timing helpers used by trainers and experiment runners."""

from __future__ import annotations

import time
from typing import Optional


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as a short human-readable string."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    # Round to each format's display precision *before* choosing the unit and
    # splitting, so values just under a boundary carry instead of rendering
    # impossible components ("1000.0ms", "60.00s", "1m60.0s", "59m60.0s").
    if seconds < 1e-3 and round(seconds * 1e6) < 1000:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0 and round(seconds * 1e3, 1) < 1000.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0 and round(seconds, 2) < 60.0:
        return f"{seconds:.2f}s"
    if seconds < 3600.0:
        total_tenths = round(seconds * 10.0)
        minutes, tenths = divmod(total_tenths, 600)
        if minutes < 60:
            return f"{minutes}m{tenths / 10.0:04.1f}s"
    total_minutes = round(seconds / 60.0)
    hours, minutes = divmod(total_minutes, 60)
    return f"{hours}h{minutes:02d}m"


class Timer:
    """Context-manager / manual timer measuring elapsed wall-clock time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        label = self.name or "Timer"
        return f"{label}({format_duration(self.elapsed)})"
