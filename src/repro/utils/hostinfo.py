"""Host identity helpers for cross-host artifacts.

Distributed campaigns aggregate per-process artifacts (trace shards, metric
shards) from several machines into one directory; a bare ``pid`` key collides
as soon as two hosts contribute.  :func:`host_tag` is the sanitized hostname
used to namespace those artifacts — filesystem-safe, stable for the life of
the process, and cheap to call from hot paths (cached after the first call).
"""

from __future__ import annotations

import re
import socket
from functools import lru_cache


@lru_cache(maxsize=1)
def host_tag() -> str:
    """This machine's hostname, sanitized for filenames and JSON keys."""
    try:
        name = socket.gethostname()
    except OSError:  # pragma: no cover - gethostname practically never fails
        name = ""
    tag = re.sub(r"[^A-Za-z0-9._-]+", "-", name or "").strip("-.")
    return tag or "host"
