"""Minimal logging configuration used across the library.

The library never configures the root logger; it only attaches a console
handler to its own ``repro`` logger hierarchy so that embedding applications
keep full control of their logging setup.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
    logger.setLevel(logging.WARNING)
    logger.propagate = False
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy.

    ``get_logger("core.reduce")`` returns the ``repro.core.reduce`` logger.
    """
    _ensure_configured()
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the verbosity of all ``repro`` loggers.

    ``level`` follows the convention 0 = warnings only, 1 = info, 2 = debug.
    """
    _ensure_configured()
    mapping = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}
    logging.getLogger(_ROOT_NAME).setLevel(mapping.get(level, logging.DEBUG))
