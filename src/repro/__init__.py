"""Reproduction of "Reduce: A Framework for Reducing the Overheads of
Fault-Aware Retraining" (Hanif & Shafique, DATE 2023).

Sub-packages
------------
``repro.nn``           numpy autograd / DNN training substrate (PyTorch stand-in)
``repro.data``         datasets, loaders, synthetic CIFAR-10 stand-in
``repro.models``       MLP, LeNet-5 and the VGG family (VGG11 is the paper's network)
``repro.accelerator``  systolic array, fault maps, layer mapping, timing & energy models
``repro.mitigation``   FAP, FAM (SalvageDNN) and FAT baselines
``repro.core``         the Reduce framework (resilience analysis, selection, retraining)
``repro.analysis``     Pareto fronts, statistics, ASCII plotting
``repro.experiments``  runners regenerating every figure of the paper

See ``README.md`` for a quickstart and ``DESIGN.md`` for the full inventory.
"""

__version__ = "1.0.0"

from repro import nn, data, models, accelerator, mitigation, analysis  # noqa: F401
from repro import core, experiments  # noqa: F401
from repro.accelerator import FaultMap, SystolicArray
from repro.core import (
    AccuracyConstraint,
    Chip,
    ChipPopulation,
    ReduceConfig,
    ReduceFramework,
    ResilienceConfig,
    ResilienceProfile,
    FixedEpochPolicy,
    ResilienceDrivenPolicy,
)
from repro.training import Trainer, TrainingConfig, evaluate_accuracy

__all__ = [
    "__version__",
    "nn",
    "data",
    "models",
    "accelerator",
    "mitigation",
    "analysis",
    "core",
    "experiments",
    "FaultMap",
    "SystolicArray",
    "AccuracyConstraint",
    "Chip",
    "ChipPopulation",
    "ReduceConfig",
    "ReduceFramework",
    "ResilienceConfig",
    "ResilienceProfile",
    "FixedEpochPolicy",
    "ResilienceDrivenPolicy",
    "Trainer",
    "TrainingConfig",
    "evaluate_accuracy",
]
