"""Experiment presets.

A preset bundles every knob needed to reproduce the paper's figures at a
chosen computational scale:

* ``smoke``  — seconds; used by unit/integration tests of the runners.
* ``fast``   — tens of seconds; the default for the benchmark harness.
* ``paper``  — the faithful configuration (VGG11-style network, 256x256
  array, 5 trials per fault rate, 100 chips); minutes to hours on a CPU.

All presets run the *same code path*; only model width, dataset size, grid
resolution and chip count change.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.core.constraints import AccuracyConstraint
from repro.core.resilience import ResilienceConfig
from repro.training import TrainingConfig


@dataclasses.dataclass
class DatasetSpec:
    """Synthetic-dataset parameters (CIFAR-10 stand-in; see DESIGN.md §2)."""

    num_classes: int = 10
    train_per_class: int = 64
    test_per_class: int = 32
    image_size: int = 16
    channels: int = 3
    noise_std: float = 0.25
    shift_pixels: int = 1
    seed: int = 7


@dataclasses.dataclass
class ModelSpec:
    """Model architecture parameters (see :mod:`repro.models.registry`)."""

    name: str = "vgg11_mini"
    kwargs: Dict[str, object] = dataclasses.field(default_factory=dict)
    seed: int = 11


@dataclasses.dataclass
class ExperimentPreset:
    """Everything needed to instantiate an experiment context."""

    name: str
    dataset: DatasetSpec
    model: ModelSpec
    array_rows: int = 256
    array_cols: int = 256
    pretrain_epochs: float = 8.0
    pretrain: TrainingConfig = dataclasses.field(default_factory=TrainingConfig)
    retraining: TrainingConfig = dataclasses.field(
        default_factory=lambda: TrainingConfig(learning_rate=0.02)
    )
    # Resilience grid (Step 1).
    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)
    epoch_checkpoints: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0)
    trials_per_rate: int = 5
    # Fig. 2a retraining amounts (accuracy-vs-fault-rate curves).
    fig2a_fault_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    fig2a_epochs: Sequence[float] = (0.05, 1.0, 2.0)
    # Fig. 2b target accuracies, expressed as drops from clean accuracy.
    fig2b_accuracy_drops: Sequence[float] = (0.03, 0.02, 0.01)
    # Fig. 3 campaign parameters.
    num_chips: int = 100
    chip_fault_rate_range: Tuple[float, float] = (0.0, 0.3)
    fixed_policy_epochs: Sequence[float] = (0.05, 0.1, 0.2)
    constraint_drop: float = 0.02
    seed: int = 0

    def resilience_config(self) -> ResilienceConfig:
        return ResilienceConfig(
            fault_rates=tuple(self.fault_rates),
            epoch_checkpoints=tuple(self.epoch_checkpoints),
            trials_per_rate=self.trials_per_rate,
            training=self.retraining,
            seed=self.seed,
        )

    def constraint(self) -> AccuracyConstraint:
        return AccuracyConstraint.within_drop_of_clean(self.constraint_drop)


def smoke_preset() -> ExperimentPreset:
    """Minimal preset for unit tests of the experiment runners (seconds)."""
    return ExperimentPreset(
        name="smoke",
        dataset=DatasetSpec(
            num_classes=4,
            train_per_class=24,
            test_per_class=16,
            image_size=8,
            channels=2,
            noise_std=0.25,
            shift_pixels=0,
        ),
        model=ModelSpec(name="mlp", kwargs={"hidden_sizes": (48,)}),
        array_rows=16,
        array_cols=16,
        pretrain_epochs=4.0,
        pretrain=TrainingConfig(learning_rate=0.1, batch_size=32, weight_decay=1e-4),
        retraining=TrainingConfig(learning_rate=0.05, batch_size=32, weight_decay=1e-4),
        fault_rates=(0.0, 0.1, 0.3),
        epoch_checkpoints=(0.25, 1.0),
        trials_per_rate=2,
        fig2a_fault_rates=(0.0, 0.2, 0.4),
        fig2a_epochs=(0.25, 1.0),
        fig2b_accuracy_drops=(0.05, 0.02),
        num_chips=6,
        chip_fault_rate_range=(0.0, 0.25),
        fixed_policy_epochs=(0.25, 1.0),
        constraint_drop=0.05,
        seed=0,
    )


def fast_preset() -> ExperimentPreset:
    """Benchmark-scale preset (tens of seconds end to end).

    Calibrated so that the resilience curves have the paper's shape: the
    clean accuracy is ~95 %, accuracy degrades markedly beyond ~20 % fault
    rate without retraining, and the retraining amount needed to return to
    within the constraint grows with the fault rate.
    """
    return ExperimentPreset(
        name="fast",
        dataset=DatasetSpec(
            num_classes=10,
            train_per_class=40,
            test_per_class=20,
            image_size=12,
            channels=3,
            noise_std=0.60,
            shift_pixels=1,
        ),
        model=ModelSpec(name="lenet5", kwargs={}),
        array_rows=64,
        array_cols=64,
        pretrain_epochs=12.0,
        pretrain=TrainingConfig(learning_rate=0.08, batch_size=40, weight_decay=1e-4),
        retraining=TrainingConfig(learning_rate=0.04, batch_size=40, weight_decay=1e-4),
        fault_rates=(0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
        epoch_checkpoints=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
        trials_per_rate=3,
        fig2a_fault_rates=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
        fig2a_epochs=(0.05, 0.5, 2.0),
        fig2b_accuracy_drops=(0.04, 0.02, 0.01),
        num_chips=24,
        chip_fault_rate_range=(0.0, 0.3),
        fixed_policy_epochs=(0.05, 0.25, 1.0),
        constraint_drop=0.02,
        seed=0,
    )


def paper_preset() -> ExperimentPreset:
    """Faithful configuration: VGG11 plan, 256x256 array, 5 trials, 100 chips.

    With the numpy training substrate this takes on the order of an hour on a
    CPU; all figure runners accept any preset, so the shape of every result
    can be verified with ``fast_preset`` first.
    """
    return ExperimentPreset(
        name="paper",
        dataset=DatasetSpec(
            num_classes=10,
            train_per_class=64,
            test_per_class=32,
            image_size=16,
            channels=3,
            noise_std=0.50,
            shift_pixels=1,
        ),
        model=ModelSpec(
            name="vgg11", kwargs={"width_multiplier": 0.25, "batch_norm": False}
        ),
        array_rows=256,
        array_cols=256,
        pretrain_epochs=15.0,
        pretrain=TrainingConfig(learning_rate=0.05, batch_size=32, weight_decay=5e-4),
        retraining=TrainingConfig(learning_rate=0.02, batch_size=32, weight_decay=5e-4),
        fault_rates=(0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5),
        epoch_checkpoints=(0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0),
        trials_per_rate=5,
        fig2a_fault_rates=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
        fig2a_epochs=(0.05, 2.0, 5.0),
        fig2b_accuracy_drops=(0.03, 0.02, 0.01),
        num_chips=100,
        chip_fault_rate_range=(0.0, 0.25),
        fixed_policy_epochs=(0.05, 0.2, 0.5),
        constraint_drop=0.02,
        seed=0,
    )


_PRESETS = {
    "smoke": smoke_preset,
    "fast": fast_preset,
    "paper": paper_preset,
}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name (``smoke``, ``fast`` or ``paper``)."""
    key = name.lower()
    if key not in _PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {', '.join(sorted(_PRESETS))}")
    return _PRESETS[key]()


def available_presets() -> Tuple[str, ...]:
    return tuple(sorted(_PRESETS))
