"""Runner reproducing Fig. 3 of the paper (comparison with the state of the art).

For a population of faulty chips, the runner retrains the pre-trained model
per chip under several policies and gathers, per policy, the per-chip
(accuracy, epochs) scatter (Fig. 3a–e) and the summary point
(average epochs, % of chips meeting the constraint) used in Fig. 3f:

* ``reduce-max``  — the proposed framework with the max statistic (Fig. 3a),
* ``reduce-mean`` — the mean statistic variant (Fig. 3b),
* ``fixed-<e>ep`` — fixed-policy retraining at each budget in the preset
  (Fig. 3c, 3d, 3e).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from pathlib import Path
from typing import Union

from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.pareto import pareto_mask
from repro.campaign.engine import CampaignEngine
from repro.core.chips import ChipPopulation
from repro.core.reduce import CampaignResult, ReduceFramework
from repro.core.reporting import campaign_summary_table
from repro.core.selection import FixedEpochPolicy
from repro.experiments.common import ExperimentContext
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("experiments.fig3")


@dataclasses.dataclass
class Fig3Result:
    """All campaigns of the Fig. 3 comparison plus derived summaries."""

    campaigns: Dict[str, CampaignResult]
    target_accuracy: float
    clean_accuracy: float
    population_fault_rates: np.ndarray

    # -- access helpers ----------------------------------------------------------

    @property
    def policy_names(self) -> List[str]:
        return list(self.campaigns)

    def campaign(self, name: str) -> CampaignResult:
        if name not in self.campaigns:
            raise KeyError(f"unknown policy {name!r}; available: {self.policy_names}")
        return self.campaigns[name]

    @property
    def reduce_max(self) -> CampaignResult:
        return self.campaign("reduce-max")

    @property
    def reduce_mean(self) -> CampaignResult:
        return self.campaign("reduce-mean")

    def fixed_campaigns(self) -> Dict[str, CampaignResult]:
        return {name: c for name, c in self.campaigns.items() if name.startswith("fixed")}

    # -- Fig. 3f summary ------------------------------------------------------------

    def summary_points(self) -> List[Dict[str, float]]:
        """One (average epochs, % meeting constraint) point per policy."""
        return [
            {
                "policy": name,
                "average_epochs": campaign.average_epochs,
                "percent_meeting_constraint": campaign.percent_meeting_constraint,
            }
            for name, campaign in self.campaigns.items()
        ]

    def pareto_policies(self) -> List[str]:
        """Policies on the Pareto front of (avg epochs ↓, % meeting constraint ↑)."""
        points = self.summary_points()
        mask = pareto_mask(
            [point["average_epochs"] for point in points],
            [point["percent_meeting_constraint"] for point in points],
        )
        return [point["policy"] for point, keep in zip(points, mask) if keep]

    def reduce_on_pareto_front(self) -> bool:
        """The paper's headline claim: Reduce lies on the Pareto front."""
        return "reduce-max" in self.pareto_policies()

    def summary_table(self) -> str:
        return campaign_summary_table(list(self.campaigns.values()))

    def render_scatter(self) -> str:
        """Fig. 3a-e analogue as one ASCII scatter plot (accuracy vs epochs)."""
        series = {
            name: (campaign.accuracies(), campaign.epochs())
            for name, campaign in self.campaigns.items()
        }
        return scatter_plot(
            series,
            title=(
                "Fig. 3 analogue: per-chip accuracy (x) vs retraining epochs (y); "
                f"constraint = {self.target_accuracy:.2%}"
            ),
            x_label="accuracy",
            y_label="epochs",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_accuracy": self.target_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "summaries": [c.summary() for c in self.campaigns.values()],
            "pareto_policies": self.pareto_policies(),
        }


def build_population(
    context: ExperimentContext, num_chips: Optional[int] = None
) -> ChipPopulation:
    """Generate the faulty-chip population described by the context's preset."""
    preset = context.preset
    return ChipPopulation.generate(
        count=num_chips if num_chips is not None else preset.num_chips,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=preset.chip_fault_rate_range,
        seed=derive_seed(preset.seed, "chip-population"),
    )


def run_fig3(
    context: ExperimentContext,
    num_chips: Optional[int] = None,
    fixed_epochs: Optional[Sequence[float]] = None,
    include_reduce_mean: bool = True,
    population: Optional[ChipPopulation] = None,
    progress: bool = False,
    jobs: int = 1,
    campaign_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    disk_cache_dir: Optional[Union[str, Path]] = None,
    fat_batch: Optional[int] = None,
) -> Fig3Result:
    """Run the full Fig. 3 comparison on the given context.

    Each policy's campaign is dispatched through the campaign engine:
    ``jobs`` shards the retraining across worker processes (``1`` executes
    inline), ``campaign_dir`` persists per-chip results to resumable JSONL
    stores (one per policy, resumed unless ``resume=False``),
    ``disk_cache_dir`` lets spawned workers load the pre-trained state
    instead of re-pre-training, and ``fat_batch`` caps how many same-budget
    chips are retrained together in one stacked batched-FAT run — inline and
    inside every worker alike (``1`` disables coalescing).
    """
    preset = context.preset
    chips = population if population is not None else build_population(context, num_chips)
    budgets = tuple(fixed_epochs if fixed_epochs is not None else preset.fixed_policy_epochs)

    framework = context.framework()
    # Ensure Step 1 runs once and is shared by every policy (and cached on the
    # context so later calls in the same session reuse it).
    profile = framework.analyze_resilience()
    context._profile = profile

    engine = CampaignEngine(
        context,
        jobs=jobs,
        store_base=campaign_dir,
        resume=resume,
        progress=progress,
        disk_cache_dir=disk_cache_dir,
        fat_batch=fat_batch,
    )
    campaigns: Dict[str, CampaignResult] = {}
    logger.info("fig3: retraining %d chips with reduce-max", len(chips))
    campaigns["reduce-max"] = engine.run(chips, framework.build_policy("max"))
    if include_reduce_mean:
        logger.info("fig3: retraining %d chips with reduce-mean", len(chips))
        campaigns["reduce-mean"] = engine.run(chips, framework.build_policy("mean"))
    for budget in budgets:
        logger.info("fig3: retraining %d chips with fixed budget %.3g epochs", len(chips), budget)
        campaign = engine.run(chips, FixedEpochPolicy(budget))
        campaigns[campaign.policy_name] = campaign

    return Fig3Result(
        campaigns=campaigns,
        target_accuracy=framework.target_accuracy,
        clean_accuracy=framework.clean_accuracy,
        population_fault_rates=chips.fault_rates(),
    )
