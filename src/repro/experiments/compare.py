"""Mitigation-strategy comparison experiment (``repro-reduce compare``).

Runs one faulty-chip population through K mitigation strategies (via
:func:`~repro.campaign.sweep.run_strategy_sweep`) and reduces the per-chip
results to a per-strategy comparison table: accuracy recovered, retraining
epochs spent, and the hardware-side overheads that the accuracy numbers alone
hide — the MAC-energy saving of clock-gated pruned weights
(:mod:`repro.accelerator.energy`) and the throughput cost of bypassing faulty
rows/columns (:func:`~repro.accelerator.bypass.bypass_slowdown`).  The
strategies on the Pareto front of (average epochs, % of chips meeting the
constraint) are reported via :mod:`repro.analysis.pareto`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.accelerator.bypass import bypass_slowdown
from repro.accelerator.energy import estimate_model_energy
from repro.analysis.pareto import pareto_mask
from repro.campaign.engine import PathLike
from repro.campaign.sweep import StrategySweepResult, run_strategy_sweep
from repro.core.chips import ChipPopulation
from repro.core.reporting import format_table
from repro.core.selection import FixedEpochPolicy, RetrainingPolicy
from repro.experiments.common import ExperimentContext
from repro.experiments.fig3 import build_population
from repro.mitigation.strategy import MitigationStrategy, resolve_strategy
from repro.utils.logging import get_logger

logger = get_logger("experiments.compare")


@dataclasses.dataclass
class CompareResult:
    """The per-strategy comparison table plus the underlying sweep."""

    sweep: StrategySweepResult
    rows: List[Dict[str, object]]

    @property
    def strategy_names(self) -> List[str]:
        return [str(row["strategy"]) for row in self.rows]

    def row(self, strategy: str) -> Dict[str, object]:
        for row in self.rows:
            if row["strategy"] == strategy:
                return row
        raise KeyError(f"unknown strategy {strategy!r}; available: {self.strategy_names}")

    def pareto_strategies(self) -> List[str]:
        """Strategies on the Pareto front of (avg epochs ↓, % meeting ↑)."""
        mask = pareto_mask(
            [float(row["average_epochs"]) for row in self.rows],
            [float(row["percent_meeting_constraint"]) for row in self.rows],
        )
        return [str(row["strategy"]) for row, keep in zip(self.rows, mask) if keep]

    def table(self) -> str:
        """The per-strategy comparison as a fixed-width text table."""
        headers = [
            "strategy",
            "avg epochs/chip",
            "% meeting",
            "mean acc before",
            "mean acc after",
            "acc recovered",
            "masked frac",
            "energy x",
            "slowdown x",
            "bypassed",
        ]
        body = [
            [
                str(row["strategy"]),
                f"{row['average_epochs']:.4f}",
                f"{row['percent_meeting_constraint']:.1f}",
                f"{row['mean_accuracy_before']:.4f}",
                f"{row['mean_accuracy_after']:.4f}",
                f"{row['mean_accuracy_recovered']:+.4f}",
                f"{row['mean_masked_fraction']:.4f}",
                f"{row['energy_ratio']:.3f}",
                f"{row['mean_slowdown']:.3f}",
                f"{row['bypassed_chips']}/{row['num_chips']}",
            ]
            for row in self.rows
        ]
        return format_table(headers, body)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_accuracy": self.sweep.target_accuracy,
            "clean_accuracy": self.sweep.clean_accuracy,
            "policy": self.sweep.policy_name,
            "strategies": self.rows,
            "pareto_strategies": self.pareto_strategies(),
            # Full per-chip rows per strategy, so a summary artifact suffices
            # to audit any cell of the comparison (and to diff runs bit for
            # bit without re-opening the campaign stores).
            "campaigns": {
                name: campaign.to_dict()
                for name, campaign in self.sweep.campaigns.items()
            },
        }


def _strategy_overheads(
    context: ExperimentContext,
    strategy: MitigationStrategy,
    population: ChipPopulation,
    masked_fractions: Sequence[float],
    baseline_nj: float,
    slowdown_by_chip: Dict[str, float],
) -> Dict[str, object]:
    """Energy ratio, timing slowdown and bypass feasibility for one strategy.

    Energy is the per-inference estimate on the full array, with the MAC
    energy of clamped weights gated away wherever the executed mitigation
    actually pruned (the FAP hardware clock-gates bypassed multipliers).
    Gating is decided *per chip*: pruning strategies gate every chip, and a
    retraining bypass strategy gates exactly its FAP+FAT fallback chips —
    bypassable chips prune nothing, and plain ``bypass``/``none`` chips are
    never gated.  The ratio is against the un-gated fault-free
    ``baseline_nj``.  The slowdown is averaged over the population:
    bypassable chips pay their shrunk-array latency ratio, everything else
    runs at full speed (1.0).  Per-chip slowdowns are memoized in
    ``slowdown_by_chip`` — feasibility and latency depend only on the chip's
    fault map, so every bypass strategy of a sweep shares them.
    """
    input_shape = context.bundle.input_shape
    slowdowns: List[float] = []
    gated_fractions: List[float] = []
    bypassed = 0
    for chip, masked_fraction in zip(population, masked_fractions):
        plan = strategy.bypass_plan(chip.fault_map)
        if plan is not None:
            bypassed += 1
            if chip.chip_id not in slowdown_by_chip:
                slowdown_by_chip[chip.chip_id] = bypass_slowdown(
                    context.model, chip.array(), input_shape
                )
            slowdowns.append(slowdown_by_chip[chip.chip_id])
            gated_fractions.append(0.0)  # nothing pruned on a bypassed chip
        else:
            slowdowns.append(1.0)
            gates = strategy.gates_pruned_macs_for(chip.fault_map)
            gated_fractions.append(float(masked_fraction) if gates else 0.0)
    strategy_nj = estimate_model_energy(
        context.model,
        context.array,
        input_shape,
        zero_weight_fraction=float(np.mean(gated_fractions)) if gated_fractions else 0.0,
    ).total_nj
    return {
        "energy_ratio": float(strategy_nj / baseline_nj) if baseline_nj else 1.0,
        "mean_slowdown": float(np.mean(slowdowns)) if slowdowns else 1.0,
        "bypassed_chips": bypassed,
    }


def run_compare(
    context: ExperimentContext,
    strategies: Union[str, Sequence[Union[str, MitigationStrategy]]],
    num_chips: Optional[int] = None,
    policy: Optional[RetrainingPolicy] = None,
    policy_name: str = "reduce-max",
    fixed_epochs: float = 0.5,
    population: Optional[ChipPopulation] = None,
    jobs: int = 1,
    campaign_dir: Optional[PathLike] = None,
    resume: bool = True,
    progress: bool = False,
    fat_batch: Optional[int] = None,
    disk_cache_dir: Optional[PathLike] = None,
    max_chunk_retries: Optional[int] = None,
    chunk_timeout: Optional[float] = None,
    chaos: Optional[str] = None,
    backend: Optional[str] = None,
    prefetch: bool = True,
    lowering_cache_mb: Optional[float] = None,
    listen: Optional[Tuple[str, int]] = None,
    workers: Optional[Sequence[Tuple[str, int]]] = None,
) -> CompareResult:
    """Run the multi-strategy comparison on the given context.

    ``policy`` overrides the Step-2 policy directly; otherwise it is built
    from ``policy_name`` (``reduce-max``/``reduce-mean`` need the Step-1
    profile, which is computed once and shared; ``fixed`` uses
    ``fixed_epochs``).  Every strategy's campaign is dispatched through the
    shared campaign engine, so ``jobs``, ``fat_batch``, resumable stores
    under ``campaign_dir`` and the fault-tolerance knobs
    (``max_chunk_retries``, ``chunk_timeout``, ``chaos``) apply per strategy,
    as does the compute ``backend`` the batched substrate replays through.
    """
    chips = population if population is not None else build_population(context, num_chips)
    if policy is None:
        if policy_name == "fixed":
            policy = FixedEpochPolicy(fixed_epochs)
        elif policy_name in ("reduce-max", "reduce-mean"):
            context.resilience_profile()
            policy = context.framework().build_policy(policy_name.split("-", 1)[1])
        else:
            raise ValueError(
                f"unknown policy {policy_name!r}; expected reduce-max, reduce-mean or fixed"
            )

    sweep = run_strategy_sweep(
        context,
        chips,
        policy,
        strategies,
        jobs=jobs,
        store_base=campaign_dir,
        resume=resume,
        progress=progress,
        fat_batch=fat_batch,
        disk_cache_dir=disk_cache_dir,
        max_chunk_retries=max_chunk_retries,
        chunk_timeout=chunk_timeout,
        chaos=chaos,
        backend=backend,
        prefetch=prefetch,
        lowering_cache_mb=lowering_cache_mb,
        listen=listen,
        workers=workers,
    )

    rows: List[Dict[str, object]] = []
    baseline_nj = estimate_model_energy(
        context.model, context.array, context.bundle.input_shape
    ).total_nj
    slowdown_by_chip: Dict[str, float] = {}
    for name, campaign in sweep.campaigns.items():
        strategy = resolve_strategy(name)
        recovered = [result.accuracy_recovered for result in campaign.results]
        before = [result.accuracy_before for result in campaign.results]
        masked = [result.masked_weight_fraction for result in campaign.results]
        mean_masked = float(np.mean(masked))
        row: Dict[str, object] = {
            "strategy": name,
            "num_chips": campaign.num_chips,
            "average_epochs": campaign.average_epochs,
            "total_epochs": campaign.total_epochs,
            "percent_meeting_constraint": campaign.percent_meeting_constraint,
            "mean_accuracy_before": float(np.mean(before)),
            "mean_accuracy_after": campaign.mean_accuracy,
            "worst_accuracy": campaign.worst_accuracy,
            "mean_accuracy_recovered": float(np.mean(recovered)),
            "mean_masked_fraction": mean_masked,
        }
        row.update(
            _strategy_overheads(
                context, strategy, chips, masked, baseline_nj, slowdown_by_chip
            )
        )
        rows.append(row)
    return CompareResult(sweep=sweep, rows=rows)
