"""Experiment context: dataset + pre-trained model + accelerator, with caching.

Every figure runner starts from the same ingredients (Fig. 1 inputs): a
pre-trained DNN, a dataset, a systolic array and an accuracy constraint.
``ExperimentContext.from_preset`` builds them once; pre-training results are
cached in memory (keyed by the preset) so that running several figure
benchmarks in one session does not repeat the expensive pre-training step.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.accelerator.systolic_array import SystolicArray
from repro.core.constraints import AccuracyConstraint
from repro.core.reduce import ReduceConfig, ReduceFramework
from repro.core.profiles import ResilienceProfile
from repro.data.synthetic import DatasetBundle, make_class_template_images
from repro.experiments.presets import ExperimentPreset
from repro.models.registry import build_model
from repro.nn.serialization import clone_state_dict
from repro.training import Trainer, evaluate_accuracy
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("experiments.common")

# In-memory cache of pre-trained contexts, keyed by a preset fingerprint.
_CONTEXT_CACHE: Dict[str, "ExperimentContext"] = {}


def _preset_fingerprint(preset: ExperimentPreset) -> str:
    from repro.utils.config import config_to_dict
    import hashlib
    import json

    payload = json.dumps(config_to_dict(preset), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_dataset(preset: ExperimentPreset) -> DatasetBundle:
    """Build the synthetic dataset described by the preset."""
    spec = preset.dataset
    return make_class_template_images(
        num_classes=spec.num_classes,
        train_per_class=spec.train_per_class,
        test_per_class=spec.test_per_class,
        image_size=spec.image_size,
        channels=spec.channels,
        noise_std=spec.noise_std,
        shift_pixels=spec.shift_pixels,
        seed=spec.seed,
        name=f"{preset.name}-synthetic",
    )


@dataclasses.dataclass
class ExperimentContext:
    """The shared inputs of every experiment (Fig. 1 of the paper)."""

    preset: ExperimentPreset
    bundle: DatasetBundle
    model: nn.Module
    pretrained_state: Dict[str, np.ndarray]
    array: SystolicArray
    clean_accuracy: float
    _profile: Optional[ResilienceProfile] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_preset(cls, preset: ExperimentPreset, use_cache: bool = True) -> "ExperimentContext":
        """Build (or fetch from the in-memory cache) the context for a preset."""
        fingerprint = _preset_fingerprint(preset)
        if use_cache and fingerprint in _CONTEXT_CACHE:
            return _CONTEXT_CACHE[fingerprint]

        bundle = build_dataset(preset)
        model = build_model(
            preset.model.name,
            input_shape=bundle.input_shape,
            num_classes=bundle.num_classes,
            seed=preset.model.seed,
            **preset.model.kwargs,
        )
        logger.info("pre-training %s on %s for %.1f epochs", preset.model.name, bundle.name, preset.pretrain_epochs)
        trainer = Trainer(model, bundle.train, bundle.test, config=preset.pretrain)
        trainer.train(preset.pretrain_epochs, include_initial=False)
        clean_accuracy = evaluate_accuracy(model, bundle.test)
        context = cls(
            preset=preset,
            bundle=bundle,
            model=model,
            pretrained_state=clone_state_dict(model.state_dict()),
            array=SystolicArray(preset.array_rows, preset.array_cols),
            clean_accuracy=clean_accuracy,
        )
        if use_cache:
            _CONTEXT_CACHE[fingerprint] = context
        return context

    # -- derived objects -----------------------------------------------------------

    def constraint(self) -> AccuracyConstraint:
        return self.preset.constraint()

    def target_accuracy(self) -> float:
        return self.constraint().resolve(self.clean_accuracy)

    def reduce_config(self) -> ReduceConfig:
        return ReduceConfig(
            constraint=self.constraint(),
            resilience=self.preset.resilience_config(),
            retraining=self.preset.retraining,
        )

    def framework(self) -> ReduceFramework:
        """A fresh :class:`ReduceFramework` over this context's inputs."""
        framework = ReduceFramework(
            self.model,
            self.pretrained_state,
            self.bundle,
            self.array,
            config=self.reduce_config(),
        )
        if self._profile is not None:
            framework.set_profile(self._profile)
        return framework

    def resilience_profile(self, force: bool = False) -> ResilienceProfile:
        """The (cached) Step-1 resilience profile for this context."""
        if self._profile is None or force:
            framework = ReduceFramework(
                self.model,
                self.pretrained_state,
                self.bundle,
                self.array,
                config=self.reduce_config(),
            )
            self._profile = framework.analyze_resilience()
        return self._profile

    def restore_pretrained(self) -> None:
        """Reset the shared model to the pre-trained weights."""
        self.model.load_state_dict(self.pretrained_state)


def clear_context_cache() -> None:
    """Drop every cached experiment context (mainly for tests)."""
    _CONTEXT_CACHE.clear()
