"""Experiment context: dataset + pre-trained model + accelerator, with caching.

Every figure runner starts from the same ingredients (Fig. 1 inputs): a
pre-trained DNN, a dataset, a systolic array and an accuracy constraint.
``ExperimentContext.from_preset`` builds them once; pre-training results are
cached in memory (keyed by the preset) so that running several figure
benchmarks in one session does not repeat the expensive pre-training step.

An optional *on-disk* cache layers underneath the in-memory one: when a
cache directory is configured (``disk_cache_dir=`` argument,
:func:`set_disk_cache_dir` or the ``REPRO_CACHE_DIR`` environment variable),
the pre-trained state dict and clean accuracy are persisted per preset
fingerprint, so repeated CLI runs — and campaign workers spawned in fresh
processes — skip pre-training entirely.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import nn
from repro.accelerator.batched import EvalPipeline
from repro.accelerator.systolic_array import SystolicArray
from repro.core.constraints import AccuracyConstraint
from repro.core.reduce import ReduceConfig, ReduceFramework
from repro.core.profiles import ResilienceProfile
from repro.data.synthetic import DatasetBundle, make_class_template_images
from repro.experiments.presets import ExperimentPreset
from repro.models.registry import build_model
from repro.nn.serialization import clone_state_dict
from repro.training import Trainer, evaluate_accuracy
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("experiments.common")

# In-memory cache of pre-trained contexts, keyed by a preset fingerprint.
_CONTEXT_CACHE: Dict[str, "ExperimentContext"] = {}

# On-disk cache of pre-trained state dicts (same fingerprint key); resolved
# from the explicit argument, this module default, or REPRO_CACHE_DIR.
_DISK_CACHE_ENV = "REPRO_CACHE_DIR"
_DISK_CACHE_DIR: Optional[Path] = None


# Version of the training-substrate numerics baked into cached pre-trained
# states.  Bump whenever a change shifts training trajectories bit-for-bit
# (the campaign STORE_FORMAT_VERSION guards recorded *results* the same way;
# this guards the pre-trained *weights* they start from, so a warm disk
# cache from an older build can never seed new-version campaigns).
# Version 2: fused batch-norm backward + C-contiguous materialisation of
# degenerate 1x1 im2col lowerings (changes vgg-style pre-training).
TRAINING_NUMERICS_VERSION = 2


def preset_fingerprint(preset: ExperimentPreset) -> str:
    """Stable content fingerprint of a preset (cache key for its context).

    Includes :data:`TRAINING_NUMERICS_VERSION`, so pre-trained states cached
    on disk under one substrate-numerics version are never reused once the
    training arithmetic changes.
    """
    from repro.utils.config import config_to_dict
    import hashlib
    import json

    payload = json.dumps(
        {"numerics": TRAINING_NUMERICS_VERSION, "preset": config_to_dict(preset)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# Backwards-compatible alias (the fingerprint is public API now that the
# campaign store and disk cache key on it).
_preset_fingerprint = preset_fingerprint


def set_disk_cache_dir(path: Optional[Union[str, Path]]) -> None:
    """Set (or clear, with ``None``) the default on-disk context cache."""
    global _DISK_CACHE_DIR
    _DISK_CACHE_DIR = Path(path) if path is not None else None


def resolve_disk_cache_dir(explicit: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """The disk cache directory in effect: argument, module default, or env."""
    if explicit is not None:
        return Path(explicit)
    if _DISK_CACHE_DIR is not None:
        return _DISK_CACHE_DIR
    env = os.environ.get(_DISK_CACHE_ENV)
    return Path(env) if env else None


def _disk_cache_paths(cache_dir: Path, fingerprint: str) -> Tuple[Path, Path]:
    return cache_dir / f"{fingerprint}.npz", cache_dir / f"{fingerprint}.json"


def _load_pretrained_from_disk(
    cache_dir: Path, fingerprint: str
) -> Optional[Tuple[Dict[str, np.ndarray], float]]:
    """Load a cached (state dict, clean accuracy) pair, or None on any miss."""
    import zipfile

    from repro.nn.serialization import load_checkpoint
    from repro.utils.config import load_json

    state_path, meta_path = _disk_cache_paths(cache_dir, fingerprint)
    if not state_path.exists() or not meta_path.exists():
        return None
    try:
        state = load_checkpoint(state_path)
        meta = load_json(meta_path)
        clean_accuracy = float(meta["clean_accuracy"])
    except (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile):
        logger.warning("ignoring unreadable disk-cache entry %s", state_path)
        return None
    return state, clean_accuracy


def _save_pretrained_to_disk(
    cache_dir: Path,
    fingerprint: str,
    preset: ExperimentPreset,
    state: Dict[str, np.ndarray],
    clean_accuracy: float,
) -> None:
    from repro.nn.serialization import save_checkpoint
    from repro.utils.config import save_json

    state_path, meta_path = _disk_cache_paths(cache_dir, fingerprint)
    # Write-then-rename so a killed process (or a concurrent worker) never
    # leaves a torn archive at the final path.
    tmp_path = state_path.with_name(f"{state_path.stem}.{os.getpid()}.tmp.npz")
    save_checkpoint(state, tmp_path)
    os.replace(tmp_path, state_path)
    save_json(
        {
            "preset": preset.name,
            "fingerprint": fingerprint,
            "clean_accuracy": clean_accuracy,
        },
        meta_path,
        atomic=True,
    )
    logger.info("cached pre-trained state for preset %r at %s", preset.name, state_path)


def build_dataset(preset: ExperimentPreset) -> DatasetBundle:
    """Build the synthetic dataset described by the preset."""
    spec = preset.dataset
    return make_class_template_images(
        num_classes=spec.num_classes,
        train_per_class=spec.train_per_class,
        test_per_class=spec.test_per_class,
        image_size=spec.image_size,
        channels=spec.channels,
        noise_std=spec.noise_std,
        shift_pixels=spec.shift_pixels,
        seed=spec.seed,
        name=f"{preset.name}-synthetic",
    )


@dataclasses.dataclass
class ExperimentContext:
    """The shared inputs of every experiment (Fig. 1 of the paper)."""

    preset: ExperimentPreset
    bundle: DatasetBundle
    model: nn.Module
    pretrained_state: Dict[str, np.ndarray]
    array: SystolicArray
    clean_accuracy: float
    _profile: Optional[ResilienceProfile] = None
    # Lazily-created pipelined-eval configuration (prefetch, widened
    # multi-checkpoint GEMMs, shared lowering cache).  It lives on the
    # context — not on a framework — because :meth:`framework` returns a
    # fresh framework per call: sharing the pipeline is what lets triage,
    # campaign chunks and successive sweep arms reuse each other's eval-batch
    # lowerings.
    _eval_pipeline: Optional[EvalPipeline] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_preset(
        cls,
        preset: ExperimentPreset,
        use_cache: bool = True,
        disk_cache_dir: Optional[Union[str, Path]] = None,
    ) -> "ExperimentContext":
        """Build (or fetch from the caches) the context for a preset.

        ``use_cache`` governs the in-memory cache; the on-disk cache of
        pre-trained state dicts is consulted whenever a cache directory is
        configured (see :func:`resolve_disk_cache_dir`).
        """
        fingerprint = preset_fingerprint(preset)
        if use_cache and fingerprint in _CONTEXT_CACHE:
            return _CONTEXT_CACHE[fingerprint]

        bundle = build_dataset(preset)
        model = build_model(
            preset.model.name,
            input_shape=bundle.input_shape,
            num_classes=bundle.num_classes,
            seed=preset.model.seed,
            **preset.model.kwargs,
        )
        cache_dir = resolve_disk_cache_dir(disk_cache_dir)
        cached = _load_pretrained_from_disk(cache_dir, fingerprint) if cache_dir else None
        if cached is not None:
            state, clean_accuracy = cached
            model.load_state_dict(state)
            logger.info(
                "loaded pre-trained %s for preset %r from disk cache (skipping pre-training)",
                preset.model.name,
                preset.name,
            )
        else:
            logger.info("pre-training %s on %s for %.1f epochs", preset.model.name, bundle.name, preset.pretrain_epochs)
            trainer = Trainer(model, bundle.train, bundle.test, config=preset.pretrain)
            trainer.train(preset.pretrain_epochs, include_initial=False)
            clean_accuracy = evaluate_accuracy(model, bundle.test)
            if cache_dir is not None:
                _save_pretrained_to_disk(
                    cache_dir, fingerprint, preset, model.state_dict(), clean_accuracy
                )
        context = cls(
            preset=preset,
            bundle=bundle,
            model=model,
            pretrained_state=clone_state_dict(model.state_dict()),
            array=SystolicArray(preset.array_rows, preset.array_cols),
            clean_accuracy=clean_accuracy,
        )
        if use_cache:
            _CONTEXT_CACHE[fingerprint] = context
        return context

    # -- derived objects -----------------------------------------------------------

    def constraint(self) -> AccuracyConstraint:
        return self.preset.constraint()

    def target_accuracy(self) -> float:
        return self.constraint().resolve(self.clean_accuracy)

    def reduce_config(self) -> ReduceConfig:
        return ReduceConfig(
            constraint=self.constraint(),
            resilience=self.preset.resilience_config(),
            retraining=self.preset.retraining,
        )

    @property
    def eval_pipeline(self) -> EvalPipeline:
        """The context-wide pipelined-eval configuration (created on demand)."""
        if self._eval_pipeline is None:
            self._eval_pipeline = EvalPipeline()
        return self._eval_pipeline

    def configure_eval_pipeline(
        self,
        prefetch: Optional[bool] = None,
        widened_eval: Optional[bool] = None,
        lowering_cache_mb: Optional[float] = None,
    ) -> EvalPipeline:
        """Apply CLI/engine eval-pipeline overrides for this context."""
        return self.eval_pipeline.configure(
            prefetch=prefetch,
            widened_eval=widened_eval,
            lowering_cache_mb=lowering_cache_mb,
        )

    def framework(self) -> ReduceFramework:
        """A fresh :class:`ReduceFramework` over this context's inputs."""
        framework = ReduceFramework(
            self.model,
            self.pretrained_state,
            self.bundle,
            self.array,
            config=self.reduce_config(),
            eval_pipeline=self.eval_pipeline,
        )
        if self._profile is not None:
            framework.set_profile(self._profile)
        else:
            # Same model, weights and test set as from_preset's evaluation, so
            # seeding it here skips a redundant full test-set pass (e.g. for
            # fixed-policy campaigns that never run Step 1).
            framework.set_clean_accuracy(self.clean_accuracy)
        return framework

    def resilience_profile(self, force: bool = False) -> ResilienceProfile:
        """The (cached) Step-1 resilience profile for this context."""
        if self._profile is None or force:
            framework = ReduceFramework(
                self.model,
                self.pretrained_state,
                self.bundle,
                self.array,
                config=self.reduce_config(),
            )
            self._profile = framework.analyze_resilience()
        return self._profile

    def restore_pretrained(self) -> None:
        """Reset the shared model to the pre-trained weights."""
        self.model.load_state_dict(self.pretrained_state)


def clear_context_cache() -> None:
    """Drop every cached experiment context (mainly for tests)."""
    _CONTEXT_CACHE.clear()
