"""Figure-level experiment runners and presets (see DESIGN.md §4)."""

from repro.experiments.presets import (
    DatasetSpec,
    ModelSpec,
    ExperimentPreset,
    smoke_preset,
    fast_preset,
    paper_preset,
    get_preset,
    available_presets,
)
from repro.experiments.common import (
    ExperimentContext,
    build_dataset,
    clear_context_cache,
    preset_fingerprint,
    resolve_disk_cache_dir,
    set_disk_cache_dir,
)
from repro.experiments.fig2 import Fig2aResult, Fig2bResult, run_fig2a, run_fig2b
from repro.experiments.fig3 import Fig3Result, build_population, run_fig3
from repro.experiments.compare import CompareResult, run_compare

__all__ = [
    "DatasetSpec",
    "ModelSpec",
    "ExperimentPreset",
    "smoke_preset",
    "fast_preset",
    "paper_preset",
    "get_preset",
    "available_presets",
    "ExperimentContext",
    "build_dataset",
    "clear_context_cache",
    "preset_fingerprint",
    "resolve_disk_cache_dir",
    "set_disk_cache_dir",
    "Fig2aResult",
    "Fig2bResult",
    "run_fig2a",
    "run_fig2b",
    "Fig3Result",
    "build_population",
    "run_fig3",
    "CompareResult",
    "run_compare",
]
