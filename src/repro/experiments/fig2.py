"""Runners reproducing Fig. 2 of the paper (resilience trends).

* Fig. 2a — accuracy vs fault rate for several fixed retraining amounts
  (including "no retraining" and a tiny fractional amount).
* Fig. 2b — number of retraining epochs required to reach each target
  accuracy as a function of fault rate, with min/mean/max over the
  fault-map trials (the error bars of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.core.profiles import ResilienceProfile
from repro.core.resilience import ResilienceAnalyzer, ResilienceConfig
from repro.experiments.common import ExperimentContext
from repro.utils.logging import get_logger

logger = get_logger("experiments.fig2")


# ---------------------------------------------------------------------------
# Fig. 2a
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Fig2aResult:
    """Accuracy-vs-fault-rate curves at fixed retraining amounts."""

    fault_rates: np.ndarray
    retraining_amounts: np.ndarray  # includes 0.0 ("no retraining")
    mean_accuracy: np.ndarray  # (amounts, rates)
    min_accuracy: np.ndarray
    max_accuracy: np.ndarray
    clean_accuracy: float
    profile: ResilienceProfile

    def curve(self, epochs: float) -> np.ndarray:
        """Mean-accuracy curve for the retraining amount closest to ``epochs``."""
        index = int(np.argmin(np.abs(self.retraining_amounts - epochs)))
        return self.mean_accuracy[index]

    def series(self) -> Dict[str, np.ndarray]:
        labels = {}
        for index, amount in enumerate(self.retraining_amounts):
            label = "no retraining" if amount == 0 else f"{amount:g} epochs"
            labels[label] = self.mean_accuracy[index]
        return labels

    def rows(self) -> List[Dict[str, float]]:
        """Flat rows (one per curve point) for tabular output."""
        rows = []
        for index, amount in enumerate(self.retraining_amounts):
            for rate_index, rate in enumerate(self.fault_rates):
                rows.append(
                    {
                        "retraining_epochs": float(amount),
                        "fault_rate": float(rate),
                        "mean_accuracy": float(self.mean_accuracy[index, rate_index]),
                        "min_accuracy": float(self.min_accuracy[index, rate_index]),
                        "max_accuracy": float(self.max_accuracy[index, rate_index]),
                    }
                )
        return rows

    def render(self) -> str:
        return line_plot(
            self.fault_rates,
            {name: values for name, values in self.series().items()},
            title="Fig. 2a analogue: accuracy vs fault rate at fixed retraining amounts",
            x_label="fault rate",
            y_label="accuracy",
        )


def run_fig2a(
    context: ExperimentContext,
    fault_rates: Optional[Sequence[float]] = None,
    retraining_amounts: Optional[Sequence[float]] = None,
    trials_per_rate: Optional[int] = None,
) -> Fig2aResult:
    """Reproduce Fig. 2a on the given experiment context.

    The retraining amounts default to the preset's ``fig2a_epochs`` (the
    paper uses 0, 0.05, 5 and 10 epochs); 0 epochs ("no retraining") is always
    included because the profile records the post-FAP accuracy.
    """
    preset = context.preset
    rates = tuple(fault_rates if fault_rates is not None else preset.fig2a_fault_rates)
    amounts = tuple(retraining_amounts if retraining_amounts is not None else preset.fig2a_epochs)
    trials = trials_per_rate if trials_per_rate is not None else preset.trials_per_rate

    config = ResilienceConfig(
        fault_rates=rates,
        epoch_checkpoints=tuple(sorted(set(float(a) for a in amounts if a > 0))),
        trials_per_rate=trials,
        training=preset.retraining,
        seed=preset.seed,
    )
    analyzer = ResilienceAnalyzer(
        context.model, context.pretrained_state, context.bundle, context.array, config
    )
    profile = analyzer.run()

    all_amounts = np.asarray(sorted(set([0.0] + [float(a) for a in amounts])), dtype=float)
    mean = np.stack([profile.accuracy_vs_fault_rate(a, "mean") for a in all_amounts])
    minimum = np.stack([profile.accuracy_vs_fault_rate(a, "min") for a in all_amounts])
    maximum = np.stack([profile.accuracy_vs_fault_rate(a, "max") for a in all_amounts])
    return Fig2aResult(
        fault_rates=np.asarray(rates, dtype=float),
        retraining_amounts=all_amounts,
        mean_accuracy=mean,
        min_accuracy=minimum,
        max_accuracy=maximum,
        clean_accuracy=profile.clean_accuracy,
        profile=profile,
    )


# ---------------------------------------------------------------------------
# Fig. 2b
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Fig2bResult:
    """Epochs required to reach each target accuracy, vs fault rate."""

    fault_rates: np.ndarray
    target_accuracies: np.ndarray
    mean_epochs: np.ndarray  # (targets, rates)
    min_epochs: np.ndarray
    max_epochs: np.ndarray
    clean_accuracy: float
    profile: ResilienceProfile

    def series(self, statistic: str = "max") -> Dict[str, np.ndarray]:
        source = {"mean": self.mean_epochs, "min": self.min_epochs, "max": self.max_epochs}[statistic]
        return {
            f"target {target:.1%}": source[index]
            for index, target in enumerate(self.target_accuracies)
        }

    def rows(self) -> List[Dict[str, float]]:
        rows = []
        for index, target in enumerate(self.target_accuracies):
            for rate_index, rate in enumerate(self.fault_rates):
                rows.append(
                    {
                        "target_accuracy": float(target),
                        "fault_rate": float(rate),
                        "mean_epochs": float(self.mean_epochs[index, rate_index]),
                        "min_epochs": float(self.min_epochs[index, rate_index]),
                        "max_epochs": float(self.max_epochs[index, rate_index]),
                    }
                )
        return rows

    def render(self) -> str:
        return line_plot(
            self.fault_rates,
            {name: values for name, values in self.series("max").items()},
            title="Fig. 2b analogue: retraining epochs required vs fault rate (max over trials)",
            x_label="fault rate",
            y_label="epochs required",
        )


def run_fig2b(
    context: ExperimentContext,
    accuracy_drops: Optional[Sequence[float]] = None,
    profile: Optional[ResilienceProfile] = None,
) -> Fig2bResult:
    """Reproduce Fig. 2b from the context's resilience profile.

    ``accuracy_drops`` are target accuracies expressed as drops from the clean
    accuracy (the paper's absolute 90/91/92 % targets correspond to roughly
    3/2/1 points below VGG11's clean accuracy on CIFAR-10).
    """
    preset = context.preset
    drops = tuple(accuracy_drops if accuracy_drops is not None else preset.fig2b_accuracy_drops)
    resolved_profile = profile if profile is not None else context.resilience_profile()
    targets = np.asarray(
        [max(0.0, resolved_profile.clean_accuracy - drop) for drop in drops], dtype=float
    )

    def curves(statistic: str) -> np.ndarray:
        return np.stack(
            [
                np.asarray(
                    resolved_profile.epochs_required_curve(target, statistic=statistic),
                    dtype=float,
                )
                for target in targets
            ]
        )

    return Fig2bResult(
        fault_rates=np.asarray(resolved_profile.fault_rates, dtype=float),
        target_accuracies=targets,
        mean_epochs=curves("mean"),
        min_epochs=curves("min"),
        max_epochs=curves("max"),
        clean_accuracy=resolved_profile.clean_accuracy,
        profile=resolved_profile,
    )
