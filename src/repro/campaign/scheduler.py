"""Distributed campaign scheduler: coordinator + socket worker client.

This module generalises the supervised process pool behind a transport: the
:class:`CampaignCoordinator` serves plan chunks (the exact
:func:`~repro.campaign.jobs.plan_job_chunks` output the local executor uses)
to workers that joined over TCP sockets, and :func:`run_worker` is the whole
worker side — dial (or accept), handshake, build the experiment context from
the coordinator's serialized preset, then pull chunks until shutdown.

Work-stealing claims
--------------------
Chunks are *pulled*, never pushed blindly: a worker sends a ``claim`` frame
whenever it is idle (after the campaign announcement and after every
result/error), and the coordinator answers the claim with the next ready
chunk.  A fast worker therefore claims more chunks and a slow worker fewer —
load balance falls out of the protocol with no rate estimation — and a
worker that dies mid-chunk simply stops claiming while its in-flight chunk
is reassigned.

Fault tolerance
---------------
All recovery decisions run through the shared
:class:`~repro.campaign.supervisor.ChunkLedger` — the same retry/backoff/
quarantine state machine the local pool uses.  A worker is *lost* when its
socket drops, a frame is malformed, its heartbeats go stale, or its chunk
outlives the (fixed or adaptive) deadline; the in-flight chunk is failed
into the ledger, which retries it on the next claiming worker or
quarantines it past the retry cap.  Because every chunk commits through the
parent's content-addressed store and the retraining seed is
population-shared, a re-executed chunk is bit-identical no matter which
host runs it — a distributed campaign resumes and fingerprints exactly like
a local one.

Observability
-------------
On ``campaign_end`` every worker ships its per-``(host, pid)`` trace shard
and metrics snapshot home over the same socket; the coordinator writes them
into the campaign's trace directory, so ``repro-reduce trace`` attributes
cross-host time with no shared filesystem.
"""

from __future__ import annotations

import dataclasses
import os
import selectors
import socket
import tempfile
import threading
import time
from pathlib import Path
from queue import Empty, Queue
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import ChipJob, execute_job_chunk
from repro.campaign.supervisor import (
    ChunkCommitSequencer,
    ChunkFailure,
    ChunkLedger,
    SupervisorConfig,
)
from repro.campaign.transport import (
    MSG_CAMPAIGN,
    MSG_CAMPAIGN_END,
    MSG_CHUNK,
    MSG_CLAIM,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_REJECT,
    MSG_RESULT,
    MSG_SHARDS,
    MSG_SHUTDOWN,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    HandshakeError,
    TransportError,
    format_address,
    recv_frame,
    send_frame,
    validate_hello,
    worker_hello,
)
from repro.core.reduce import ChipRetrainingResult
from repro.observability import metrics, trace
from repro.observability.tracer import read_shard
from repro.utils.config import config_from_dict, config_to_dict
from repro.utils.hostinfo import host_tag
from repro.utils.logging import get_logger

logger = get_logger("campaign.scheduler")


class SchedulerError(TransportError):
    """The coordinator cannot make progress (e.g. no worker ever joined)."""


class WorkerRejected(HandshakeError):
    """The coordinator rejected this worker's hello."""


@dataclasses.dataclass
class SchedulerConfig:
    """Transport-level knobs of the coordinator (and its worker client).

    The chunk retry/deadline policy is *not* here — that lives in
    :class:`~repro.campaign.supervisor.SupervisorConfig` and is shared with
    the local executor.  These knobs only govern the sockets: how often
    workers beat, when silence counts as death, how long handshakes and
    shard collection may take, and how long the coordinator waits for a
    first worker before declaring the campaign stuck.
    """

    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 60.0
    handshake_timeout: float = 60.0
    # Building a context on a cold worker can legitimately take minutes
    # (pre-training); the ready deadline is generous by default.
    ready_timeout: float = 3600.0
    shard_grace: float = 30.0
    no_worker_timeout: float = 600.0
    poll_interval: float = 0.05
    dial_retry_interval: float = 0.5
    dial_timeout: float = 60.0
    send_timeout: float = 30.0


class _WorkerLink:
    """Coordinator-side state of one ready (post-handshake) worker."""

    __slots__ = (
        "worker_id", "sock", "decoder", "host", "pid", "claimed",
        "chunk_index", "attempt", "dispatched_at", "last_seen",
        "shards_campaign",
    )

    def __init__(
        self, worker_id: int, sock: socket.socket, host: str, pid: int
    ) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.decoder = FrameDecoder()
        self.host = host
        self.pid = pid
        self.claimed = False
        self.chunk_index: Optional[int] = None
        self.attempt = 0
        self.dispatched_at = 0.0
        self.last_seen = time.monotonic()
        self.shards_campaign = -1

    @property
    def label(self) -> str:
        return f"{self.host}:{self.pid}"


class CampaignCoordinator:
    """Serve plan chunks to socket workers via work-stealing claims.

    The coordinator always listens (an ephemeral loopback port unless an
    explicit ``listen`` address is given) so local socket workers and
    late-joining remote workers can dial in at any time, and additionally
    dials every address in ``connect`` (the ``--workers host:port,…`` mode,
    where workers run ``repro-reduce worker --listen PORT``).  Handshakes
    run on background threads — a joining worker builds its context while
    the campaign is already executing — and ready workers are handed to the
    event loop through a queue.  :meth:`run_plan` runs the event loop on
    the *calling* thread, so the engine's ``record_chunk`` (store append +
    fsync) executes exactly where the local executor runs it.
    """

    def __init__(
        self,
        preset,
        listen: Optional[Tuple[str, int]] = None,
        connect: Sequence[Tuple[str, int]] = (),
        backend: Optional[str] = None,
        fat_batch: int = 8,
        prefetch: bool = True,
        lowering_cache_mb: Optional[float] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
        config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.preset_name = str(preset.name)
        self._preset_dict = config_to_dict(preset)
        self.backend = backend
        self.fat_batch = int(fat_batch)
        self.prefetch = bool(prefetch)
        self.lowering_cache_mb = lowering_cache_mb
        self.supervisor_config = (
            supervisor_config if supervisor_config is not None else SupervisorConfig()
        )
        self.config = config if config is not None else SchedulerConfig()
        self._connect = [tuple(address) for address in connect]
        self._closed = False
        self._lock = threading.Lock()
        self._pending_handshakes = 0
        self._next_worker_id = 0
        self._campaign_seq = 0
        self._ready_queue: "Queue[_WorkerLink]" = Queue()
        self._links: Dict[int, _WorkerLink] = {}
        self._selector = selectors.DefaultSelector()
        self._sequencer: Optional[ChunkCommitSequencer] = None
        self._threads: List[threading.Thread] = []

        bind_address = listen if listen is not None else ("127.0.0.1", 0)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(bind_address)
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        accept_thread = threading.Thread(
            target=self._accept_loop, name="campaign-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        for address in self._connect:
            dial_thread = threading.Thread(
                target=self._dial,
                args=(tuple(address),),
                name=f"campaign-dial-{format_address(address)}",
                daemon=True,
            )
            dial_thread.start()
            self._threads.append(dial_thread)
        logger.info(
            "coordinator listening on %s (dialing %d worker address(es))",
            format_address(self.address),
            len(self._connect),
        )

    # -- join path (background threads) ---------------------------------------

    def worker_hint(self) -> int:
        """How many socket workers exist or are expected (for plan sizing)."""
        with self._lock:
            pending = self._pending_handshakes
        return max(
            len(self._links) + self._ready_queue.qsize() + pending,
            len(self._connect),
        )

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            self._begin_handshake(sock, f"{peer[0]}:{peer[1]}")

    def _dial(self, address: Tuple[str, int]) -> None:
        deadline = time.monotonic() + self.config.dial_timeout
        with self._lock:
            self._pending_handshakes += 1
        try:
            while not self._closed:
                try:
                    sock = socket.create_connection(address, timeout=5.0)
                except OSError:
                    if time.monotonic() >= deadline:
                        logger.warning(
                            "could not reach worker at %s within %.0fs",
                            format_address(address),
                            self.config.dial_timeout,
                        )
                        return
                    time.sleep(self.config.dial_retry_interval)
                    continue
                self._begin_handshake(sock, format_address(address), counted=True)
                return
        finally:
            with self._lock:
                self._pending_handshakes -= 1

    def _begin_handshake(
        self, sock: socket.socket, peer: str, counted: bool = False
    ) -> None:
        if not counted:
            with self._lock:
                self._pending_handshakes += 1
        thread = threading.Thread(
            target=self._handshake,
            args=(sock, peer, counted),
            name=f"campaign-handshake-{peer}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)

    def _handshake(self, sock: socket.socket, peer: str, counted: bool) -> None:
        """Hello/welcome/ready exchange; hands ready links to the event loop."""
        try:
            try:
                sock.settimeout(self.config.handshake_timeout)
                hello = recv_frame(sock)
                if hello is None:
                    raise HandshakeError("peer closed before hello")
                reason = validate_hello(hello, self.backend, self.preset_name)
                if reason is not None:
                    logger.warning("rejecting worker %s: %s", peer, reason)
                    send_frame(sock, {"type": MSG_REJECT, "reason": reason})
                    sock.close()
                    return
                with self._lock:
                    worker_id = self._next_worker_id
                    self._next_worker_id += 1
                send_frame(
                    sock,
                    {
                        "type": MSG_WELCOME,
                        "protocol": PROTOCOL_VERSION,
                        "worker_id": worker_id,
                        "preset": self._preset_dict,
                        "preset_name": self.preset_name,
                        "backend": self.backend,
                        "fat_batch": self.fat_batch,
                        "prefetch": self.prefetch,
                        "lowering_cache_mb": self.lowering_cache_mb,
                        "trace": bool(trace.enabled),
                        "metrics": bool(metrics.enabled),
                        "heartbeat_interval": self.config.heartbeat_interval,
                    },
                )
                # The worker now builds its context (possibly minutes on a
                # cold cache); heartbeats may arrive before the ready frame.
                sock.settimeout(self.config.ready_timeout)
                while True:
                    message = recv_frame(sock)
                    if message is None:
                        raise HandshakeError("peer closed before ready")
                    if message.get("type") == MSG_HEARTBEAT:
                        continue
                    if message.get("type") == MSG_READY:
                        break
                    raise HandshakeError(
                        f"expected ready, got {message.get('type')!r}"
                    )
                link = _WorkerLink(
                    worker_id,
                    sock,
                    host=str(hello.get("host", peer)),
                    pid=int(hello.get("pid", 0)),
                )
                sock.settimeout(self.config.send_timeout)
                logger.info(
                    "worker %d (%s) joined from %s", worker_id, link.label, peer
                )
                metrics.counter("campaign.workers_joined").inc()
                self._ready_queue.put(link)
            except (TransportError, OSError, ValueError) as error:
                logger.warning("handshake with %s failed: %s", peer, error)
                try:
                    sock.close()
                except OSError:
                    pass
        finally:
            if not counted:
                with self._lock:
                    self._pending_handshakes -= 1

    # -- event loop (caller thread) -------------------------------------------

    def run_plan(
        self,
        plan: Sequence[List[ChipJob]],
        record_chunk: Callable[[Sequence[ChipRetrainingResult]], None],
        strategy: Optional[str] = None,
    ) -> List[ChunkFailure]:
        """Execute one campaign plan over the joined workers.

        Blocks until every chunk is done or quarantined; returns the
        quarantine failures exactly like
        :meth:`~repro.campaign.supervisor.SupervisingExecutor.run`.
        """
        if self._closed:
            raise SchedulerError("coordinator is closed")
        ledger = ChunkLedger(plan, self.supervisor_config)
        # One sequencer per campaign, owned by this (single-threaded) event
        # loop: chunks complete in claim order across workers, but the store
        # must commit them in plan order for serial byte-identity.
        self._sequencer = ChunkCommitSequencer(len(plan), record_chunk)
        self._campaign_seq += 1
        announcement = {
            "type": MSG_CAMPAIGN,
            "campaign_id": self._campaign_seq,
            "strategy": strategy,
            "fat_batch": self.fat_batch,
        }
        now = time.monotonic()
        for link in list(self._links.values()):
            link.claimed = False
            link.chunk_index = None  # stale cross-campaign results are dropped
            self._send(link, announcement, ledger, now)
        last_progress = time.monotonic()
        while ledger.outstanding():
            if self._admit_ready(announcement, ledger):
                last_progress = time.monotonic()
            now = time.monotonic()
            self._dispatch(ledger, now)
            events = self._selector.select(timeout=self.config.poll_interval)
            now = time.monotonic()
            for key, _ in events:
                self._service(key.data, ledger, now)
            now = time.monotonic()
            self._check_health(ledger, now)
            with self._lock:
                pending = self._pending_handshakes
            if self._links or pending or not self._ready_queue.empty():
                last_progress = now
            elif now - last_progress > self.config.no_worker_timeout:
                raise SchedulerError(
                    f"no workers available for {self.config.no_worker_timeout:.0f}s "
                    f"with {ledger.outstanding()} chunk(s) outstanding "
                    f"(listening on {format_address(self.address)})"
                )
        self._collect_shards(ledger)
        self._sequencer = None
        return ledger.failures

    def _admit_ready(self, announcement: Dict[str, Any], ledger: ChunkLedger) -> bool:
        admitted = False
        while True:
            try:
                link = self._ready_queue.get_nowait()
            except Empty:
                return admitted
            self._links[link.worker_id] = link
            self._selector.register(link.sock, selectors.EVENT_READ, data=link)
            link.last_seen = time.monotonic()
            self._send(link, announcement, ledger, link.last_seen)
            admitted = True

    def _send(
        self,
        link: _WorkerLink,
        message: Dict[str, Any],
        ledger: Optional[ChunkLedger],
        now: float,
    ) -> bool:
        try:
            send_frame(link.sock, message)
            return True
        except (OSError, FrameError) as error:
            self._lose(link, f"send failed: {error}", ledger, now)
            return False

    def _dispatch(self, ledger: ChunkLedger, now: float) -> None:
        for link in list(self._links.values()):
            if not link.claimed or link.chunk_index is not None:
                continue
            state = ledger.ready_chunk(now)
            if state is None:
                return
            attempt = ledger.start(state)
            link.claimed = False
            link.chunk_index = state.index
            link.attempt = attempt
            link.dispatched_at = now
            self._send(
                link,
                {
                    "type": MSG_CHUNK,
                    "campaign_id": self._campaign_seq,
                    "chunk_index": state.index,
                    "attempt": attempt,
                    "jobs": [job.to_dict() for job in state.chunk],
                },
                ledger,
                now,
            )

    def _service(
        self,
        link: _WorkerLink,
        ledger: ChunkLedger,
        now: float,
    ) -> None:
        try:
            data = link.sock.recv(1 << 16)
        except socket.timeout:  # pragma: no cover - select said readable
            return
        except OSError as error:
            self._lose(link, f"recv failed: {error}", ledger, now)
            return
        if not data:
            self._lose(link, "disconnected", ledger, now)
            return
        try:
            messages = link.decoder.feed(data)
        except FrameError as error:
            self._lose(link, str(error), ledger, now)
            return
        link.last_seen = now
        for message in messages:
            if link.worker_id not in self._links:
                return  # lost while handling an earlier frame of this batch
            self._handle(link, message, ledger, now)

    def _handle(
        self,
        link: _WorkerLink,
        message: Dict[str, Any],
        ledger: ChunkLedger,
        now: float,
    ) -> None:
        kind = message.get("type")
        if kind == MSG_HEARTBEAT:
            return
        if kind == MSG_SHARDS:
            self._store_shards(link, message)
            return
        if message.get("campaign_id") != self._campaign_seq:
            # A slow worker finishing (or claiming after) a previous sweep
            # arm's chunk: that campaign already completed, drop the frame.
            logger.info(
                "dropping stale %s frame from worker %s (campaign %s)",
                kind,
                link.label,
                message.get("campaign_id"),
            )
            return
        if kind == MSG_CLAIM:
            link.claimed = True
            return
        if kind in (MSG_RESULT, MSG_ERROR):
            chunk_index = int(message.get("chunk_index", -1))
            if not 0 <= chunk_index < len(ledger.chunks):
                self._lose(link, f"invalid chunk index {chunk_index}", ledger, now)
                return
            if link.chunk_index == chunk_index:
                link.chunk_index = None
            state = ledger.chunks[chunk_index]
            if kind == MSG_RESULT:
                duration = now - link.dispatched_at
                if not ledger.complete(state, duration):
                    logger.info(
                        "dropping duplicate result for chunk %d from worker %s",
                        chunk_index,
                        link.label,
                    )
                    return
                results = [
                    ChipRetrainingResult.from_dict(row)
                    for row in message.get("results", [])
                ]
                if self._sequencer is not None:
                    self._sequencer.commit(chunk_index, results)
            elif state.status == "running":
                ledger.fail(state, str(message.get("error", "worker error")), now)
                if state.status == "quarantined" and self._sequencer is not None:
                    self._sequencer.skip(state.index)
            return
        logger.warning("unexpected %r frame from worker %s", kind, link.label)

    def _check_health(self, ledger: ChunkLedger, now: float) -> None:
        deadline = ledger.deadline_seconds()
        for link in list(self._links.values()):
            if now - link.last_seen > self.config.heartbeat_timeout:
                self._lose(link, "heartbeat timeout", ledger, now)
                continue
            if (
                link.chunk_index is not None
                and deadline is not None
                and now - link.dispatched_at > deadline
            ):
                metrics.counter("campaign.worker_hangs").inc()
                logger.warning(
                    "worker %s exceeded the %.1fs chunk deadline on chunk %s",
                    link.label,
                    deadline,
                    link.chunk_index,
                )
                self._lose(link, "hang", ledger, now)

    def _lose(
        self,
        link: _WorkerLink,
        cause: str,
        ledger: Optional[ChunkLedger],
        now: float,
    ) -> None:
        """Drop a worker; reassign its in-flight chunk through the ledger."""
        if self._links.pop(link.worker_id, None) is None:
            return  # already lost
        try:
            self._selector.unregister(link.sock)
        except (KeyError, ValueError):
            pass
        try:
            link.sock.close()
        except OSError:
            pass
        metrics.counter("campaign.worker_deaths").inc()
        trace.instant(
            "campaign.worker_death",
            worker=link.label,
            pid=link.pid,
            cause=cause,
            chunk=link.chunk_index,
        )
        logger.warning(
            "worker %s lost (%s) while chunk %s was in flight",
            link.label,
            cause,
            link.chunk_index,
        )
        if link.chunk_index is not None and ledger is not None:
            state = ledger.chunks[link.chunk_index]
            if state.status == "running":
                ledger.fail(state, f"worker lost ({cause})", now)
                if state.status == "quarantined" and self._sequencer is not None:
                    self._sequencer.skip(state.index)
        link.chunk_index = None

    # -- shard collection ------------------------------------------------------

    def _collect_shards(self, ledger: ChunkLedger) -> None:
        """Announce campaign end and gather per-worker trace/metric shards."""
        now = time.monotonic()
        for link in list(self._links.values()):
            self._send(
                link,
                {"type": MSG_CAMPAIGN_END, "campaign_id": self._campaign_seq},
                ledger,
                now,
            )
        deadline = time.monotonic() + self.config.shard_grace
        while time.monotonic() < deadline:
            waiting = [
                link
                for link in self._links.values()
                if link.shards_campaign < self._campaign_seq
            ]
            if not waiting:
                return
            events = self._selector.select(timeout=self.config.poll_interval)
            now = time.monotonic()
            for key, _ in events:
                self._service(key.data, ledger, now)
        if any(
            link.shards_campaign < self._campaign_seq
            for link in self._links.values()
        ):  # pragma: no cover - slow-shard stragglers
            logger.warning("shard collection timed out; trace may be partial")

    def _store_shards(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        link.shards_campaign = self._campaign_seq
        directory = trace.directory if trace.enabled else None
        if directory is None:
            return
        host = str(message.get("host", link.host))
        pid = int(message.get("pid", link.pid))
        events = message.get("trace_events") or []
        if events:
            import json

            shard = Path(directory) / f"trace-{host}-{pid}.jsonl"
            with shard.open("w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
        payload = message.get("metrics")
        if payload:
            from repro.utils.config import save_json

            save_json(
                payload, Path(directory) / f"metrics-{host}-{pid}.json", atomic=True
            )
        logger.info(
            "collected %d trace event(s) from worker %s", len(events), link.label
        )

    # -- shutdown --------------------------------------------------------------

    def close(self) -> None:
        """Broadcast shutdown and release every socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        # Drain late joiners so their sockets are not leaked.
        while True:
            try:
                self._links.setdefault(
                    -len(self._links) - 1, self._ready_queue.get_nowait()
                )
            except Empty:
                break
        for link in list(self._links.values()):
            try:
                send_frame(link.sock, {"type": MSG_SHUTDOWN})
            except (OSError, FrameError):
                pass
            try:
                self._selector.unregister(link.sock)
            except (KeyError, ValueError):
                pass
            try:
                link.sock.close()
            except OSError:
                pass
        self._links.clear()
        try:
            self._selector.close()
        except (OSError, RuntimeError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _connect_with_retry(
    address: Tuple[str, int], timeout: float, retry_interval: float = 0.5
) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` (it may not be up yet)."""
    deadline = time.monotonic() + max(timeout, 0.0)
    while True:
        try:
            return socket.create_connection(address, timeout=10.0)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise HandshakeError(
                    f"could not reach coordinator at {format_address(address)} "
                    f"within {timeout:.0f}s: {error}"
                ) from error
            time.sleep(retry_interval)


def _accept_one(address: Tuple[str, int], timeout: Optional[float]) -> socket.socket:
    """Reverse mode: listen and wait for the coordinator to dial in."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind(address)
        listener.listen(1)
        listener.settimeout(timeout)
        logger.info(
            "worker listening for a coordinator on %s",
            format_address(listener.getsockname()[:2]),
        )
        try:
            sock, _peer = listener.accept()
        except socket.timeout:
            raise HandshakeError(
                f"no coordinator dialed {format_address(address)} within {timeout:.0f}s"
            ) from None
        return sock
    finally:
        listener.close()


def _shards_frame() -> Dict[str, Any]:
    """This worker's trace shard + metrics snapshot, ready to ship home."""
    frame: Dict[str, Any] = {
        "type": MSG_SHARDS,
        "host": host_tag(),
        "pid": os.getpid(),
    }
    if trace.enabled and trace.directory is not None:
        trace.flush()
        shard = trace.shard_path()
        if shard is not None and shard.exists():
            frame["trace_events"] = read_shard(shard)
    if metrics.enabled:
        frame["metrics"] = metrics.shard_payload()
    return frame


def run_worker(
    join: Optional[Tuple[str, int]] = None,
    listen: Optional[Tuple[str, int]] = None,
    cache_dir: Optional[str] = None,
    expect_preset: Optional[str] = None,
    connect_timeout: float = 60.0,
    heartbeat_interval: Optional[float] = None,
    max_chunks: Optional[int] = None,
) -> int:
    """Join a campaign as a socket worker; returns the chunks executed.

    Exactly one of ``join`` (dial the coordinator) and ``listen`` (wait for
    the coordinator to dial, the ``--workers`` mode) must be given.  The
    worker adopts the coordinator's preset and execution knobs from the
    welcome frame — ``expect_preset`` optionally pins the preset name so a
    mis-join fails loudly — then pulls chunks until campaign shutdown or
    disconnect.  ``max_chunks`` is a test/chaos hook: after executing that
    many chunks the worker drops its socket abruptly, exactly like a
    SIGKILLed process.
    """
    if (join is None) == (listen is None):
        raise ValueError("exactly one of join= and listen= is required")
    from repro.backends import available_backends
    from repro.experiments.common import ExperimentContext
    from repro.experiments.presets import ExperimentPreset

    if join is not None:
        sock = _connect_with_retry(join, connect_timeout)
    else:
        sock = _accept_one(listen, connect_timeout if connect_timeout > 0 else None)
    send_lock = threading.Lock()
    stop = threading.Event()
    executed = 0
    try:
        sock.settimeout(60.0)
        send_frame(
            sock,
            worker_hello(
                backends=list(available_backends()),
                host=host_tag(),
                pid=os.getpid(),
                expect_preset=expect_preset,
            ),
            lock=send_lock,
        )
        welcome = recv_frame(sock)
        if welcome is None:
            raise HandshakeError("coordinator closed before welcome")
        if welcome.get("type") == MSG_REJECT:
            raise WorkerRejected(str(welcome.get("reason", "rejected")))
        if welcome.get("type") != MSG_WELCOME:
            raise HandshakeError(f"expected welcome, got {welcome.get('type')!r}")
        if welcome.get("protocol") != PROTOCOL_VERSION:
            raise HandshakeError(
                f"coordinator speaks protocol {welcome.get('protocol')!r}, "
                f"worker speaks {PROTOCOL_VERSION}"
            )

        # Observability: a fork-started local worker inherits the parent's
        # enabled tracer/metrics — shards must only report work done *in*
        # this process, recorded in a private directory that ships home over
        # the socket at campaign end.
        if welcome.get("trace"):
            trace.enable(tempfile.mkdtemp(prefix="repro-worker-trace-"))
        else:
            trace.disable()
        metrics.enabled = bool(welcome.get("metrics"))
        metrics.reset()

        preset = config_from_dict(ExperimentPreset, welcome["preset"])
        logger.info(
            "worker %s building context for preset %r",
            host_tag(),
            preset.name,
        )
        # The campaign's store fingerprint hashes the preset config: because
        # config round-trips exactly, a remote context is the same experiment.
        context = ExperimentContext.from_preset(preset, disk_cache_dir=cache_dir)
        context.configure_eval_pipeline(
            prefetch=bool(welcome.get("prefetch", True)),
            lowering_cache_mb=welcome.get("lowering_cache_mb"),
        )
        framework = context.framework()
        send_frame(sock, {"type": MSG_READY}, lock=send_lock)
        sock.settimeout(None)

        interval = float(
            heartbeat_interval
            if heartbeat_interval is not None
            else welcome.get("heartbeat_interval", 5.0)
        )

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    send_frame(sock, {"type": MSG_HEARTBEAT}, lock=send_lock)
                except (OSError, FrameError):
                    return

        threading.Thread(target=beat, name="campaign-heartbeat", daemon=True).start()

        campaign: Optional[Dict[str, Any]] = None
        while True:
            try:
                message = recv_frame(sock)
            except (FrameError, OSError) as error:
                logger.warning("worker link dropped: %s", error)
                break
            if message is None or message.get("type") == MSG_SHUTDOWN:
                break
            kind = message.get("type")
            if kind == MSG_CAMPAIGN:
                campaign = message
                send_frame(
                    sock,
                    {"type": MSG_CLAIM, "campaign_id": message.get("campaign_id")},
                    lock=send_lock,
                )
            elif kind == MSG_CHUNK:
                jobs = [ChipJob.from_dict(job) for job in message.get("jobs", [])]
                fat_batch = int(campaign.get("fat_batch", 1)) if campaign else 1
                try:
                    results = execute_job_chunk(
                        framework,
                        jobs,
                        fat_batch=fat_batch,
                        attempt=int(message.get("attempt", 0)),
                    )
                except Exception as error:  # noqa: BLE001 - ships to the ledger
                    reply = {
                        "type": MSG_ERROR,
                        "campaign_id": message.get("campaign_id"),
                        "chunk_index": message.get("chunk_index"),
                        "error": repr(error),
                    }
                else:
                    executed += 1
                    reply = {
                        "type": MSG_RESULT,
                        "campaign_id": message.get("campaign_id"),
                        "chunk_index": message.get("chunk_index"),
                        "results": [result.to_dict() for result in results],
                    }
                send_frame(sock, reply, lock=send_lock)
                if max_chunks is not None and executed >= max_chunks:
                    logger.warning(
                        "worker reached max_chunks=%d; dropping the link", max_chunks
                    )
                    return executed
                claim_id = (
                    campaign.get("campaign_id")
                    if campaign
                    else message.get("campaign_id")
                )
                send_frame(
                    sock,
                    {"type": MSG_CLAIM, "campaign_id": claim_id},
                    lock=send_lock,
                )
            elif kind == MSG_CAMPAIGN_END:
                send_frame(sock, _shards_frame(), lock=send_lock)
            # heartbeats and unknown frames are ignored
        return executed
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def _local_worker_main(
    address: Tuple[str, int], cache_dir: Optional[str]
) -> None:  # pragma: no cover - runs in a child process
    """Entry point of an engine-spawned local socket worker process."""
    try:
        run_worker(join=tuple(address), cache_dir=cache_dir, connect_timeout=60.0)
    except TransportError as error:
        logger.warning("local socket worker exiting: %s", error)
