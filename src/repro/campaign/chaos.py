"""Deterministic chaos harness for the campaign supervisor.

Fault-tolerance code that is only exercised by real 3 a.m. failures is
unverified code.  This module turns the failure modes the supervisor must
survive into a *seeded, planned* fault schedule so every recovery path runs
in tests and CI:

* ``kill`` — the worker SIGKILLs itself at the start of a planned chunk
  attempt (an OOM-killer stand-in; the supervisor must detect the dead
  process and reassign the chunk).
* ``hang`` — the worker sleeps ``hang_s`` seconds before executing a planned
  chunk (a wedged-BLAS stand-in; the supervisor's deadline must fire, or the
  sleep ends and the chunk completes late — either way the campaign finishes).
* ``exc`` — a transient :class:`ChaosError` is raised on the first attempt of
  a planned chunk (the retry path without losing the worker).
* ``poison`` — :class:`ChaosError` on *every* attempt of a planned chunk
  (the quarantine path: retries are capped, the chunk is reported failed and
  the campaign degrades gracefully).
* ``torn`` — after a planned parent-side store append, a torn trailing
  fragment is written to ``results.jsonl`` (a power-cut stand-in; the store's
  torn-tail repair must absorb it).

A schedule is a pure function of ``(spec, number of plan chunks)``: the spec
string carries an explicit seed, planned chunk indices are drawn with
``random.Random(seed)``, and kill/hang/exc faults fire only on a chunk's
first attempt — so a chaos campaign always terminates and (except for
``poison`` chunks) commits bit-identical rows to an undisturbed run.

Spec grammar (``--chaos SPEC`` / ``REPRO_CHAOS``)::

    SPEC    := ENTRY ("," ENTRY)*
    ENTRY   := KEY "=" VALUE
    KEY     := "seed" | "kill" | "hang" | "exc" | "poison" | "torn" | "hang_s"

``seed`` (default 0) seeds the planner; ``kill``/``hang``/``exc``/``poison``/
``torn`` (defaults 0) are fault counts; ``hang_s`` (default 30.0, > 0) is the
injected hang duration in seconds.  Example: ``seed=7,kill=2,hang=1,hang_s=5``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import signal
import time
from typing import Dict, Optional

from repro.observability import metrics, trace
from repro.utils.logging import get_logger

logger = get_logger("campaign.chaos")

#: Environment variable consulted by the CLI when ``--chaos`` is not given.
CHAOS_ENV_VAR = "REPRO_CHAOS"

_COUNT_KEYS = ("kill", "hang", "exc", "poison", "torn")


class ChaosError(RuntimeError):
    """The injected (transient or poison) chunk-execution failure."""


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """Parsed chaos specification (fault counts + seed + hang duration)."""

    seed: int = 0
    kill: int = 0
    hang: int = 0
    exc: int = 0
    poison: int = 0
    torn: int = 0
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        for key in _COUNT_KEYS:
            if getattr(self, key) < 0:
                raise ValueError(f"chaos count {key!r} must be non-negative")
        if self.hang_s <= 0:
            raise ValueError("chaos hang_s must be positive")

    @classmethod
    def parse(cls, spec: str) -> "ChaosSpec":
        """Parse the ``key=value,...`` spec grammar (raises ``ValueError``)."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError("chaos spec must be a non-empty string")
        values: Dict[str, object] = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            key, sep, raw = entry.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise ValueError(
                    f"malformed chaos entry {entry!r}: expected key=value"
                )
            if key == "hang_s":
                try:
                    values[key] = float(raw)
                except ValueError:
                    raise ValueError(f"chaos hang_s must be a number, got {raw!r}")
            elif key == "seed" or key in _COUNT_KEYS:
                try:
                    values[key] = int(raw)
                except ValueError:
                    raise ValueError(f"chaos {key} must be an integer, got {raw!r}")
            else:
                known = ("seed",) + _COUNT_KEYS + ("hang_s",)
                raise ValueError(
                    f"unknown chaos key {key!r}; expected one of {', '.join(known)}"
                )
        return cls(**values)  # type: ignore[arg-type]

    @property
    def total_faults(self) -> int:
        return self.kill + self.hang + self.exc + self.poison

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts += [f"{k}={getattr(self, k)}" for k in _COUNT_KEYS if getattr(self, k)]
        if self.hang:
            parts.append(f"hang_s={self.hang_s:g}")
        return ",".join(parts)

    def schedule(self, num_chunks: int) -> "ChaosSchedule":
        """Plan the fault points for a campaign of ``num_chunks`` chunks.

        Chunk faults are assigned to distinct chunk indices (counts beyond
        the number of chunks are dropped with a warning — chaos must never
        turn into an unplanned infinite fault source).  Torn-write points are
        drawn over the *first half* of the append sequence so a later append
        always runs the store's torn-tail repair before the campaign ends.
        """
        rng = random.Random(self.seed)
        actions: Dict[int, str] = {}
        wanted = [
            action
            for action, count in (
                ("kill", self.kill),
                ("hang", self.hang),
                ("exc", self.exc),
                ("poison", self.poison),
            )
            for _ in range(count)
        ]
        if num_chunks > 0 and wanted:
            if len(wanted) > num_chunks:
                logger.warning(
                    "chaos: %d faults requested but only %d chunks; dropping %d",
                    len(wanted),
                    num_chunks,
                    len(wanted) - num_chunks,
                )
                wanted = wanted[:num_chunks]
            indices = rng.sample(range(num_chunks), len(wanted))
            actions = dict(zip(indices, wanted))
        torn_window = max(1, num_chunks // 2)
        torn_points = (
            set(rng.sample(range(torn_window), min(self.torn, torn_window)))
            if self.torn and num_chunks > 0
            else set()
        )
        return ChaosSchedule(spec=self, actions=actions, torn_points=torn_points)


@dataclasses.dataclass
class ChaosSchedule:
    """A planned fault schedule for one campaign run (picklable).

    ``actions`` maps plan-chunk index -> fault action; ``torn_points`` are
    parent-side append indices after which a torn fragment is written.  The
    schedule is shipped to every worker (including respawned replacements)
    through the initializer, so which process executes a chunk never changes
    which faults fire.
    """

    spec: ChaosSpec
    actions: Dict[int, str]
    torn_points: "set[int]"
    _appends_seen: int = dataclasses.field(default=0, compare=False)

    def action_for(self, chunk_index: int, attempt: int) -> Optional[str]:
        """The fault to inject for this chunk attempt (``None`` = none).

        First-attempt-only for everything except ``poison``, so retried
        chunks always succeed and chaos campaigns terminate.
        """
        action = self.actions.get(chunk_index)
        if action is None:
            return None
        if action == "poison":
            return action
        return action if attempt == 0 else None

    def maybe_inject(
        self, chunk_index: int, attempt: int, allow_process_faults: bool = True
    ) -> None:
        """Inject the planned fault for this chunk attempt, if any.

        ``allow_process_faults=False`` (the inline, single-process executor)
        downgrades ``kill``/``hang`` to no-ops: killing or stalling the only
        process is not a recoverable fault, it is the driver's own death.
        """
        action = self.action_for(chunk_index, attempt)
        if action is None:
            return
        if action == "kill":
            if not allow_process_faults:
                return
            logger.warning(
                "chaos: SIGKILL of pid %d on chunk %d attempt %d",
                os.getpid(),
                chunk_index,
                attempt,
            )
            trace.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            if not allow_process_faults:
                return
            logger.warning(
                "chaos: hanging pid %d for %.1fs on chunk %d attempt %d",
                os.getpid(),
                self.spec.hang_s,
                chunk_index,
                attempt,
            )
            metrics.counter("chaos.hangs_injected").inc()
            time.sleep(self.spec.hang_s)
        elif action in ("exc", "poison"):
            metrics.counter("chaos.exceptions_injected").inc()
            raise ChaosError(
                f"injected {action} failure on chunk {chunk_index} attempt {attempt}"
            )

    def maybe_tear(self, store) -> None:
        """After a parent-side append, maybe write a torn trailing fragment.

        Counts appends internally; when the count hits a planned torn point,
        a partial JSON fragment with no newline is appended to the results
        file — exactly what a power cut mid-append leaves behind.
        """
        index = self._appends_seen
        self._appends_seen += 1
        if index not in self.torn_points:
            return
        logger.warning("chaos: tearing trailing write after append %d", index)
        metrics.counter("chaos.torn_writes_injected").inc()
        with store.results_path.open("a", encoding="utf-8") as handle:
            handle.write('{"chip_id": "chaos-torn-fragment", "accuracy_af')


def resolve_chaos(spec) -> Optional[ChaosSpec]:
    """Normalize a chaos argument: ``None`` | spec string | ``ChaosSpec``."""
    if spec is None:
        return None
    if isinstance(spec, ChaosSpec):
        return spec
    return ChaosSpec.parse(str(spec))
