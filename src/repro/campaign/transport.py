"""Socket transport of the distributed campaign engine.

The wire format is deliberately tiny: every message is one JSON object
(UTF-8) prefixed by a 4-byte big-endian length — the classic length-prefixed
framing that survives arbitrary TCP segmentation.  Everything the campaign
ships is already JSON-serializable (``ChipJob.to_dict``,
``ChipRetrainingResult.to_dict``, trace-shard lines, metric snapshots), and
JSON float serialization round-trips ``repr``-exactly in Python, so a result
decoded from a frame re-encodes byte-identically in the content-addressed
store — the transport cannot perturb bit-identity.

Connection establishment is a versioned hello handshake.  The *worker* side
always speaks first (regardless of which side dialed), declaring:

* ``protocol`` — :data:`PROTOCOL_VERSION`; coordinators reject mismatches
  outright rather than guessing at forward compatibility;
* ``store_format`` — :data:`~repro.campaign.store.STORE_FORMAT_VERSION`, so
  a worker built against a different store layout can never contribute rows;
* ``backends`` — the worker's available compute backends; a campaign pinned
  to a backend the worker lacks is rejected at join time, not mid-chunk;
* ``preset`` — optionally, the preset name the worker expects (workers
  normally adopt the coordinator's preset from the welcome frame; declaring
  one turns a mixed-cluster mis-join into a loud reject);
* ``host``/``pid`` — identity for cross-host trace attribution.

The coordinator answers with a ``welcome`` carrying the full serialized
preset and execution knobs (or a ``reject`` with a reason), the worker builds
its context and reports ``ready``, and from then on both sides exchange the
scheduler's campaign/claim/chunk/result messages plus periodic heartbeats
(see :mod:`repro.campaign.scheduler`).

Blocking helpers (:func:`send_frame`/:func:`recv_frame`) serve the worker
side; the coordinator multiplexes many workers without threads-per-connection
through the incremental :class:`FrameDecoder`.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

PROTOCOL_VERSION = 1

#: Frames larger than this are refused on both ends.  Sized far above any
#: legitimate chunk/result/shard payload; its job is to turn a corrupt or
#: hostile length prefix into a clean error instead of a 4 GiB allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Message types (the ``type`` field of every frame).
MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_REJECT = "reject"
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_CAMPAIGN = "campaign"
MSG_CLAIM = "claim"
MSG_CHUNK = "chunk"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_CAMPAIGN_END = "campaign_end"
MSG_SHARDS = "shards"
MSG_SHUTDOWN = "shutdown"


class TransportError(RuntimeError):
    """Base class for socket-transport failures."""


class FrameError(TransportError):
    """A malformed, oversized or truncated frame."""


class HandshakeError(TransportError):
    """The hello/welcome exchange failed or was rejected."""


def encode_frame(message: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message as a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return _HEADER.pack(len(payload)) + payload


def send_frame(
    sock: socket.socket,
    message: Dict[str, Any],
    lock: Optional[threading.Lock] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Send one framed message (atomically w.r.t. ``lock`` when given).

    The worker's heartbeat thread and its main loop share one socket; the
    lock keeps their frames from interleaving.
    """
    data = encode_frame(message, max_frame_bytes=max_frame_bytes)
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes; ``None`` on EOF at a frame boundary."""
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == size:
                return None
            raise FrameError(
                f"connection closed mid-frame ({size - remaining}/{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one framed message (blocking); ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(
            f"peer announced a {length}-byte frame (cap {max_frame_bytes})"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between frame header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"undecodable frame payload: {error}") from error
    if not isinstance(message, dict):
        raise FrameError(f"frame payload is not an object: {type(message).__name__}")
    return message


class FrameDecoder:
    """Incremental frame decoder for non-blocking sockets.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    feeds and yields every complete message, so the coordinator's event loop
    never blocks on a slow writer mid-frame.
    """

    __slots__ = ("_buffer", "_max_frame_bytes")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Buffer ``data`` and return every now-complete message, in order."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack(bytes(self._buffer[: _HEADER.size]))
            if length > self._max_frame_bytes:
                raise FrameError(
                    f"peer announced a {length}-byte frame (cap {self._max_frame_bytes})"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise FrameError(f"undecodable frame payload: {error}") from error
            if not isinstance(message, dict):
                raise FrameError(
                    f"frame payload is not an object: {type(message).__name__}"
                )
            messages.append(message)


def parse_address(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into ``(host, port)``."""
    text = str(spec).strip()
    if not text:
        raise ValueError("empty address")
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    host = host.strip() or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in address {spec!r}")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def find_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (the Power-SGD join idiom)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def worker_hello(
    backends: List[str],
    host: str,
    pid: int,
    expect_preset: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the worker-first hello frame."""
    from repro.campaign.store import STORE_FORMAT_VERSION

    hello: Dict[str, Any] = {
        "type": MSG_HELLO,
        "protocol": PROTOCOL_VERSION,
        "store_format": STORE_FORMAT_VERSION,
        "backends": list(backends),
        "host": host,
        "pid": int(pid),
    }
    if expect_preset is not None:
        hello["preset"] = str(expect_preset)
    return hello


def validate_hello(
    hello: Dict[str, Any],
    backend: Optional[str],
    preset_name: str,
) -> Optional[str]:
    """Coordinator-side hello validation; a rejection reason or ``None``.

    ``backend`` is the campaign's pinned compute backend (``None`` = eager,
    which every worker supports).  ``preset_name`` is the coordinator's
    preset; a worker that *declared* an expected preset must match it.
    """
    from repro.campaign.store import STORE_FORMAT_VERSION

    if hello.get("type") != MSG_HELLO:
        return f"expected a hello frame, got {hello.get('type')!r}"
    if hello.get("protocol") != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: worker speaks {hello.get('protocol')!r}, "
            f"coordinator speaks {PROTOCOL_VERSION}"
        )
    if hello.get("store_format") != STORE_FORMAT_VERSION:
        return (
            f"store format mismatch: worker writes v{hello.get('store_format')!r}, "
            f"coordinator stores are v{STORE_FORMAT_VERSION}"
        )
    if backend is not None and backend not in (hello.get("backends") or []):
        return (
            f"backend {backend!r} unavailable on worker "
            f"(has: {', '.join(hello.get('backends') or []) or 'none'})"
        )
    declared = hello.get("preset")
    if declared is not None and str(declared) != preset_name:
        return (
            f"preset mismatch: worker expects {declared!r}, "
            f"campaign runs {preset_name!r}"
        )
    return None
