"""Parallel campaign engine: sharded, resumable chip-population runs.

This package is the layer between the per-chip math of
:mod:`repro.core.reduce` and the figure runners: it freezes Step 2 decisions
into picklable per-chip jobs, shards them across supervised worker processes
(with worker-death/hang recovery and poison-chunk quarantine — see
:mod:`repro.campaign.supervisor`) and persists results to a checksummed,
content-addressed JSONL store that supports resuming interrupted campaigns
and verifying store integrity.  A deterministic chaos harness
(:mod:`repro.campaign.chaos`) exercises every recovery path from tests.

Campaigns also scale past one host: :mod:`repro.campaign.transport` frames
JSON messages over TCP sockets with a versioned hello handshake, and
:mod:`repro.campaign.scheduler` serves plan chunks to local *and* remote
socket workers via work-stealing claims, reusing the supervisor's
retry/quarantine chunk ledger so distributed recovery matches local
recovery exactly.
"""

from repro.campaign.chaos import CHAOS_ENV_VAR, ChaosError, ChaosSpec, resolve_chaos
from repro.campaign.engine import CampaignEngine, CampaignReport, run_campaign
from repro.campaign.jobs import (
    ChipJob,
    build_jobs,
    execute_job,
    execute_job_chunk,
    execute_jobs_batched,
    group_jobs_for_batching,
    plan_job_chunks,
)
from repro.campaign.store import (
    CampaignStore,
    CampaignStoreError,
    StoreVerification,
    campaign_fingerprint,
    discover_stores,
)
from repro.campaign.scheduler import (
    CampaignCoordinator,
    SchedulerConfig,
    SchedulerError,
    WorkerRejected,
    run_worker,
)
from repro.campaign.supervisor import (
    ChunkFailure,
    ChunkLedger,
    SupervisingExecutor,
    SupervisorConfig,
)
from repro.campaign.sweep import StrategySweepResult, run_strategy_sweep
from repro.campaign.transport import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    HandshakeError,
    TransportError,
    find_free_port,
    parse_address,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "ChaosSpec",
    "resolve_chaos",
    "CampaignEngine",
    "CampaignReport",
    "run_campaign",
    "ChipJob",
    "build_jobs",
    "execute_job",
    "execute_job_chunk",
    "execute_jobs_batched",
    "group_jobs_for_batching",
    "plan_job_chunks",
    "CampaignStore",
    "CampaignStoreError",
    "StoreVerification",
    "campaign_fingerprint",
    "discover_stores",
    "ChunkFailure",
    "ChunkLedger",
    "SupervisingExecutor",
    "SupervisorConfig",
    "StrategySweepResult",
    "run_strategy_sweep",
    "CampaignCoordinator",
    "SchedulerConfig",
    "SchedulerError",
    "WorkerRejected",
    "run_worker",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "FrameError",
    "HandshakeError",
    "TransportError",
    "find_free_port",
    "parse_address",
]
