"""Parallel campaign engine: sharded, resumable chip-population runs.

This package is the layer between the per-chip math of
:mod:`repro.core.reduce` and the figure runners: it freezes Step 2 decisions
into picklable per-chip jobs, shards them across worker processes and
persists results to a content-addressed JSONL store that supports resuming
interrupted campaigns.
"""

from repro.campaign.engine import CampaignEngine, CampaignReport, run_campaign
from repro.campaign.jobs import (
    ChipJob,
    build_jobs,
    execute_job,
    execute_job_chunk,
    execute_jobs_batched,
    group_jobs_for_batching,
    plan_job_chunks,
)
from repro.campaign.store import (
    CampaignStore,
    CampaignStoreError,
    campaign_fingerprint,
)
from repro.campaign.sweep import StrategySweepResult, run_strategy_sweep

__all__ = [
    "CampaignEngine",
    "CampaignReport",
    "run_campaign",
    "ChipJob",
    "build_jobs",
    "execute_job",
    "execute_job_chunk",
    "execute_jobs_batched",
    "group_jobs_for_batching",
    "plan_job_chunks",
    "CampaignStore",
    "CampaignStoreError",
    "campaign_fingerprint",
    "StrategySweepResult",
    "run_strategy_sweep",
]
