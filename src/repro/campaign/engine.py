"""Sharded, resumable campaign engine.

The engine turns ``ReduceFramework.retrain_population`` into a dispatchable
workload: Step 2 (policy resolution) runs once in the parent process and is
frozen into picklable :class:`~repro.campaign.jobs.ChipJob` units, which are
then sharded across a ``multiprocessing`` pool (``jobs > 1``) or executed
inline (``jobs == 1``, the exact legacy code path).  With a store base
directory the engine persists every finished chip to a content-addressed
JSONL store and skips already-completed chips on restart, so a killed
campaign resumes where it left off.

Determinism: the retraining seed is a pure function of the campaign
configuration and is shared by every chip (see
``ReduceFramework._fat_training_config``), every execution restores the same
pre-trained weights first, and results are re-ordered to population order —
so serial, parallel and resumed runs produce bit-identical results.  The
shared seed also lets the inline (``jobs == 1``) path coalesce same-budget
chips into stacked batched-FAT runs (``fat_batch``) whose results are
bit-identical to per-chip execution on this BLAS build.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.jobs import (
    ChipJob,
    build_jobs,
    execute_job,
    execute_jobs_batched,
    group_jobs_by_epochs,
)
from repro.campaign.store import CampaignStore, campaign_fingerprint
from repro.core.chips import ChipPopulation
from repro.core.reduce import CampaignResult, ChipRetrainingResult, ReduceFramework
from repro.core.selection import FixedEpochPolicy, RetrainingPolicy
from repro.utils.logging import get_logger
from repro.utils.timing import Timer, format_duration

logger = get_logger("campaign.engine")

PathLike = Union[str, Path]

# Per-worker framework, built once by the pool initializer.  Under the
# ``fork`` start method the worker inherits the parent's in-memory context
# cache, so initialization is instant; under ``spawn`` the context is rebuilt
# (hitting the on-disk pre-trained-state cache when one is configured).
_WORKER_FRAMEWORK: Optional[ReduceFramework] = None


def _initialize_worker(preset, disk_cache_dir: Optional[str]) -> None:
    global _WORKER_FRAMEWORK
    from repro.experiments.common import ExperimentContext

    context = ExperimentContext.from_preset(preset, disk_cache_dir=disk_cache_dir)
    _WORKER_FRAMEWORK = context.framework()


def _execute_in_worker(job: ChipJob) -> ChipRetrainingResult:
    assert _WORKER_FRAMEWORK is not None, "worker initializer did not run"
    return execute_job(_WORKER_FRAMEWORK, job)


def _start_method() -> str:
    # Fork is preferred where reliable (workers inherit the parent's context
    # cache for free), but macOS system frameworks are not fork-safe — the
    # reason CPython made spawn the macOS default — so fork is used on Linux
    # only.  Spawned workers rebuild their context, hitting the on-disk
    # pre-trained-state cache when one is configured.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


@dataclasses.dataclass
class CampaignReport:
    """Bookkeeping of one engine run (what executed, what was resumed)."""

    policy_name: str
    total_chips: int
    executed: int
    skipped: int
    jobs: int
    elapsed_seconds: float
    fingerprint: Optional[str] = None
    store_dir: Optional[Path] = None

    @property
    def chips_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf") if self.executed else 0.0
        return self.executed / self.elapsed_seconds

    def describe(self) -> str:
        parts = [
            f"policy={self.policy_name}",
            f"chips={self.total_chips}",
            f"executed={self.executed}",
            f"skipped={self.skipped}",
            f"jobs={self.jobs}",
            f"elapsed={format_duration(self.elapsed_seconds)}",
        ]
        if self.store_dir is not None:
            parts.append(f"store={self.store_dir}")
        return " ".join(parts)


class CampaignEngine:
    """Run retraining campaigns over chip populations, sharded and resumable.

    Parameters
    ----------
    context:
        An :class:`~repro.experiments.common.ExperimentContext` providing the
        pre-trained model, dataset and array.
    jobs:
        Number of worker processes; ``1`` (the default) executes inline with
        no multiprocessing involved.
    store_base:
        Base directory for persistent result stores.  ``None`` keeps results
        in memory only (the legacy behaviour).
    resume:
        When a store is used, skip chips whose results are already recorded.
    progress:
        Log one line per completed chip.
    chunk_size:
        Override the number of jobs handed to a worker at a time.
    disk_cache_dir:
        Forwarded to workers so spawned processes can load the pre-trained
        state from the on-disk context cache instead of re-pre-training.
    fat_batch:
        Maximum number of same-budget chips retrained together in one
        stacked batched-FAT run on the inline (``jobs == 1``) path; ``1``
        disables coalescing.  Results are bit-identical either way; the
        stacked runs just share every GEMM across the batch.
    """

    DEFAULT_FAT_BATCH = 8

    def __init__(
        self,
        context,
        jobs: int = 1,
        store_base: Optional[PathLike] = None,
        resume: bool = True,
        progress: bool = False,
        chunk_size: Optional[int] = None,
        disk_cache_dir: Optional[PathLike] = None,
        fat_batch: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if fat_batch is not None and fat_batch < 1:
            raise ValueError(f"fat_batch must be >= 1, got {fat_batch}")
        self.context = context
        self.jobs = int(jobs)
        self.store_base = Path(store_base) if store_base is not None else None
        self.resume = resume
        self.progress = progress
        self.chunk_size = chunk_size
        self.disk_cache_dir = str(disk_cache_dir) if disk_cache_dir is not None else None
        self.fat_batch = int(fat_batch) if fat_batch is not None else self.DEFAULT_FAT_BATCH
        self.last_report: Optional[CampaignReport] = None

    # -- public API ---------------------------------------------------------------

    def run(self, population: ChipPopulation, policy: RetrainingPolicy) -> CampaignResult:
        """Execute Step 3 for every chip under ``policy`` (Steps 1+2 given)."""
        framework = self.context.framework()
        job_list = build_jobs(framework, population, policy)
        target_accuracy = framework.target_accuracy
        clean_accuracy = framework.clean_accuracy

        store: Optional[CampaignStore] = None
        fingerprint: Optional[str] = None
        known: Dict[str, ChipRetrainingResult] = {}
        if self.store_base is not None:
            fingerprint = campaign_fingerprint(
                self.context.preset, policy.name, target_accuracy, job_list
            )
            store = CampaignStore.open(
                self.store_base,
                fingerprint,
                manifest={
                    "policy": policy.name,
                    "preset": self.context.preset.name,
                    "num_chips": len(job_list),
                    "target_accuracy": target_accuracy,
                    "clean_accuracy": clean_accuracy,
                    "array_shape": list(population.array_shape),
                },
            )
            if self.resume:
                store.compact()
                wanted = {job.chip_id for job in job_list}
                known = {
                    chip_id: result
                    for chip_id, result in store.completed().items()
                    if chip_id in wanted
                }
            else:
                store.clear_results()

        pending = [job for job in job_list if job.chip_id not in known]
        if known:
            logger.info(
                "campaign %s: resuming, %d/%d chips already recorded in %s",
                policy.name,
                len(known),
                len(job_list),
                store.directory if store is not None else "?",
            )

        timer = Timer().start()
        done = len(known)

        if pending:
            # Batched triage: the initial accuracy checkpoint of every pending
            # chip is B masked variants of the same pre-trained model, so one
            # multi-chip sweep replaces |pending| serial test-set passes.  The
            # values are numerically identical to the serial evaluation, and
            # zero-epoch jobs become pure lookups for the executor.
            triage = framework.triage_population(
                [job.to_chip() for job in pending]
            )
            pending = [
                job.with_accuracy_before(triage[job.chip_id])
                if job.chip_id in triage
                else job
                for job in pending
            ]

        def record(result: ChipRetrainingResult) -> None:
            nonlocal done
            known[result.chip_id] = result
            if store is not None:
                store.append(result)
            done += 1
            if self.progress:
                logger.info(
                    "campaign %s: %d/%d chip %s rate=%.3f epochs=%.3f acc=%.3f meets=%s",
                    policy.name,
                    done,
                    len(job_list),
                    result.chip_id,
                    result.fault_rate,
                    result.epochs_trained,
                    result.accuracy_after,
                    result.meets_constraint,
                )

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._execute_parallel(pending, record)
            else:
                self._execute_inline(framework, pending, record)
        elapsed = timer.stop()

        self.last_report = CampaignReport(
            policy_name=policy.name,
            total_chips=len(job_list),
            executed=len(pending),
            skipped=len(job_list) - len(pending),
            jobs=self.jobs,
            elapsed_seconds=elapsed,
            fingerprint=fingerprint,
            store_dir=store.directory if store is not None else None,
        )
        logger.info("campaign finished: %s", self.last_report.describe())

        results = [known[job.chip_id] for job in job_list]
        return CampaignResult(
            policy_name=policy.name,
            target_accuracy=target_accuracy,
            clean_accuracy=clean_accuracy,
            results=results,
        )

    def run_reduce(self, population: ChipPopulation, statistic: str = "max") -> CampaignResult:
        """Steps 1+2+3 with the resilience-driven policy (Step 1 cached)."""
        self.context.resilience_profile()
        policy = self.context.framework().build_policy(statistic)
        return self.run(population, policy)

    def run_fixed(self, population: ChipPopulation, epochs: float) -> CampaignResult:
        """The fixed-budget baseline through the engine."""
        return self.run(population, FixedEpochPolicy(epochs))

    # -- inline dispatch (batched FAT) ---------------------------------------------

    def _execute_inline(
        self,
        framework,
        pending: Sequence[ChipJob],
        record: Callable[[ChipRetrainingResult], None],
    ) -> None:
        """Execute jobs in-process, coalescing same-budget groups (Step 3).

        Groups of at least two jobs with the same positive epoch budget run
        through the stacked batched-FAT trainer in chunks of ``fat_batch``;
        everything else (zero-epoch lookups, singleton budgets, or
        ``fat_batch == 1``) takes the per-job path.  Either way the recorded
        results are identical; only the store's line order can differ, which
        resume reads back order-independently.  Results are recorded (and
        persisted) after every ``fat_batch`` chunk, so a killed campaign
        loses at most the chunk in flight rather than a whole budget group.
        """
        if self.fat_batch > 1:
            batched = 0
            for epochs, group in group_jobs_by_epochs(pending).items():
                if epochs > 0 and len(group) > 1:
                    for start in range(0, len(group), self.fat_batch):
                        chunk = group[start:start + self.fat_batch]
                        for result in execute_jobs_batched(
                            framework, chunk, fat_batch=self.fat_batch
                        ):
                            record(result)
                    batched += len(group)
                else:
                    for job in group:
                        record(execute_job(framework, job))
            if batched:
                logger.info(
                    "campaign: %d/%d chips retrained in stacked batches (fat_batch=%d)",
                    batched,
                    len(pending),
                    self.fat_batch,
                )
        else:
            for job in pending:
                record(execute_job(framework, job))

    # -- parallel dispatch ----------------------------------------------------------

    def _execute_parallel(
        self,
        pending: Sequence[ChipJob],
        record: Callable[[ChipRetrainingResult], None],
    ) -> None:
        workers = min(self.jobs, len(pending))
        chunk = self.chunk_size
        if chunk is None:
            # Small chunks keep the store fresh (resume granularity) while
            # amortizing IPC over a few chips per dispatch.
            chunk = max(1, len(pending) // (workers * 4))
        mp_context = multiprocessing.get_context(_start_method())
        logger.info(
            "campaign: dispatching %d chips across %d workers (start=%s, chunksize=%d)",
            len(pending),
            workers,
            mp_context.get_start_method(),
            chunk,
        )
        with mp_context.Pool(
            processes=workers,
            initializer=_initialize_worker,
            initargs=(self.context.preset, self.disk_cache_dir),
        ) as pool:
            for result in pool.imap_unordered(_execute_in_worker, pending, chunksize=chunk):
                record(result)


def run_campaign(
    context,
    population: ChipPopulation,
    policy: RetrainingPolicy,
    jobs: int = 1,
    store_base: Optional[PathLike] = None,
    resume: bool = True,
    progress: bool = False,
    fat_batch: Optional[int] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        context,
        jobs=jobs,
        store_base=store_base,
        resume=resume,
        progress=progress,
        fat_batch=fat_batch,
    )
    return engine.run(population, policy)
