"""Sharded, resumable campaign engine (the campaign planner/executor).

The engine turns ``ReduceFramework.retrain_population`` into a dispatchable
workload in two stages:

* **Plan.** Step 2 (policy resolution) runs once in the parent process and
  is frozen into picklable :class:`~repro.campaign.jobs.ChipJob` units; the
  pending jobs are then partitioned into same-budget *chunks* of at most
  ``fat_batch`` jobs (:func:`~repro.campaign.jobs.plan_job_chunks`).
* **Execute.** Whole chunks — not single chips — are dispatched to a set of
  supervised worker processes (``jobs > 1``;
  :class:`~repro.campaign.supervisor.SupervisingExecutor`), to a
  socket-transport worker fleet (``listen=``/``workers=``;
  :class:`~repro.campaign.scheduler.CampaignCoordinator`), or executed
  inline (``jobs == 1``).  A multi-job chunk runs through one stacked
  :class:`~repro.accelerator.batched.BatchedFaultTrainer`, so process-level
  parallelism and stacked-GEMM batching compose: ``--jobs N`` workers each
  retrain ``--fat-batch`` chips per dispatch.

In distributed mode the engine owns a coordinator from construction time:
remote workers join over TCP (``repro-reduce worker --join HOST:PORT``)
while ``jobs`` local socket workers are forked lazily at the first
distributed execution.  Chunks are pulled via work-stealing claims, results
commit through the same content-addressed store on the coordinator host,
and the population-shared retraining seed makes every chunk bit-identical
no matter which host executed it — a distributed campaign resumes and
fingerprints exactly like a local one.

Execution is fault-tolerant: the supervisor detects dead workers (OOM kills,
crashes) and hung chunks (per-chunk deadlines), reassigns the chunk to a
healthy worker with capped retries and exponential backoff, and quarantines
chunks that keep failing — the campaign completes every other chip and
reports the casualties in ``CampaignResult.failed_chips`` (and the store's
``quarantine.jsonl``) instead of crashing.  The inline executor applies the
same retry/quarantine policy to in-process exceptions.  A deterministic
chaos harness (:mod:`repro.campaign.chaos`, ``chaos=``/``--chaos``) injects
worker SIGKILLs, hangs, transient exceptions and torn trailing writes at
seeded points so every one of those recovery paths is exercised in tests.

With a store base directory the engine persists every finished chunk to a
content-addressed JSONL store (one fsync per chunk — the group-result
protocol) and skips already-completed chips on restart, so a killed campaign
loses at most the chunks in flight and resumes where it left off.

Determinism: the retraining seed is a pure function of the campaign
configuration and is shared by every chip (see
``ReduceFramework._fat_training_config``) — population-shared seeding is
what makes a chunk executed in any worker bit-identical to per-chip serial
execution.  Every execution restores the same pre-trained weights first and
results are re-ordered to population order, so serial, parallel, batched and
resumed runs produce bit-identical results; a resumed campaign re-plans only
the remaining jobs, and any partition of the same jobs yields the same
per-chip values.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.chaos import ChaosSchedule, ChaosSpec, resolve_chaos
from repro.campaign.jobs import (
    ChipJob,
    build_jobs,
    execute_job_chunk,
    plan_job_chunks,
)
from repro.campaign.scheduler import (
    CampaignCoordinator,
    SchedulerConfig,
    _local_worker_main,
)
from repro.campaign.store import CampaignStore, campaign_fingerprint
from repro.campaign.supervisor import (
    ChunkFailure,
    SupervisingExecutor,
    SupervisorConfig,
)
from repro.core.chips import ChipPopulation
from repro.core.reduce import CampaignResult, ChipRetrainingResult, ReduceFramework
from repro.core.selection import FixedEpochPolicy, RetrainingPolicy
from repro.mitigation.strategy import StrategyLike, resolve_strategy
from repro.observability import (
    metrics,
    trace,
    write_chrome_trace,
    write_merged_metrics,
)
from repro.utils.logging import get_logger
from repro.utils.timing import Timer, format_duration

logger = get_logger("campaign.engine")

PathLike = Union[str, Path]

# Per-worker framework, built once by the pool initializer.  Under the
# ``fork`` start method the worker inherits the parent's in-memory context
# cache, so initialization is instant; under ``spawn`` the context is rebuilt
# (hitting the on-disk pre-trained-state cache when one is configured).
_WORKER_FRAMEWORK: Optional[ReduceFramework] = None
_WORKER_FAT_BATCH: int = 1
_WORKER_OBS_DIR: Optional[str] = None


def _initialize_worker(
    preset,
    disk_cache_dir: Optional[str],
    fat_batch: int,
    trace_dir: Optional[str] = None,
    metrics_enabled: bool = False,
    prefetch: bool = True,
    lowering_cache_mb: Optional[float] = None,
) -> None:
    global _WORKER_FRAMEWORK, _WORKER_FAT_BATCH, _WORKER_OBS_DIR
    from repro.experiments.common import ExperimentContext

    # Observability propagates through the dispatch path: each worker records
    # spans into its own pid-keyed shard of the parent's trace directory.
    # ``enable`` is explicit for spawn-started workers; fork-started workers
    # would inherit an enabled tracer anyway, but re-enabling also drops any
    # inherited file handle so the worker never writes to the parent's shard.
    if trace_dir is not None:
        trace.enable(trace_dir)
    metrics.enabled = bool(metrics_enabled)
    # Fork-started workers inherit the parent's counter values; a worker
    # shard must only report work done *in* this process, or merging would
    # double-count everything the parent recorded before the fork.
    metrics.reset()
    _WORKER_OBS_DIR = trace_dir
    context = ExperimentContext.from_preset(preset, disk_cache_dir=disk_cache_dir)
    # Configure before building the framework so every framework this worker
    # creates shares the context's (possibly fork-inherited, already warm)
    # lowering cache with the right knobs.
    context.configure_eval_pipeline(
        prefetch=prefetch, lowering_cache_mb=lowering_cache_mb
    )
    _WORKER_FRAMEWORK = context.framework()
    _WORKER_FAT_BATCH = fat_batch


def _execute_chunk_in_worker(
    chunk: List[ChipJob], attempt: int = 0
) -> List[ChipRetrainingResult]:
    assert _WORKER_FRAMEWORK is not None, "worker initializer did not run"
    results = execute_job_chunk(
        _WORKER_FRAMEWORK, chunk, fat_batch=_WORKER_FAT_BATCH, attempt=attempt
    )
    if _WORKER_OBS_DIR is not None:
        # Atomic per-pid replace: cheap, idempotent, and always current so a
        # killed worker still leaves its latest snapshot behind.
        metrics.write_shard(_WORKER_OBS_DIR)
    return results


def _supervised_worker_initializer(
    preset,
    disk_cache_dir: Optional[str],
    fat_batch: int,
    trace_dir: Optional[str],
    metrics_enabled: bool,
    chaos_schedule: Optional[ChaosSchedule],
    prefetch: bool = True,
    lowering_cache_mb: Optional[float] = None,
):
    """Build the per-process chunk executor for the supervising executor.

    Runs once in each (possibly respawned) worker: initializes the framework
    and observability exactly like the old pool initializer, then returns
    the ``execute(chunk, chunk_index, attempt)`` callable the supervisor
    drives.  The chaos schedule travels with the initializer args, so a
    replacement worker fires the same planned faults as the one it replaced.
    """
    _initialize_worker(
        preset, disk_cache_dir, fat_batch, trace_dir, metrics_enabled,
        prefetch=prefetch, lowering_cache_mb=lowering_cache_mb,
    )

    def execute(
        chunk: List[ChipJob], chunk_index: int, attempt: int
    ) -> List[ChipRetrainingResult]:
        if chaos_schedule is not None:
            chaos_schedule.maybe_inject(chunk_index, attempt)
        return _execute_chunk_in_worker(chunk, attempt=attempt)

    return execute


def _start_method() -> str:
    # Fork is preferred where reliable (workers inherit the parent's context
    # cache for free), but macOS system frameworks are not fork-safe — the
    # reason CPython made spawn the macOS default — so fork is used on Linux
    # only.  Spawned workers rebuild their context, hitting the on-disk
    # pre-trained-state cache when one is configured.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


@dataclasses.dataclass
class CampaignReport:
    """Bookkeeping of one engine run (what executed, what was resumed)."""

    policy_name: str
    total_chips: int
    executed: int
    skipped: int
    jobs: int
    elapsed_seconds: float
    fingerprint: Optional[str] = None
    store_dir: Optional[Path] = None
    failed: int = 0

    @property
    def chips_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf") if self.executed else 0.0
        return self.executed / self.elapsed_seconds

    def describe(self) -> str:
        parts = [
            f"policy={self.policy_name}",
            f"chips={self.total_chips}",
            f"executed={self.executed}",
            f"skipped={self.skipped}",
            f"jobs={self.jobs}",
            f"elapsed={format_duration(self.elapsed_seconds)}",
        ]
        if self.failed:
            parts.append(f"failed={self.failed}")
        if self.executed:
            parts.append(f"rate={self.chips_per_second:.2f}chips/s")
        if self.store_dir is not None:
            parts.append(f"store={self.store_dir}")
        return " ".join(parts)


class CampaignEngine:
    """Run retraining campaigns over chip populations, sharded and resumable.

    Parameters
    ----------
    context:
        An :class:`~repro.experiments.common.ExperimentContext` providing the
        pre-trained model, dataset and array.
    jobs:
        Number of worker processes; ``1`` (the default) executes inline with
        no multiprocessing involved.
    store_base:
        Base directory for persistent result stores.  ``None`` keeps results
        in memory only (the legacy behaviour).
    resume:
        When a store is used, skip chips whose results are already recorded.
    progress:
        Log one line per completed chip.
    chunk_size:
        Retained for backward compatibility (the old pool ``chunksize``).
        The supervising executor always dispatches one chunk per worker at a
        time — that is both the resume granularity and the unit of
        reassignment — so values other than 1 are accepted but ignored.
    disk_cache_dir:
        Forwarded to workers so spawned processes can load the pre-trained
        state from the on-disk context cache instead of re-pre-training.
    fat_batch:
        Maximum number of same-budget chips retrained together in one
        stacked batched-FAT run — the plan chunk size.  Applies to the
        inline path and to every worker at ``jobs > 1``; ``1`` disables
        coalescing.  Results are bit-identical either way; the stacked runs
        just share every GEMM across the batch.
    heartbeat_seconds:
        Interval of the progress heartbeat (one INFO line with completed/
        total chips and chips/s throughput).  ``None`` disables it.
    max_chunk_retries:
        Re-executions allowed per chunk after a worker death, hang or
        transient exception before the chunk is quarantined (default 2, so a
        chunk runs at most 3 times).
    chunk_timeout:
        Fixed per-chunk deadline in seconds for hang detection.  ``None``
        (the default) adapts the deadline to the observed chunk durations;
        see :class:`~repro.campaign.supervisor.SupervisorConfig`.
    chaos:
        Deterministic fault-injection spec (a string in the ``--chaos``
        grammar or a :class:`~repro.campaign.chaos.ChaosSpec`); ``None``
        disables injection.  Chaos never changes committed values — retried
        chunks are bit-identical — it only exercises the recovery paths.
    supervisor_config:
        Full :class:`~repro.campaign.supervisor.SupervisorConfig` override
        (tests tune backoff/poll intervals through this).  When given, it is
        used verbatim and ``max_chunk_retries``/``chunk_timeout`` are
        ignored.
    backend:
        Compute backend every job is tagged with — the batched substrate
        (triage sweeps, stacked evaluators and trainers) replays its
        captured op graphs through it.  ``None`` keeps the eager path;
        ``"numpy"`` is the always-available reference replay (bit-identical
        to eager, so it shares fingerprints with it); ``"fused"`` merges hot
        chains and JIT-compiles them when numba is available, falling back
        to ``"numpy"`` (with a logged warning) otherwise.  The job carries
        the tag, so worker processes honour it without extra configuration.
    prefetch:
        Background double-buffering of eval-batch lowerings (``False`` ←
        ``--no-prefetch``): while one batch's stacked GEMMs run, a helper
        thread lowers the next batch.  Pure throughput knob — results are
        bit-identical either way — applied to the inline path and every
        worker.
    lowering_cache_mb:
        Byte cap (in MB) of the shared eval-lowering cache
        (``--lowering-cache-mb``); ``None`` keeps the default
        (:data:`~repro.accelerator.batched.DEFAULT_LOWERING_CACHE_MB`).
        LRU entries are evicted past the cap — a throughput fallback, never
        a correctness change.
    listen:
        ``(host, port)`` to accept socket workers on (``--listen``); turns
        the engine distributed.  Port ``0`` binds an ephemeral port — the
        bound address is ``engine.listen_address``.
    workers:
        ``(host, port)`` addresses of listening socket workers the
        coordinator should dial (``--workers host:port,…``); also turns the
        engine distributed.  In distributed mode ``jobs`` is the number of
        *local* socket workers forked alongside the remote ones and may be
        ``0`` (remote-only execution).
    scheduler_config:
        Transport knobs (:class:`~repro.campaign.scheduler.SchedulerConfig`)
        of the distributed coordinator; chunk retry/deadline policy stays in
        ``supervisor_config`` and is shared with the local executor.
    """

    DEFAULT_FAT_BATCH = 8
    DEFAULT_HEARTBEAT_SECONDS = 30.0
    DEFAULT_MAX_CHUNK_RETRIES = 2

    def __init__(
        self,
        context,
        jobs: int = 1,
        store_base: Optional[PathLike] = None,
        resume: bool = True,
        progress: bool = False,
        chunk_size: Optional[int] = None,
        disk_cache_dir: Optional[PathLike] = None,
        fat_batch: Optional[int] = None,
        heartbeat_seconds: Optional[float] = DEFAULT_HEARTBEAT_SECONDS,
        max_chunk_retries: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        chaos: Optional[Union[str, ChaosSpec]] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
        backend: Optional[str] = None,
        prefetch: bool = True,
        lowering_cache_mb: Optional[float] = None,
        listen: Optional[Tuple[str, int]] = None,
        workers: Optional[Sequence[Tuple[str, int]]] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.distributed = listen is not None or bool(workers)
        if self.distributed:
            # jobs counts *local socket workers* here; 0 = remote-only.
            if jobs < 0:
                raise ValueError(f"jobs must be >= 0 in distributed mode, got {jobs}")
        elif jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if fat_batch is not None and fat_batch < 1:
            raise ValueError(f"fat_batch must be >= 1, got {fat_batch}")
        if heartbeat_seconds is not None and heartbeat_seconds < 0:
            raise ValueError(
                f"heartbeat_seconds must be non-negative, got {heartbeat_seconds}"
            )
        if lowering_cache_mb is not None and lowering_cache_mb < 0:
            raise ValueError(
                f"lowering_cache_mb must be non-negative, got {lowering_cache_mb}"
            )
        self.context = context
        self.jobs = int(jobs)
        self.store_base = Path(store_base) if store_base is not None else None
        self.resume = resume
        self.progress = progress
        self.chunk_size = chunk_size
        self.disk_cache_dir = str(disk_cache_dir) if disk_cache_dir is not None else None
        self.fat_batch = int(fat_batch) if fat_batch is not None else self.DEFAULT_FAT_BATCH
        self.heartbeat_seconds = heartbeat_seconds
        self.chaos_spec = resolve_chaos(chaos)
        self.backend = backend
        self.prefetch = bool(prefetch)
        self.lowering_cache_mb = (
            float(lowering_cache_mb) if lowering_cache_mb is not None else None
        )
        if supervisor_config is not None:
            self.supervisor_config = supervisor_config
        else:
            # SupervisorConfig validates the retry/timeout ranges.
            self.supervisor_config = SupervisorConfig(
                max_chunk_retries=(
                    int(max_chunk_retries)
                    if max_chunk_retries is not None
                    else self.DEFAULT_MAX_CHUNK_RETRIES
                ),
                chunk_timeout=chunk_timeout,
            )
        self.last_report: Optional[CampaignReport] = None

        self._coordinator: Optional[CampaignCoordinator] = None
        self._local_socket_workers: List[multiprocessing.process.BaseProcess] = []
        self.listen_address: Optional[Tuple[str, int]] = None
        if self.distributed:
            self._coordinator = CampaignCoordinator(
                preset=context.preset,
                listen=listen,
                connect=list(workers or ()),
                backend=self.backend,
                fat_batch=self.fat_batch,
                prefetch=self.prefetch,
                lowering_cache_mb=self.lowering_cache_mb,
                supervisor_config=self.supervisor_config,
                config=scheduler_config,
            )
            self.listen_address = self._coordinator.address
            if self.chaos_spec is not None:
                logger.warning(
                    "campaign: chaos process faults are not propagated to "
                    "socket workers (kill them externally to exercise the "
                    "distributed recovery path); torn-write injection still "
                    "applies coordinator-side"
                )

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        population: ChipPopulation,
        policy: RetrainingPolicy,
        strategy: StrategyLike = None,
        triage: Optional[Dict[str, float]] = None,
    ) -> CampaignResult:
        """Execute Step 3 for every chip under ``policy`` (Steps 1+2 given).

        ``strategy`` selects the mitigation recipe every job is tagged with
        (default: classic FAT) — the fingerprint, the store and the planner
        all key on it, so each strategy of a sweep owns its own resumable
        store.  ``triage`` optionally shares pre-computed (or to-be-computed)
        ``accuracy_before`` values across runs: missing chips are evaluated
        in one batched pass and written back into the mapping, so a sweep can
        hand the same dict to every strategy that measures its initial
        accuracy under the same masks.
        """
        strategy = resolve_strategy(strategy)
        with trace.span(
            "campaign.run",
            policy=policy.name,
            strategy=strategy.name,
            jobs=self.jobs,
            backend=self.backend or "eager",
        ) as run_span:
            result = self._run(population, policy, strategy, triage, run_span)
        self._write_observability_artifacts()
        return result

    def _run(
        self,
        population: ChipPopulation,
        policy: RetrainingPolicy,
        strategy,
        triage: Optional[Dict[str, float]],
        run_span,
    ) -> CampaignResult:
        metrics.gauge("campaign.phase").set("plan")
        # Eval-pipeline knobs apply to the context (and so to every framework
        # built from it, here and in this run's inline chunk executions); the
        # shared lowering cache survives across runs of the same engine and
        # across sweep arms sharing the context.
        self.context.configure_eval_pipeline(
            prefetch=self.prefetch, lowering_cache_mb=self.lowering_cache_mb
        )
        with trace.span("campaign.plan", stage="build_jobs"):
            framework = self.context.framework()
            job_list = build_jobs(
                framework, population, policy, strategy=strategy, backend=self.backend
            )
            target_accuracy = framework.target_accuracy
            clean_accuracy = framework.clean_accuracy
            run_span.set(chips=len(job_list))

            store: Optional[CampaignStore] = None
            fingerprint: Optional[str] = None
            if self.store_base is not None:
                fingerprint = campaign_fingerprint(
                    self.context.preset, policy.name, target_accuracy, job_list
                )
                store = CampaignStore.open(
                    self.store_base,
                    fingerprint,
                    manifest={
                        "policy": policy.name,
                        "strategy": strategy.name,
                        "preset": self.context.preset.name,
                        "num_chips": len(job_list),
                        "target_accuracy": target_accuracy,
                        "clean_accuracy": clean_accuracy,
                        "array_shape": list(population.array_shape),
                        "backend": self.backend or "eager",
                    },
                )

        known: Dict[str, ChipRetrainingResult] = {}
        if store is not None:
            if self.resume:
                metrics.gauge("campaign.phase").set("resume_scan")
                with trace.span("campaign.resume_scan"):
                    store.compact()
                    wanted = {job.chip_id for job in job_list}
                    known = {
                        chip_id: result
                        for chip_id, result in store.completed().items()
                        if chip_id in wanted
                    }
            else:
                store.clear_results()

        pending = [job for job in job_list if job.chip_id not in known]
        if known:
            logger.info(
                "campaign %s: resuming, %d/%d chips already recorded in %s",
                policy.name,
                len(known),
                len(job_list),
                store.directory if store is not None else "?",
            )

        timer = Timer().start()
        done = len(known)

        if pending:
            # Batched triage: the initial accuracy checkpoint of every pending
            # chip is B masked variants of the same pre-trained model, so one
            # multi-chip sweep replaces |pending| serial test-set passes.  The
            # values are numerically identical to the serial evaluation, and
            # zero-epoch jobs become pure lookups for the executor.  A caller-
            # supplied ``triage`` dict is consulted first and extended in
            # place, so sweeps share one pass among same-mask strategies.
            metrics.gauge("campaign.phase").set("triage")
            with trace.span("campaign.triage", chips=len(pending)):
                triage = triage if triage is not None else {}
                missing = [job.to_chip() for job in pending if job.chip_id not in triage]
                if missing:
                    triage.update(
                        framework.triage_population(
                            missing, strategy=strategy, backend=self.backend
                        )
                    )
                pending = [
                    job.with_accuracy_before(triage[job.chip_id])
                    if job.chip_id in triage
                    else job
                    for job in pending
                ]

        executed = 0
        last_heartbeat = time.monotonic()
        chips_counter = metrics.counter(
            "campaign.chips_completed", strategy=strategy.name
        )
        heartbeat_count = chips_counter.value
        # Planned after chunking (the schedule needs the chunk count); the
        # closure below reads the rebound value at call time.
        chaos_schedule: Optional[ChaosSchedule] = None

        def record_chunk(results: Sequence[ChipRetrainingResult]) -> None:
            """Group-result protocol: persist + account one chunk at a time."""
            nonlocal done, executed, last_heartbeat, heartbeat_count
            if store is not None:
                store.append_many(results)
                if chaos_schedule is not None:
                    chaos_schedule.maybe_tear(store)
            metrics.counter("campaign.chunks_recorded").inc()
            chips_counter.inc(len(results))
            for result in results:
                known[result.chip_id] = result
                done += 1
                executed += 1
                # Committed-chip instants are emitted parent-side *after* the
                # store append succeeded, so a merged trace never contains
                # duplicate chip events across a kill/resume cycle (resumed
                # chips are loaded from the store and emit none).
                trace.instant(
                    "campaign.chip", chip_id=result.chip_id, strategy=strategy.name
                )
                if self.progress:
                    logger.info(
                        "campaign %s: %d/%d chip %s rate=%.3f epochs=%.3f acc=%.3f meets=%s",
                        policy.name,
                        done,
                        len(job_list),
                        result.chip_id,
                        result.fault_rate,
                        result.epochs_trained,
                        result.accuracy_after,
                        result.meets_constraint,
                    )
            now = time.monotonic()
            if (
                self.heartbeat_seconds is not None
                and now - last_heartbeat >= self.heartbeat_seconds
                and done < len(job_list)
            ):
                # Recent rate from the chips-completed counter delta over the
                # heartbeat window (falling back to the cumulative rate on the
                # first beat), which feeds the ETA for the remaining chips.
                window = max(now - last_heartbeat, 1e-9)
                recent_rate = (chips_counter.value - heartbeat_count) / window
                last_heartbeat = now
                heartbeat_count = chips_counter.value
                elapsed_so_far = max(now - started, 1e-9)
                rate = recent_rate if recent_rate > 0 else executed / elapsed_so_far
                remaining = len(job_list) - done
                phase = metrics.gauge("campaign.phase").value or "execute"
                eta = format_duration(remaining / rate) if rate > 0 else "?"
                logger.info(
                    "campaign %s: heartbeat %d/%d chips done "
                    "(%.1f chips/s, eta %s, phase %s)",
                    policy.name,
                    done,
                    len(job_list),
                    rate,
                    eta,
                    phase,
                )

        failures: List[ChunkFailure] = []
        if pending:
            # Worker-aware planning: one big same-budget group still splits
            # across all requested workers instead of starving them.
            metrics.gauge("campaign.phase").set("plan")
            with trace.span("campaign.plan", stage="chunk", chips=len(pending)):
                plan = plan_job_chunks(
                    pending, self.fat_batch, workers=self._plan_worker_hint()
                )
            metrics.counter("campaign.chunks_planned").inc(len(plan))
            if self.chaos_spec is not None:
                chaos_schedule = self.chaos_spec.schedule(len(plan))
                logger.warning(
                    "campaign %s: chaos injection enabled (%s) over %d chunks",
                    policy.name,
                    self.chaos_spec.describe(),
                    len(plan),
                )
            batched_chips = sum(len(chunk) for chunk in plan if len(chunk) > 1)
            if batched_chips:
                logger.info(
                    "campaign %s: planned %d chips into %d chunks, "
                    "%d chips in stacked batched-FAT chunks (fat_batch=%d)",
                    policy.name,
                    len(pending),
                    len(plan),
                    batched_chips,
                    self.fat_batch,
                )
            started = time.monotonic()
            # Triaged zero-epoch jobs are pure result-row lookups: spinning
            # up a pool (whose workers rebuild a framework each) to format
            # them would cost far more than executing them here, so
            # non-retraining strategy campaigns always run inline.
            all_lookups = all(
                job.epochs == 0 and job.accuracy_before is not None
                for job in pending
            )
            metrics.gauge("campaign.phase").set("execute")
            with trace.span(
                "campaign.execute", chunks=len(plan), chips=len(pending)
            ):
                if self._coordinator is not None and not all_lookups:
                    failures = self._execute_distributed(plan, record_chunk, strategy)
                elif self.jobs > 1 and len(plan) > 1 and not all_lookups:
                    failures = self._execute_parallel(
                        plan, record_chunk, chaos_schedule
                    )
                else:
                    failures = self._execute_inline(
                        framework, plan, record_chunk, chaos_schedule
                    )
        elapsed = timer.stop()
        metrics.gauge("campaign.phase").set("finalize")

        # Graceful degradation: quarantined chunks become per-chip failure
        # records instead of an engine crash.  The store's quarantine file is
        # rewritten every run — cleared when a previously-poisoned campaign
        # completes cleanly — and a chaos-torn trailing fragment (or any other
        # torn tail) is repaired before the store is handed back to callers.
        failed_chips: List[Dict[str, object]] = [
            record for failure in failures for record in failure.to_chip_records()
        ]
        if failed_chips:
            metrics.counter("campaign.chips_failed").inc(len(failed_chips))
            logger.error(
                "campaign %s: %d chip(s) in %d quarantined chunk(s) failed "
                "permanently: %s",
                policy.name,
                len(failed_chips),
                len(failures),
                ", ".join(str(record["chip_id"]) for record in failed_chips),
            )
        if store is not None:
            store.write_quarantine([failure.to_dict() for failure in failures])
            store.repair()

        self.last_report = CampaignReport(
            policy_name=policy.name,
            total_chips=len(job_list),
            executed=len(pending) - len(failed_chips),
            skipped=len(job_list) - len(pending),
            jobs=self.jobs,
            elapsed_seconds=elapsed,
            fingerprint=fingerprint,
            store_dir=store.directory if store is not None else None,
            failed=len(failed_chips),
        )
        logger.info("campaign finished: %s", self.last_report.describe())
        if self.last_report.executed:
            metrics.gauge(
                "campaign.chips_per_second", strategy=strategy.name
            ).set(self.last_report.chips_per_second)

        results = [known[job.chip_id] for job in job_list if job.chip_id in known]
        return CampaignResult(
            policy_name=policy.name,
            target_accuracy=target_accuracy,
            clean_accuracy=clean_accuracy,
            results=results,
            failed_chips=failed_chips,
        )

    def _write_observability_artifacts(self) -> None:
        """Refresh merged trace/metrics artifacts after a run (idempotent).

        Re-running after every ``run()`` keeps the merged views current for
        multi-arm sweeps: each arm's spans simply extend the same shards and
        the merge is rewritten atomically.
        """
        if not (trace.enabled or metrics.enabled):
            return
        # Snapshot process-wide cache stats into gauges so the merged metrics
        # carry fault-mask LRU effectiveness without touching mapping.py's
        # hot path (the counters there are plain dict increments already).
        from repro.accelerator.mapping import mask_cache_stats

        for key, value in mask_cache_stats().items():
            metrics.gauge(f"mask_cache.{key}").set(value)
        directory = trace.directory
        if trace.enabled and directory is not None:
            trace.flush()
            metrics.write_shard(directory)
            write_chrome_trace(directory)
            write_merged_metrics(directory)
        elif (
            metrics.enabled
            and self.last_report is not None
            and self.last_report.store_dir is not None
        ):
            metrics.write_shard(self.last_report.store_dir)
            write_merged_metrics(self.last_report.store_dir)

    def run_reduce(
        self,
        population: ChipPopulation,
        statistic: str = "max",
        strategy: StrategyLike = None,
    ) -> CampaignResult:
        """Steps 1+2+3 with the resilience-driven policy (Step 1 cached)."""
        self.context.resilience_profile()
        policy = self.context.framework().build_policy(statistic)
        return self.run(population, policy, strategy=strategy)

    def run_fixed(
        self,
        population: ChipPopulation,
        epochs: float,
        strategy: StrategyLike = None,
    ) -> CampaignResult:
        """The fixed-budget baseline through the engine."""
        return self.run(population, FixedEpochPolicy(epochs), strategy=strategy)

    # -- executor: inline dispatch ---------------------------------------------------

    def _execute_inline(
        self,
        framework,
        plan: Sequence[List[ChipJob]],
        record_chunk: Callable[[Sequence[ChipRetrainingResult]], None],
        chaos_schedule: Optional[ChaosSchedule] = None,
    ) -> List[ChunkFailure]:
        """Execute the plan in-process, one chunk at a time (Step 3).

        Results are recorded (and persisted) after every chunk, so a killed
        campaign loses at most the chunk in flight rather than a whole
        budget group.  The supervisor's retry/quarantine policy applies here
        too: a chunk that raises is retried (with backoff) up to
        ``max_chunk_retries`` times and then quarantined, so one poisoned
        chip cannot take down an otherwise healthy inline campaign.  Chaos
        process faults (kill/hang) are downgraded to no-ops inline — killing
        the only process is not a recoverable fault.
        """
        config = self.supervisor_config
        failures: List[ChunkFailure] = []
        for index, chunk in enumerate(plan):
            attempt = 0
            while True:
                try:
                    if chaos_schedule is not None:
                        chaos_schedule.maybe_inject(
                            index, attempt, allow_process_faults=False
                        )
                    results = execute_job_chunk(
                        framework, chunk, fat_batch=self.fat_batch, attempt=attempt
                    )
                except Exception as error:  # noqa: BLE001 - quarantine boundary
                    attempt += 1
                    if attempt > config.max_chunk_retries:
                        metrics.counter("campaign.chunks_quarantined").inc()
                        trace.instant(
                            "campaign.chunk_quarantined",
                            chunk=index,
                            attempts=attempt,
                            error=repr(error),
                        )
                        logger.error(
                            "campaign: quarantining chunk %d after %d attempt(s): %r",
                            index,
                            attempt,
                            error,
                        )
                        failures.append(
                            ChunkFailure(
                                chunk=list(chunk), attempts=attempt, error=repr(error)
                            )
                        )
                        break
                    metrics.counter("campaign.chunk_retries").inc()
                    trace.instant(
                        "campaign.chunk_retry",
                        chunk=index,
                        attempt=attempt,
                        cause="exception",
                    )
                    backoff = config.backoff_seconds(attempt)
                    logger.warning(
                        "campaign: chunk %d failed inline (attempt %d/%d), "
                        "retrying in %.2fs: %r",
                        index,
                        attempt,
                        config.max_chunk_retries + 1,
                        backoff,
                        error,
                    )
                    if backoff > 0:
                        time.sleep(backoff)
                else:
                    record_chunk(results)
                    break
        return failures

    # -- executor: parallel dispatch -------------------------------------------------

    def _execute_parallel(
        self,
        plan: Sequence[List[ChipJob]],
        record_chunk: Callable[[Sequence[ChipRetrainingResult]], None],
        chaos_schedule: Optional[ChaosSchedule] = None,
    ) -> List[ChunkFailure]:
        """Dispatch whole plan chunks to supervised worker processes.

        Each dispatch hands a worker one batched chunk (the unit of both
        stacked-GEMM coalescing and resume granularity); the worker runs it
        through its own framework — the population-shared FAT seed makes the
        result independent of which process executes which chunk — and the
        parent records the whole group as it arrives.  The supervisor owns
        all recovery decisions: it respawns dead workers, reassigns their
        in-flight chunks, kills hung workers past the chunk deadline, and
        quarantines chunks that exhaust their retry budget (returned as
        :class:`~repro.campaign.supervisor.ChunkFailure` records).
        """
        workers = min(self.jobs, len(plan))
        mp_context = multiprocessing.get_context(_start_method())
        total_chips = sum(len(chunk) for chunk in plan)
        logger.info(
            "campaign: dispatching %d chips in %d chunks across %d supervised "
            "workers (start=%s, fat_batch=%d, max_chunk_retries=%d)",
            total_chips,
            len(plan),
            workers,
            mp_context.get_start_method(),
            self.fat_batch,
            self.supervisor_config.max_chunk_retries,
        )
        trace_dir = (
            str(trace.directory) if trace.enabled and trace.directory else None
        )
        executor = SupervisingExecutor(
            plan,
            record_chunk,
            workers=workers,
            mp_context=mp_context,
            initializer=_supervised_worker_initializer,
            initargs=(
                self.context.preset,
                self.disk_cache_dir,
                self.fat_batch,
                trace_dir,
                metrics.enabled,
                chaos_schedule,
                self.prefetch,
                self.lowering_cache_mb,
            ),
            config=self.supervisor_config,
        )
        return executor.run()

    # -- executor: distributed dispatch ----------------------------------------------

    def _plan_worker_hint(self) -> int:
        """Worker count for plan sizing (local pool or socket fleet)."""
        if self._coordinator is None:
            return max(1, self.jobs)
        return max(1, self.jobs + self._coordinator.worker_hint())

    def _ensure_local_socket_workers(self) -> None:
        """Fork ``jobs`` local socket workers joined to our own coordinator.

        Lazy (first distributed execution) so a remote-only campaign never
        forks, and idempotent across sweep arms — dead workers are replaced.
        Local workers speak the same socket protocol as remote ones: one
        execution path, one recovery story.
        """
        assert self._coordinator is not None
        self._local_socket_workers = [
            process for process in self._local_socket_workers if process.is_alive()
        ]
        missing = self.jobs - len(self._local_socket_workers)
        if missing <= 0:
            return
        mp_context = multiprocessing.get_context(_start_method())
        join_address = ("127.0.0.1", self._coordinator.address[1])
        for _ in range(missing):
            process = mp_context.Process(
                target=_local_worker_main,
                args=(join_address, self.disk_cache_dir),
                daemon=True,
                name="campaign-socket-worker",
            )
            process.start()
            self._local_socket_workers.append(process)
        logger.info(
            "campaign: started %d local socket worker(s) joining %s",
            missing,
            f"{join_address[0]}:{join_address[1]}",
        )

    def _execute_distributed(
        self,
        plan: Sequence[List[ChipJob]],
        record_chunk: Callable[[Sequence[ChipRetrainingResult]], None],
        strategy,
    ) -> List[ChunkFailure]:
        """Serve plan chunks to the socket worker fleet via the coordinator.

        Results commit through ``record_chunk`` on this thread exactly like
        the local executors, so the store/fsync/resume protocol — and the
        bit-identity guarantee — is unchanged; only the transport differs.
        """
        assert self._coordinator is not None
        self._ensure_local_socket_workers()
        total_chips = sum(len(chunk) for chunk in plan)
        logger.info(
            "campaign: serving %d chips in %d chunks to socket workers "
            "(%d local, listening on %s)",
            total_chips,
            len(plan),
            self.jobs,
            f"{self.listen_address[0]}:{self.listen_address[1]}",
        )
        return self._coordinator.run_plan(
            plan, record_chunk, strategy=strategy.name
        )

    def close(self) -> None:
        """Shut down the distributed fleet (idempotent; no-op when local)."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        for process in self._local_socket_workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - shutdown stragglers
                process.terminate()
                process.join(timeout=5.0)
        self._local_socket_workers = []

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_campaign(
    context,
    population: ChipPopulation,
    policy: RetrainingPolicy,
    jobs: int = 1,
    store_base: Optional[PathLike] = None,
    resume: bool = True,
    progress: bool = False,
    fat_batch: Optional[int] = None,
    strategy: StrategyLike = None,
    backend: Optional[str] = None,
    prefetch: bool = True,
    lowering_cache_mb: Optional[float] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        context,
        jobs=jobs,
        store_base=store_base,
        resume=resume,
        progress=progress,
        fat_batch=fat_batch,
        backend=backend,
        prefetch=prefetch,
        lowering_cache_mb=lowering_cache_mb,
    )
    return engine.run(population, policy, strategy=strategy)
