"""Supervising executor: fault-tolerant dispatch of plan chunks to workers.

The previous executor iterated ``Pool.imap_unordered`` over the plan — a
SIGKILLed pool worker (OOM killer, preempted VM, a crashing BLAS) could hang
the parent forever, and there was no retry or quarantine story at all.  This
module replaces the pool with an explicitly supervised set of worker
processes, following the centralized-scheduler discipline of large
fault-tolerant training systems: the parent always knows *which chunk is in
flight on which process* and owns every recovery decision.

Supervision loop
----------------
Each worker is a ``multiprocessing.Process`` with its own task queue and a
shared result queue.  The parent dispatches one chunk per idle worker and
then reacts to three kinds of events:

* **Completion** — the worker reports ``(chunk_index, results)``; the chunk
  is committed through the engine's ``record_chunk`` (append + fsync) and
  the worker returns to the idle set.  Late results for a chunk that was
  already reassigned and committed are dropped, so the store never records
  a chunk twice.
* **Worker death** — the process's ``exitcode`` flips while a chunk is in
  flight (detected every poll interval; no blocking join on a corpse).  The
  chunk is retried on a healthy worker with exponential backoff and a
  replacement worker is spawned.
* **Hang** — a dispatched chunk outlives its deadline.  With an explicit
  ``chunk_timeout`` the deadline is fixed; otherwise it adapts to the
  observed chunk durations (``timeout_factor x`` the slowest completed
  chunk, floored at ``timeout_floor``) so a campaign whose chunks take
  minutes is not killed by a default tuned for seconds.  The wedged process
  is SIGKILLed and handled exactly like a death.

Transient exceptions inside a chunk (including chaos-injected ones) keep the
worker alive: the chunk is retried, the worker goes back to the idle set.

Retries are capped at ``max_chunk_retries`` per chunk; a chunk that fails
beyond the cap — e.g. a poison chunk that kills every worker it touches —
is **quarantined**: reported as a :class:`ChunkFailure`, persisted by the
engine to ``quarantine.jsonl``, and the campaign completes every other chunk
instead of crashing.  Because the retraining seed is population-shared,
re-executing a chunk on any worker commits bit-identical rows, so recovery
is invisible in ``results.jsonl``.
"""

from __future__ import annotations

import dataclasses
import queue as queue_module
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.chaos import ChaosSchedule
from repro.campaign.jobs import ChipJob
from repro.observability import metrics, trace
from repro.utils.logging import get_logger

logger = get_logger("campaign.supervisor")


@dataclasses.dataclass
class SupervisorConfig:
    """Fault-tolerance knobs of the supervising executor.

    ``max_chunk_retries`` is the number of *re-executions* allowed per chunk
    (so a chunk runs at most ``max_chunk_retries + 1`` times before it is
    quarantined).  ``chunk_timeout`` fixes the per-chunk deadline in seconds;
    ``None`` derives it from observed durations as
    ``max(timeout_floor, timeout_factor * slowest completed chunk)`` — until
    a first chunk completes there is no deadline, so a cold campaign is never
    killed by a mis-tuned default.  Backoff before the n-th retry is
    ``backoff_base * 2**(n-1)`` capped at ``backoff_max`` seconds.
    """

    max_chunk_retries: int = 2
    chunk_timeout: Optional[float] = None
    timeout_factor: float = 10.0
    timeout_floor: float = 30.0
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    poll_interval: float = 0.05
    join_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be >= 0, got {self.max_chunk_retries}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )
        if self.timeout_factor <= 0 or self.timeout_floor < 0:
            raise ValueError("timeout_factor must be > 0 and timeout_floor >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff values must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before dispatching attempt ``attempt`` (attempt 0 = none)."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_max)


@dataclasses.dataclass
class ChunkFailure:
    """A quarantined chunk: its jobs, the attempt count, and the last error."""

    chunk: List[ChipJob]
    attempts: int
    error: str

    @property
    def chip_ids(self) -> List[str]:
        return [job.chip_id for job in self.chunk]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chip_ids": self.chip_ids,
            "attempts": self.attempts,
            "error": self.error,
            "epochs": self.chunk[0].epochs if self.chunk else None,
            "strategy": self.chunk[0].strategy if self.chunk else None,
        }

    def to_chip_records(self) -> List[Dict[str, Any]]:
        """Per-chip failure records for ``CampaignResult.failed_chips``."""
        return [
            {
                "chip_id": job.chip_id,
                "reason": self.error,
                "attempts": self.attempts,
                "strategy": job.strategy,
                "epochs": job.epochs,
            }
            for job in self.chunk
        ]


def _supervised_worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    initializer: Callable[..., Callable[[List[ChipJob], int, int], Any]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker loop: initialize once, then execute dispatched chunks forever.

    ``initializer(*initargs)`` builds the per-process execute callable (the
    engine's framework + chaos installation); each task is
    ``(chunk_index, attempt, chunk)`` and each report is
    ``("done"|"error", worker_id, chunk_index, attempt, payload)``.  A
    ``None`` task is the shutdown sentinel.
    """
    try:
        execute = initializer(*initargs)
    except Exception as error:  # pragma: no cover - init failures are fatal
        result_queue.put(("init_error", worker_id, -1, 0, repr(error)))
        return
    result_queue.put(("ready", worker_id, -1, 0, None))
    while True:
        task = task_queue.get()
        if task is None:
            return
        chunk_index, attempt, chunk = task
        try:
            results = execute(chunk, chunk_index, attempt)
        except Exception as error:
            result_queue.put(
                ("error", worker_id, chunk_index, attempt, repr(error))
            )
        else:
            result_queue.put(("done", worker_id, chunk_index, attempt, results))


@dataclasses.dataclass
class _WorkerHandle:
    """Parent-side view of one worker process."""

    worker_id: int
    process: Any
    task_queue: Any
    chunk_index: Optional[int] = None
    attempt: int = 0
    dispatched_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.chunk_index is not None

    def alive(self) -> bool:
        return self.process.is_alive()


class _ChunkState:
    """Scheduling state of one plan chunk."""

    __slots__ = ("index", "chunk", "attempts", "not_before", "last_error", "status")

    def __init__(self, index: int, chunk: List[ChipJob]) -> None:
        self.index = index
        self.chunk = chunk
        self.attempts = 0  # executions started so far
        self.not_before = 0.0  # monotonic time before which it must not dispatch
        self.last_error = ""
        self.status = "pending"  # pending | running | done | quarantined


class ChunkLedger:
    """Transport-agnostic chunk-state machine of one campaign plan.

    The ledger owns everything about *what work is in which state* — ready
    selection with backoff, attempt counting, duplicate-completion dropping,
    retry-or-quarantine on failure, and the adaptive per-chunk deadline —
    while staying ignorant of *who* executes chunks.  The local
    :class:`SupervisingExecutor` (process pool) and the socket-transport
    :class:`~repro.campaign.scheduler.CampaignCoordinator` both drive their
    workers against one ledger, so a remote worker death is retried and
    quarantined by exactly the machinery PR 7 proved out locally.
    """

    def __init__(
        self, plan: Sequence[List[ChipJob]], config: Optional[SupervisorConfig] = None
    ) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self.chunks = [_ChunkState(i, list(chunk)) for i, chunk in enumerate(plan)]
        self.failures: List[ChunkFailure] = []
        self._durations: List[float] = []

    # -- deadline -------------------------------------------------------------

    def deadline_seconds(self) -> Optional[float]:
        """Per-chunk deadline: fixed, or adaptive from observed durations."""
        if self.config.chunk_timeout is not None:
            return self.config.chunk_timeout
        if not self._durations:
            return None
        return max(
            self.config.timeout_floor,
            self.config.timeout_factor * max(self._durations),
        )

    # -- scheduling -----------------------------------------------------------

    def outstanding(self) -> int:
        return sum(
            1 for state in self.chunks if state.status in ("pending", "running")
        )

    def ready_chunk(self, now: float) -> Optional[_ChunkState]:
        """The dispatchable chunk with the earliest backoff release."""
        best: Optional[_ChunkState] = None
        for state in self.chunks:
            if state.status != "pending" or state.not_before > now:
                continue
            if best is None or state.not_before < best.not_before:
                best = state
                if best.not_before <= 0.0:
                    break
        return best

    def start(self, state: _ChunkState) -> int:
        """Mark a chunk dispatched; returns its zero-based attempt index."""
        state.status = "running"
        state.attempts += 1
        return state.attempts - 1

    def complete(self, state: _ChunkState, duration: Optional[float]) -> bool:
        """Mark a chunk done; ``False`` when it was already committed.

        A hang-killed (or presumed-lost) worker that actually finished after
        its reassigned twin produces a duplicate completion: the caller must
        drop the payload so the store never records a chunk twice.
        """
        if state.status == "done":
            return False
        if duration is not None and duration > 0:
            self._durations.append(duration)
        state.status = "done"
        return True

    def fail(self, state: _ChunkState, error: str, now: float) -> None:
        """Retry (with backoff) or quarantine a failed chunk."""
        state.last_error = error
        if state.attempts > self.config.max_chunk_retries:
            state.status = "quarantined"
            failure = ChunkFailure(
                chunk=state.chunk, attempts=state.attempts, error=error
            )
            self.failures.append(failure)
            metrics.counter("campaign.chunks_quarantined").inc()
            trace.instant(
                "campaign.chunk_quarantined",
                chunk=state.index,
                attempts=state.attempts,
                chips=len(state.chunk),
                error=error,
            )
            logger.error(
                "chunk %d quarantined after %d attempt(s) (%d chip(s)): %s",
                state.index,
                state.attempts,
                len(state.chunk),
                error,
            )
            return
        backoff = self.config.backoff_seconds(state.attempts)
        state.status = "pending"
        state.not_before = now + backoff
        metrics.counter("campaign.chunk_retries").inc()
        trace.instant(
            "campaign.chunk_retry",
            chunk=state.index,
            attempt=state.attempts,
            backoff_seconds=backoff,
            error=error,
        )
        logger.warning(
            "chunk %d failed on attempt %d (%s); retrying in %.2fs",
            state.index,
            state.attempts,
            error,
            backoff,
        )


class ChunkCommitSequencer:
    """Reorders chunk commits into plan order so the store is deterministic.

    Workers complete chunks in whatever order scheduling, retries and worker
    deaths dictate, but the JSONL store must read exactly like the serial
    run's — rows in plan order, byte for byte — for cross-run ``cmp`` diffing
    and the distributed bit-identity guarantee.  The sequencer holds a
    completed chunk until every earlier chunk has either committed or been
    quarantined, then flushes in index order.  The cost is crash-window
    granularity, not correctness: a crash loses only the *held* chunks,
    which simply re-execute on resume.
    """

    def __init__(
        self, plan_size: int, record_chunk: Callable[[Sequence[Any]], None]
    ) -> None:
        self._record = record_chunk
        self._plan_size = int(plan_size)
        self._next = 0
        self._held: Dict[int, Sequence[Any]] = {}
        self._skipped: set = set()

    @property
    def held(self) -> int:
        """Completed chunks waiting on an earlier chunk (uncommitted)."""
        return len(self._held)

    def commit(self, chunk_index: int, payload: Sequence[Any]) -> None:
        """Queue one completed chunk; flush every now-in-order commit."""
        if chunk_index < self._next or chunk_index in self._skipped:
            # A straggler duplicate of an already-committed (or quarantined)
            # chunk — the ledger normally drops these, but a quarantine that
            # later "completes" lands here and must not commit out of order.
            logger.info("dropping late commit for chunk %d", chunk_index)
            return
        self._held[chunk_index] = payload
        self._flush()

    def skip(self, chunk_index: int) -> None:
        """Mark a chunk that will never commit (quarantined) as sequenced."""
        if chunk_index < self._next:
            return
        self._skipped.add(chunk_index)
        self._flush()

    def _flush(self) -> None:
        while self._next < self._plan_size:
            if self._next in self._held:
                self._record(self._held.pop(self._next))
            elif self._next in self._skipped:
                self._skipped.discard(self._next)
            else:
                return
            self._next += 1


class SupervisingExecutor:
    """Dispatch a campaign plan across supervised worker processes.

    Parameters
    ----------
    plan:
        The ordered chunk list from :func:`~repro.campaign.jobs.plan_job_chunks`.
    record_chunk:
        Parent-side commit callback (store append + bookkeeping); called
        exactly once per completed chunk, in *plan order* (out-of-order
        completions are held by a :class:`ChunkCommitSequencer` so the
        store reads byte-identically to a serial run).
    workers:
        Number of worker processes to keep alive.
    mp_context:
        The ``multiprocessing`` context (fork on Linux, spawn elsewhere).
    initializer / initargs:
        Build the per-process execute callable; see
        :func:`_supervised_worker_main`.
    config:
        Retry/deadline/backoff knobs (:class:`SupervisorConfig`).
    """

    def __init__(
        self,
        plan: Sequence[List[ChipJob]],
        record_chunk: Callable[[Sequence[Any]], None],
        workers: int,
        mp_context,
        initializer: Callable[..., Callable[[List[ChipJob], int, int], Any]],
        initargs: Tuple[Any, ...],
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.plan = [list(chunk) for chunk in plan]
        self.record_chunk = record_chunk
        self.worker_count = min(workers, len(self.plan)) or 1
        self.mp_context = mp_context
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.config = config if config is not None else SupervisorConfig()
        self._ledger = ChunkLedger(self.plan, self.config)
        self._sequencer = ChunkCommitSequencer(len(self.plan), self.record_chunk)
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._result_queue = None

    @property
    def failures(self) -> List[ChunkFailure]:
        return self._ledger.failures

    # -- worker lifecycle -----------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self.mp_context.Queue()
        process = self.mp_context.Process(
            target=_supervised_worker_main,
            args=(
                worker_id,
                task_queue,
                self._result_queue,
                self.initializer,
                self.initargs,
            ),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        process.start()
        handle = _WorkerHandle(worker_id=worker_id, process=process, task_queue=task_queue)
        self._workers[worker_id] = handle
        return handle

    def _discard_worker(self, handle: _WorkerHandle, kill: bool = False) -> None:
        self._workers.pop(handle.worker_id, None)
        if kill and handle.process.is_alive():
            handle.process.kill()
        handle.process.join(self.config.join_timeout)
        if handle.process.is_alive():  # pragma: no cover - last resort
            handle.process.kill()
            handle.process.join(self.config.join_timeout)
        # Drain + close the private task queue so its feeder thread exits.
        try:
            handle.task_queue.close()
            handle.task_queue.join_thread()
        except (OSError, ValueError):  # pragma: no cover - queue already gone
            pass

    # -- scheduling -----------------------------------------------------------

    def _dispatch_ready(self, now: float) -> None:
        for handle in list(self._workers.values()):
            if handle.busy or not handle.alive():
                continue
            state = self._ledger.ready_chunk(now)
            if state is None:
                return
            handle.attempt = self._ledger.start(state)
            handle.chunk_index = state.index
            handle.dispatched_at = now
            handle.task_queue.put((state.index, handle.attempt, state.chunk))

    def _handle_worker_loss(
        self, handle: _WorkerHandle, cause: str, now: float
    ) -> None:
        """A worker died (or was killed for hanging): reassign + respawn."""
        metrics.counter("campaign.worker_deaths").inc()
        trace.instant(
            "campaign.worker_death",
            worker=handle.worker_id,
            pid=handle.process.pid,
            cause=cause,
            chunk=handle.chunk_index,
        )
        logger.warning(
            "worker %d (pid %s) lost (%s) while chunk %s was in flight",
            handle.worker_id,
            handle.process.pid,
            cause,
            handle.chunk_index,
        )
        chunk_index = handle.chunk_index
        self._discard_worker(handle, kill=cause == "hang")
        if chunk_index is not None:
            state = self._ledger.chunks[chunk_index]
            if state.status == "running":
                self._ledger.fail(state, f"worker lost ({cause})", now)
                if state.status == "quarantined":
                    self._sequencer.skip(state.index)
        if self._outstanding():
            metrics.counter("campaign.workers_respawned").inc()
            self._spawn_worker()

    # -- bookkeeping ----------------------------------------------------------

    def _outstanding(self) -> int:
        return self._ledger.outstanding()

    def _handle_message(self, message, now: float) -> None:
        kind, worker_id, chunk_index, attempt, payload = message
        handle = self._workers.get(worker_id)
        if kind == "ready":
            return
        if kind == "init_error":  # pragma: no cover - fatal misconfiguration
            raise RuntimeError(f"campaign worker failed to initialize: {payload}")
        state = self._ledger.chunks[chunk_index]
        if handle is not None and handle.chunk_index == chunk_index:
            handle.chunk_index = None
        if kind == "done":
            duration = now - (handle.dispatched_at if handle else now)
            if not self._ledger.complete(state, duration):
                # A hang-killed worker that actually finished after its
                # reassigned twin: the chunk is already committed, drop it.
                logger.info("dropping duplicate result for chunk %d", chunk_index)
                return
            self._sequencer.commit(chunk_index, payload)
        elif kind == "error":
            if state.status == "running":
                self._ledger.fail(state, str(payload), now)
                if state.status == "quarantined":
                    self._sequencer.skip(state.index)

    def _check_workers(self, now: float) -> None:
        deadline = self._ledger.deadline_seconds()
        for handle in list(self._workers.values()):
            if not handle.alive():
                self._handle_worker_loss(handle, "exit", now)
                continue
            if (
                handle.busy
                and deadline is not None
                and now - handle.dispatched_at > deadline
            ):
                metrics.counter("campaign.worker_hangs").inc()
                logger.warning(
                    "worker %d exceeded the %.1fs chunk deadline on chunk %s; killing",
                    handle.worker_id,
                    deadline,
                    handle.chunk_index,
                )
                self._handle_worker_loss(handle, "hang", now)

    # -- run ------------------------------------------------------------------

    def run(self) -> List[ChunkFailure]:
        """Execute the whole plan; returns the quarantined-chunk failures."""
        self._result_queue = self.mp_context.Queue()
        for _ in range(self.worker_count):
            self._spawn_worker()
        try:
            while self._outstanding():
                now = time.monotonic()
                self._dispatch_ready(now)
                try:
                    message = self._result_queue.get(
                        timeout=self.config.poll_interval
                    )
                except queue_module.Empty:
                    message = None
                now = time.monotonic()
                if message is not None:
                    self._handle_message(message, now)
                self._check_workers(now)
        finally:
            self._shutdown()
        return self.failures

    def _shutdown(self) -> None:
        for handle in list(self._workers.values()):
            if handle.alive():
                try:
                    handle.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for handle in list(self._workers.values()):
            handle.process.join(self.config.join_timeout)
            self._discard_worker(handle, kill=True)
        if self._result_queue is not None:
            try:
                self._result_queue.close()
                self._result_queue.join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass
            self._result_queue = None
