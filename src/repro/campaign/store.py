"""Persistent, resumable result store for retraining campaigns.

A campaign's identity is a *fingerprint*: a SHA-256 digest over the preset,
the policy name, the resolved accuracy target and every job's (chip,
retraining amount).  The store lives in a content-addressed directory

    <base>/<policy>-<fingerprint[:16]>/
        manifest.json    # campaign metadata, written atomically
        results.jsonl    # one checksummed ChipRetrainingResult per line
        quarantine.jsonl # chips the supervisor gave up on (when any)

Results are appended (and fsynced) as chunks complete, so a killed campaign
loses at most the chunks that were in flight.  On restart, completed chips
are read back and skipped.

Integrity: every line carries a truncated SHA-256 checksum of its canonical
payload (``"checksum"`` key), so silent single-byte corruption — which the
pre-checksum reader happily parsed — is detected and the chip re-executed.
Unchecksummed lines written by older stores remain readable (the checksum is
simply absent); :meth:`CampaignStore.compact` rewrites them checksummed.
A torn trailing line from a mid-write kill is repaired (truncated back to
the last complete line) before the next append, and :meth:`CampaignStore.verify`
reports torn/corrupt/duplicate rows without modifying anything.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.reduce import ChipRetrainingResult
from repro.observability import metrics
from repro.utils.config import config_to_dict, fsync_directory, save_json
from repro.utils.logging import get_logger

logger = get_logger("campaign.store")

PathLike = Union[str, Path]

# Version 2: the Step-3 retraining seed became a population-shared FAT seed
# (previously derived per chip id), changing every recorded accuracy; bumping
# the version changes all fingerprints so pre-existing stores are never
# resumed against results computed under the old seed scheme.
# Version 3: training-mode BatchNorm switched to the fused analytic backward
# (and degenerate 1x1 im2col lowerings are now materialised C-contiguously),
# shifting last-bit training numerics for batch-norm models; old stores for
# such presets must not be resumed against the new trajectories.
# Version 4: campaigns became strategy-tagged (mitigation strategies as a
# first-class axis): every job's fingerprint payload now carries its
# mitigation strategy and every stored result records one, so a version-2/3
# store can never resume into (or be resumed by) a strategy-tagged campaign.
# Per-line checksums (added after version 4) are intentionally NOT a version
# bump: the recorded values are unchanged, old lines stay readable, and new
# lines only add a "checksum" key that old readers ignored.
STORE_FORMAT_VERSION = 4

#: Hex digits of SHA-256 kept per line — integrity, not cryptography.
CHECKSUM_HEX_DIGITS = 16
CHECKSUM_KEY = "checksum"


class CampaignStoreError(RuntimeError):
    """Raised when a store directory does not match the requested campaign,
    its manifest is corrupt, or an append could not be made durable."""


def campaign_fingerprint(
    preset: Any,
    policy_name: str,
    target_accuracy: float,
    jobs: Sequence[Any],
) -> str:
    """Content fingerprint of a campaign: preset + policy + per-chip work.

    Two campaigns share a fingerprint exactly when re-running one can safely
    reuse the other's per-chip results: the experiment inputs, the resolved
    accuracy target and every chip's fault map, retraining amount and
    mitigation strategy agree.  A job's compute backend joins the payload
    only when it can change recorded values: the eager path (``None``) and
    the bit-identical ``"numpy"`` reference replay fingerprint alike, so
    pre-backend stores remain resumable under either.
    """
    payload = {
        "version": STORE_FORMAT_VERSION,
        "preset": config_to_dict(preset),
        "policy": str(policy_name),
        "target_accuracy": float(target_accuracy),
        "jobs": [_job_fingerprint_payload(job) for job in jobs],
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def _job_fingerprint_payload(job: Any) -> Dict[str, Any]:
    payload = {"chip": job.chip, "epochs": job.epochs, "strategy": job.strategy}
    backend = getattr(job, "backend", None)
    if backend not in (None, "numpy"):
        payload["backend"] = str(backend)
    return payload


def _line_checksum(canonical_payload: str) -> str:
    digest = hashlib.sha256(canonical_payload.encode("utf-8")).hexdigest()
    return digest[:CHECKSUM_HEX_DIGITS]


def encode_result_line(result: ChipRetrainingResult) -> str:
    """One checksummed JSONL line (no trailing newline) for a result."""
    row = result.to_dict()
    row[CHECKSUM_KEY] = _line_checksum(json.dumps(row, sort_keys=True))
    return json.dumps(row, sort_keys=True)


def decode_result_line(line: str) -> Tuple[Optional[ChipRetrainingResult], str]:
    """Parse one results line; returns ``(result, status)``.

    Status is ``"ok"`` (checksum verified), ``"legacy"`` (a pre-checksum
    line that parsed cleanly), ``"checksum-mismatch"`` (parsed but the
    recorded checksum does not match the payload — silent corruption) or
    ``"unparseable"`` (torn or garbage; ``result`` is ``None`` for the last
    two).
    """
    try:
        row = json.loads(line)
        if not isinstance(row, dict):
            raise ValueError("not a JSON object")
    except (ValueError, TypeError):
        return None, "unparseable"
    stored = row.pop(CHECKSUM_KEY, None)
    if stored is not None:
        expected = _line_checksum(json.dumps(row, sort_keys=True))
        if stored != expected:
            return None, "checksum-mismatch"
    try:
        result = ChipRetrainingResult.from_dict(row)
    except (ValueError, KeyError, TypeError):
        return None, "unparseable"
    return result, "ok" if stored is not None else "legacy"


@dataclasses.dataclass
class StoreVerification:
    """Outcome of :meth:`CampaignStore.verify` — what ``verify-store`` prints."""

    directory: Path
    total_lines: int = 0
    valid: int = 0
    legacy_unchecksummed: int = 0
    checksum_mismatches: List[int] = dataclasses.field(default_factory=list)
    unparseable: List[int] = dataclasses.field(default_factory=list)
    duplicates: Dict[str, int] = dataclasses.field(default_factory=dict)
    torn_tail: bool = False
    manifest_error: Optional[str] = None
    quarantined: int = 0

    @property
    def is_clean(self) -> bool:
        return not (
            self.checksum_mismatches
            or self.unparseable
            or self.duplicates
            or self.torn_tail
            or self.manifest_error
        )

    def describe(self) -> str:
        issues: List[str] = []
        if self.manifest_error:
            issues.append(f"corrupt manifest ({self.manifest_error})")
        if self.unparseable:
            issues.append(
                f"{len(self.unparseable)} unparseable line(s) at {self.unparseable}"
            )
        if self.checksum_mismatches:
            issues.append(
                f"{len(self.checksum_mismatches)} checksum mismatch(es) "
                f"at {self.checksum_mismatches}"
            )
        if self.duplicates:
            issues.append(
                "duplicate chip rows: "
                + ", ".join(f"{k} x{v}" for k, v in self.duplicates.items())
            )
        if self.torn_tail:
            issues.append("torn trailing write (file does not end in a newline)")
        status = "clean" if self.is_clean else "; ".join(issues)
        extras = []
        if self.legacy_unchecksummed:
            extras.append(f"{self.legacy_unchecksummed} legacy unchecksummed")
        if self.quarantined:
            extras.append(f"{self.quarantined} quarantined chip(s)")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.directory}: {self.valid}/{self.total_lines} valid row(s), "
            f"{status}{suffix}"
        )


class CampaignStore:
    """JSONL-backed result store for one campaign directory."""

    MANIFEST_NAME = "manifest.json"
    RESULTS_NAME = "results.jsonl"
    QUARANTINE_NAME = "quarantine.jsonl"

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # -- paths ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    @property
    def results_path(self) -> Path:
        return self.directory / self.RESULTS_NAME

    @property
    def quarantine_path(self) -> Path:
        return self.directory / self.QUARANTINE_NAME

    # -- creation ----------------------------------------------------------------

    @classmethod
    def open(
        cls,
        base_dir: PathLike,
        fingerprint: str,
        manifest: Dict[str, Any],
    ) -> "CampaignStore":
        """Open (or create) the content-addressed store for a fingerprint.

        A manifest that exists but cannot be parsed is only overwritten when
        the store holds no results; with a non-empty ``results.jsonl`` the
        corruption is surfaced as :class:`CampaignStoreError` instead —
        silently writing a fresh manifest over foreign results would let an
        unrelated campaign resume against them.
        """
        policy = str(manifest.get("policy", "campaign"))
        directory = Path(base_dir) / f"{policy}-{fingerprint[:16]}"
        store = cls(directory)
        store.directory.mkdir(parents=True, exist_ok=True)
        try:
            existing = store.read_manifest()
        except CampaignStoreError as error:
            if store.has_results():
                raise CampaignStoreError(
                    f"manifest of {store.directory} is unreadable but the store "
                    f"holds results; refusing to adopt them ({error})"
                ) from error
            logger.warning(
                "overwriting unreadable manifest of empty store %s (%s)",
                store.directory,
                error,
            )
            existing = None
        if existing is not None:
            stored = existing.get("fingerprint")
            if stored != fingerprint:
                raise CampaignStoreError(
                    f"store at {store.directory} belongs to campaign {stored!r}, "
                    f"not {fingerprint!r}"
                )
        else:
            payload = dict(manifest)
            payload["fingerprint"] = fingerprint
            payload["version"] = STORE_FORMAT_VERSION
            save_json(payload, store.manifest_path, atomic=True)
        return store

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        """The manifest, ``None`` when absent.

        Raises :class:`CampaignStoreError` (with the parse error chained)
        when the file exists but cannot be read or parsed — distinguishing
        "no manifest yet" from "the manifest was destroyed".
        """
        if not self.manifest_path.exists():
            return None
        try:
            with self.manifest_path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CampaignStoreError(
                f"manifest at {self.manifest_path} is unreadable: {error}"
            ) from error

    def has_results(self) -> bool:
        try:
            return self.results_path.stat().st_size > 0
        except OSError:
            return False

    # -- results ------------------------------------------------------------------

    def append(self, result: ChipRetrainingResult) -> None:
        """Durably append one chip result (flushed + fsynced per line)."""
        self.append_many([result])

    def _repair_torn_tail(self) -> None:
        """Truncate a torn trailing fragment back to the last complete line.

        A process killed (or a disk filled) mid-append leaves bytes with no
        trailing newline; appending straight after them would fuse the next
        result into one corrupt line, losing *both* rows.  Truncating to the
        last newline keeps every durable row and simply re-executes the torn
        chip.
        """
        try:
            size = self.results_path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with self.results_path.open("rb") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
        keep = data.rfind(b"\n") + 1
        logger.warning(
            "repairing torn trailing write in %s (truncating %d byte(s))",
            self.results_path,
            size - keep,
        )
        os.truncate(self.results_path, keep)
        metrics.counter("store.torn_repairs").inc()

    def repair(self) -> None:
        """Repair recoverable damage in place (currently: the torn tail)."""
        self._repair_torn_tail()

    def append_many(self, results: Sequence[ChipRetrainingResult]) -> None:
        """Durably append a whole result group with a single flush + fsync.

        The group-result protocol of the campaign executor: a batched-FAT
        chunk's results land together, so a killed campaign either has the
        whole chunk on disk or re-runs it — and a chunk costs one fsync
        instead of one per chip.  A failed write (``ENOSPC``, I/O error) is
        rolled back to the pre-append offset and surfaced as
        :class:`CampaignStoreError` instead of leaving a half-flushed tail.
        """
        if not results:
            return
        self._repair_torn_tail()
        payload = "".join(encode_result_line(result) + "\n" for result in results)
        try:
            offset = self.results_path.stat().st_size
        except OSError:
            offset = 0
        try:
            with self.results_path.open("a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                with metrics.timer("store.fsync_seconds"):
                    os.fsync(handle.fileno())
        except OSError as error:
            # Roll the file back to its pre-append size so the half-flushed
            # group never masquerades as durable rows.
            try:
                os.truncate(self.results_path, offset)
            except OSError:  # pragma: no cover - rollback is best-effort
                logger.warning("could not roll back failed append to %s", self.results_path)
            reason = (
                "disk full" if error.errno == errno.ENOSPC else "I/O error"
            )
            raise CampaignStoreError(
                f"{reason} while appending {len(results)} result(s) to "
                f"{self.results_path}: {error}"
            ) from error
        metrics.counter("store.appends").inc()
        metrics.counter("store.results_appended").inc(len(results))

    def completed(self) -> "OrderedDict[str, ChipRetrainingResult]":
        """Results recorded so far, keyed by chip id (last write wins).

        Lines that fail to parse — e.g. a torn final line left by a killed
        process — and lines whose checksum does not match their payload are
        skipped with a warning, so a resumed campaign simply re-runs those
        chips.
        """
        results: "OrderedDict[str, ChipRetrainingResult]" = OrderedDict()
        if not self.results_path.exists():
            return results
        with self.results_path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                result, status = decode_result_line(line)
                if result is None:
                    metrics.counter("store.corrupt_lines").inc()
                    logger.warning(
                        "skipping %s line %d of %s",
                        "checksum-mismatched" if status == "checksum-mismatch" else "unreadable",
                        lineno,
                        self.results_path,
                    )
                    continue
                results[result.chip_id] = result
        return results

    def verify(self) -> StoreVerification:
        """Integrity report of the store: torn/corrupt/duplicate rows.

        Read-only — corruption that the pre-checksum reader would have
        silently accepted (a flipped digit in a parsed-fine JSON line) is
        reported here, not repaired.
        """
        report = StoreVerification(directory=self.directory)
        try:
            self.read_manifest()
        except CampaignStoreError as error:
            report.manifest_error = str(error.__cause__ or error)
        if self.results_path.exists():
            raw = self.results_path.read_bytes()
            report.torn_tail = bool(raw) and not raw.endswith(b"\n")
            seen: Dict[str, int] = {}
            for lineno, line in enumerate(raw.decode("utf-8", "replace").splitlines(), 1):
                if not line.strip():
                    continue
                report.total_lines += 1
                result, status = decode_result_line(line)
                if status == "checksum-mismatch":
                    report.checksum_mismatches.append(lineno)
                    continue
                if result is None:
                    report.unparseable.append(lineno)
                    continue
                report.valid += 1
                if status == "legacy":
                    report.legacy_unchecksummed += 1
                seen[result.chip_id] = seen.get(result.chip_id, 0) + 1
            report.duplicates = {k: v for k, v in seen.items() if v > 1}
        report.quarantined = sum(
            len(record.get("chip_ids") or []) or 1
            for record in self.read_quarantine()
        )
        return report

    def compact(self) -> int:
        """Rewrite the results file with only valid, deduplicated lines.

        Run before resuming: a torn trailing line left by a killed process
        has no newline, so appending straight after it would corrupt the next
        result.  Returns the number of results kept.  The rewrite is made
        durable (file fsync + ``os.replace`` + directory fsync), so a
        compacted store survives a power cut immediately after resume.
        """
        if not self.results_path.exists():
            return 0
        results = self.completed()
        tmp = self.results_path.with_name(self.results_path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for result in results.values():
                handle.write(encode_result_line(result) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.results_path)
        fsync_directory(self.results_path.parent)
        metrics.counter("store.compactions").inc()
        metrics.gauge("store.resumed_results").set(len(results))
        return len(results)

    def num_recorded(self) -> int:
        return len(self.completed())

    def clear_results(self) -> None:
        """Drop recorded results (the manifest is kept)."""
        if self.results_path.exists():
            self.results_path.unlink()

    # -- quarantine ----------------------------------------------------------------

    def write_quarantine(self, records: Sequence[Dict[str, Any]]) -> None:
        """Overwrite ``quarantine.jsonl`` with this run's failed chunks.

        The file always reflects the *latest* run: an empty record list
        removes it (a later resume that succeeds clears the quarantine).
        """
        if not records:
            if self.quarantine_path.exists():
                self.quarantine_path.unlink()
            return
        tmp = self.quarantine_path.with_name(self.quarantine_path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.quarantine_path)
        fsync_directory(self.quarantine_path.parent)

    def read_quarantine(self) -> List[Dict[str, Any]]:
        """The quarantined-chunk records of the latest run (possibly empty)."""
        if not self.quarantine_path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with self.quarantine_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    logger.warning("skipping unreadable quarantine line in %s", self.quarantine_path)
        return records

    def __repr__(self) -> str:
        return f"CampaignStore({str(self.directory)!r})"


def discover_stores(path: PathLike) -> List[CampaignStore]:
    """Stores under ``path``: itself (if it holds results) or its children.

    Accepts either one store directory or a campaign base directory; used by
    ``repro-reduce verify-store`` to check everything below a path.
    """
    root = Path(path)
    if (root / CampaignStore.RESULTS_NAME).exists() or (
        root / CampaignStore.MANIFEST_NAME
    ).exists():
        return [CampaignStore(root)]
    if not root.is_dir():
        return []
    stores = [
        CampaignStore(child)
        for child in sorted(root.iterdir())
        if child.is_dir()
        and (
            (child / CampaignStore.RESULTS_NAME).exists()
            or (child / CampaignStore.MANIFEST_NAME).exists()
        )
    ]
    return stores
