"""Persistent, resumable result store for retraining campaigns.

A campaign's identity is a *fingerprint*: a SHA-256 digest over the preset,
the policy name, the resolved accuracy target and every job's (chip,
retraining amount).  The store lives in a content-addressed directory

    <base>/<policy>-<fingerprint[:16]>/
        manifest.json    # campaign metadata, written atomically
        results.jsonl    # one ChipRetrainingResult per line, appended + fsynced

Results are appended (and fsynced) as chips complete, so a killed campaign
loses at most the chip that was in flight.  On restart, completed chips are
read back and skipped; a torn trailing line from a mid-write kill is
tolerated and simply re-executed.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.core.reduce import ChipRetrainingResult
from repro.observability import metrics
from repro.utils.config import config_to_dict, save_json
from repro.utils.logging import get_logger

logger = get_logger("campaign.store")

PathLike = Union[str, Path]

# Version 2: the Step-3 retraining seed became a population-shared FAT seed
# (previously derived per chip id), changing every recorded accuracy; bumping
# the version changes all fingerprints so pre-existing stores are never
# resumed against results computed under the old seed scheme.
# Version 3: training-mode BatchNorm switched to the fused analytic backward
# (and degenerate 1x1 im2col lowerings are now materialised C-contiguously),
# shifting last-bit training numerics for batch-norm models; old stores for
# such presets must not be resumed against the new trajectories.
# Version 4: campaigns became strategy-tagged (mitigation strategies as a
# first-class axis): every job's fingerprint payload now carries its
# mitigation strategy and every stored result records one, so a version-2/3
# store can never resume into (or be resumed by) a strategy-tagged campaign.
STORE_FORMAT_VERSION = 4


class CampaignStoreError(RuntimeError):
    """Raised when a store directory does not match the requested campaign."""


def campaign_fingerprint(
    preset: Any,
    policy_name: str,
    target_accuracy: float,
    jobs: Sequence[Any],
) -> str:
    """Content fingerprint of a campaign: preset + policy + per-chip work.

    Two campaigns share a fingerprint exactly when re-running one can safely
    reuse the other's per-chip results: the experiment inputs, the resolved
    accuracy target and every chip's fault map, retraining amount and
    mitigation strategy agree.
    """
    payload = {
        "version": STORE_FORMAT_VERSION,
        "preset": config_to_dict(preset),
        "policy": str(policy_name),
        "target_accuracy": float(target_accuracy),
        "jobs": [
            {"chip": job.chip, "epochs": job.epochs, "strategy": job.strategy}
            for job in jobs
        ],
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


class CampaignStore:
    """JSONL-backed result store for one campaign directory."""

    MANIFEST_NAME = "manifest.json"
    RESULTS_NAME = "results.jsonl"

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # -- paths ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    @property
    def results_path(self) -> Path:
        return self.directory / self.RESULTS_NAME

    # -- creation ----------------------------------------------------------------

    @classmethod
    def open(
        cls,
        base_dir: PathLike,
        fingerprint: str,
        manifest: Dict[str, Any],
    ) -> "CampaignStore":
        """Open (or create) the content-addressed store for a fingerprint."""
        policy = str(manifest.get("policy", "campaign"))
        directory = Path(base_dir) / f"{policy}-{fingerprint[:16]}"
        store = cls(directory)
        store.directory.mkdir(parents=True, exist_ok=True)
        existing = store.read_manifest()
        if existing is not None:
            stored = existing.get("fingerprint")
            if stored != fingerprint:
                raise CampaignStoreError(
                    f"store at {store.directory} belongs to campaign {stored!r}, "
                    f"not {fingerprint!r}"
                )
        else:
            payload = dict(manifest)
            payload["fingerprint"] = fingerprint
            payload["version"] = STORE_FORMAT_VERSION
            save_json(payload, store.manifest_path, atomic=True)
        return store

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.manifest_path.exists():
            return None
        try:
            with self.manifest_path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    # -- results ------------------------------------------------------------------

    def append(self, result: ChipRetrainingResult) -> None:
        """Durably append one chip result (flushed + fsynced per line)."""
        self.append_many([result])

    def append_many(self, results: Sequence[ChipRetrainingResult]) -> None:
        """Durably append a whole result group with a single flush + fsync.

        The group-result protocol of the campaign executor: a batched-FAT
        chunk's results land together, so a killed campaign either has the
        whole chunk on disk or re-runs it — and a chunk costs one fsync
        instead of one per chip.
        """
        if not results:
            return
        payload = "".join(
            json.dumps(result.to_dict(), sort_keys=True) + "\n" for result in results
        )
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            with metrics.timer("store.fsync_seconds"):
                os.fsync(handle.fileno())
        metrics.counter("store.appends").inc()
        metrics.counter("store.results_appended").inc(len(results))

    def completed(self) -> "OrderedDict[str, ChipRetrainingResult]":
        """Results recorded so far, keyed by chip id (last write wins).

        Lines that fail to parse — e.g. a torn final line left by a killed
        process — are skipped with a warning so a resumed campaign simply
        re-runs those chips.
        """
        results: "OrderedDict[str, ChipRetrainingResult]" = OrderedDict()
        if not self.results_path.exists():
            return results
        with self.results_path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    result = ChipRetrainingResult.from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    logger.warning(
                        "skipping unreadable line %d of %s (torn write?)",
                        lineno,
                        self.results_path,
                    )
                    continue
                results[result.chip_id] = result
        return results

    def compact(self) -> int:
        """Rewrite the results file with only valid, deduplicated lines.

        Run before resuming: a torn trailing line left by a killed process
        has no newline, so appending straight after it would corrupt the next
        result.  Returns the number of results kept.
        """
        if not self.results_path.exists():
            return 0
        results = self.completed()
        tmp = self.results_path.with_name(self.results_path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for result in results.values():
                handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.results_path)
        metrics.counter("store.compactions").inc()
        metrics.gauge("store.resumed_results").set(len(results))
        return len(results)

    def num_recorded(self) -> int:
        return len(self.completed())

    def clear_results(self) -> None:
        """Drop recorded results (the manifest is kept)."""
        if self.results_path.exists():
            self.results_path.unlink()

    def __repr__(self) -> str:
        return f"CampaignStore({str(self.directory)!r})"
