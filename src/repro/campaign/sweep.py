"""Multi-strategy campaign sweeps: one population, K mitigation strategies.

A sweep answers the paper's comparative question — how does fault-aware
retraining stack up against cheaper mitigations over a whole chip population —
by running the *same* chips and the *same* Step-2 policy through several
:class:`~repro.mitigation.strategy.MitigationStrategy` recipes.  Shared work
is shared:

* Step 1 (the resilience profile) is computed once and cached on the
  experiment context for resilience-driven policies;
* batched triage (``accuracy_before``) is computed once per *triage key* —
  every strategy measuring its initial accuracy under the same masks (plain
  FAP masks for ``none``/``fap``/``fat``/``bypass``..., permuted masks for
  FAM strategies) reuses the same values;
* each strategy's campaign goes through one shared
  :class:`~repro.campaign.engine.CampaignEngine`, so ``--jobs N`` workers and
  ``--fat-batch B`` stacked coalescing apply to every strategy, and each
  strategy owns its own content-addressed resumable store.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.engine import CampaignEngine, CampaignReport, PathLike
from repro.core.chips import ChipPopulation
from repro.core.reduce import CampaignResult
from repro.core.selection import RetrainingPolicy
from repro.mitigation.strategy import MitigationStrategy, parse_strategy_list
from repro.observability import trace
from repro.utils.logging import get_logger

logger = get_logger("campaign.sweep")


@dataclasses.dataclass
class StrategySweepResult:
    """Per-strategy campaign results of one population/policy sweep."""

    policy_name: str
    target_accuracy: float
    clean_accuracy: float
    campaigns: "OrderedDict[str, CampaignResult]"
    reports: Dict[str, CampaignReport]

    @property
    def strategy_names(self) -> List[str]:
        return list(self.campaigns)

    def campaign(self, strategy: str) -> CampaignResult:
        if strategy not in self.campaigns:
            raise KeyError(
                f"unknown strategy {strategy!r}; available: {self.strategy_names}"
            )
        return self.campaigns[strategy]

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy_name": self.policy_name,
            "target_accuracy": self.target_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "strategies": self.strategy_names,
            "campaigns": {name: c.to_dict() for name, c in self.campaigns.items()},
        }


def run_strategy_sweep(
    context,
    population: ChipPopulation,
    policy: RetrainingPolicy,
    strategies: Union[str, Sequence[Union[str, MitigationStrategy]]],
    jobs: int = 1,
    store_base: Optional[PathLike] = None,
    resume: bool = True,
    progress: bool = False,
    fat_batch: Optional[int] = None,
    disk_cache_dir: Optional[PathLike] = None,
    heartbeat_seconds: Optional[float] = CampaignEngine.DEFAULT_HEARTBEAT_SECONDS,
    max_chunk_retries: Optional[int] = None,
    chunk_timeout: Optional[float] = None,
    chaos: Optional[str] = None,
    backend: Optional[str] = None,
    prefetch: bool = True,
    lowering_cache_mb: Optional[float] = None,
    listen: Optional[Tuple[str, int]] = None,
    workers: Optional[Sequence[Tuple[str, int]]] = None,
) -> StrategySweepResult:
    """Run one population through K mitigation strategies under one policy.

    ``strategies`` is a comma-separated spec string or a sequence of specs /
    strategy objects; each runs as its own resumable campaign through a
    shared engine, with triage shared among strategies whose initial
    accuracy is measured under the same masks.  The fault-tolerance knobs
    (``max_chunk_retries``, ``chunk_timeout``, ``chaos``) are forwarded to
    the shared engine and therefore apply to every strategy arm, as does the
    compute ``backend`` every arm's jobs are tagged with.

    The pipelined-eval knobs (``prefetch``, ``lowering_cache_mb``) also ride
    the shared engine — and because the engine configures the *context's*
    eval pipeline, the lowering cache is sweep-wide: K strategy arms over the
    same population walk the same unshuffled eval batches, so arms 2..K hit
    lowerings arm 1 already computed (``lowering_cache.hits``) instead of
    re-lowering each batch K times.

    ``listen``/``workers`` turn the shared engine distributed: one socket
    worker fleet serves every strategy arm in sequence (workers stay joined
    across arms) and is shut down when the sweep finishes.
    """
    strategy_list = parse_strategy_list(strategies)

    engine = CampaignEngine(
        context,
        jobs=jobs,
        store_base=store_base,
        resume=resume,
        progress=progress,
        disk_cache_dir=disk_cache_dir,
        fat_batch=fat_batch,
        heartbeat_seconds=heartbeat_seconds,
        max_chunk_retries=max_chunk_retries,
        chunk_timeout=chunk_timeout,
        chaos=chaos,
        backend=backend,
        prefetch=prefetch,
        lowering_cache_mb=lowering_cache_mb,
        listen=listen,
        workers=workers,
    )
    campaigns: "OrderedDict[str, CampaignResult]" = OrderedDict()
    reports: Dict[str, CampaignReport] = {}
    # One triage dict per triage key: engine.run fills it lazily (only chips
    # actually pending are evaluated) and later strategies with the same key
    # reuse every value already measured.
    triage_by_key: Dict[str, Dict[str, float]] = {}
    try:
        for strategy in strategy_list:
            logger.info(
                "sweep: running strategy %s over %d chips (policy %s)",
                strategy.name,
                len(population),
                policy.name,
            )
            shared_triage = triage_by_key.setdefault(strategy.triage_key, {})
            # One arm span per strategy; the engine's campaign.run span nests
            # inside it, so a sweep trace attributes wall-clock per strategy arm.
            with trace.span(
                "sweep.strategy", strategy=strategy.name, chips=len(population)
            ):
                campaigns[strategy.name] = engine.run(
                    population, policy, strategy=strategy, triage=shared_triage
                )
            reports[strategy.name] = engine.last_report
    finally:
        engine.close()
    framework = context.framework()
    return StrategySweepResult(
        policy_name=policy.name,
        target_accuracy=framework.target_accuracy,
        clean_accuracy=framework.clean_accuracy,
        campaigns=campaigns,
        reports=reports,
    )
