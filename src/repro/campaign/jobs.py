"""Work-unit layer of the campaign engine.

The Step 2+3 slice of the Reduce flow for one chip — look up the retraining
amount, restore the pre-trained weights, retrain under the chip's fault masks
and evaluate against the constraint — is embarrassingly parallel across a
chip population.  A :class:`ChipJob` captures everything that slice needs
beyond the (shared, pre-trained) framework as plain JSON-compatible data:

* the serialized chip (``Chip.to_dict()``: id + fault-map coordinates),
* the retraining amount chosen by the policy in the parent process, and
* the accuracy target resolved once against the clean accuracy.

Jobs are therefore picklable, hashable enough to fingerprint, and executing
one is a pure function of ``(framework pre-trained state, job)``: the
retraining seed is a deterministic function of the campaign configuration
(shared by every chip — see :meth:`ReduceFramework._fat_training_config`),
so the result does not depend on which process runs the job or in what order
jobs complete.  Because the seed (and therefore the mini-batch and dropout
streams) is shared, jobs with the same epoch budget can also be *coalesced*:
:func:`execute_jobs_batched` retrains a whole group through one stacked
multi-chip trainer and returns exactly what per-job execution would.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.core.chips import Chip, ChipPopulation
from repro.core.reduce import ChipRetrainingResult, ReduceFramework
from repro.core.selection import RetrainingPolicy


@dataclasses.dataclass(frozen=True)
class ChipJob:
    """One chip's select+retrain+evaluate step, as a self-contained unit."""

    chip: Dict[str, Any]
    epochs: float
    target_accuracy: float
    policy_name: str
    # Initial (pre-retraining) accuracy measured by the engine's batched
    # triage pass; workers then skip the serial initial evaluation.  Not part
    # of the campaign fingerprint: it is derived data, not work definition.
    accuracy_before: Optional[float] = None

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")

    @property
    def chip_id(self) -> str:
        return str(self.chip["chip_id"])

    def to_chip(self) -> Chip:
        return Chip.from_dict(self.chip)

    def with_accuracy_before(self, accuracy: float) -> "ChipJob":
        return dataclasses.replace(self, accuracy_before=float(accuracy))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChipJob":
        accuracy_before = data.get("accuracy_before")
        return cls(
            chip=dict(data["chip"]),
            epochs=float(data["epochs"]),
            target_accuracy=float(data["target_accuracy"]),
            policy_name=str(data["policy_name"]),
            accuracy_before=None if accuracy_before is None else float(accuracy_before),
        )


def build_jobs(
    framework: ReduceFramework,
    population: ChipPopulation,
    policy: RetrainingPolicy,
) -> List[ChipJob]:
    """Resolve a policy over a population into per-chip jobs (Step 2 output).

    Jobs are returned in population order; the campaign engine preserves that
    order in its results regardless of completion order, so serial and
    parallel runs are directly comparable.
    """
    amounts = policy.epochs_for_population(population)
    target = framework.target_accuracy
    return [
        ChipJob(
            chip=chip.to_dict(),
            epochs=float(amounts[chip.chip_id]),
            target_accuracy=target,
            policy_name=policy.name,
        )
        for chip in population
    ]


def execute_job(framework: ReduceFramework, job: ChipJob) -> ChipRetrainingResult:
    """Run one job against a framework holding the pre-trained weights."""
    return framework.retrain_chip(
        job.to_chip(),
        job.epochs,
        target_accuracy=job.target_accuracy,
        accuracy_before=job.accuracy_before,
    )


def group_jobs_by_epochs(jobs: Sequence[ChipJob]) -> Dict[float, List[ChipJob]]:
    """Group jobs by their retraining budget (insertion-ordered).

    Groups whose budget is positive and which hold more than one job are the
    candidates for batched multi-chip execution; zero-epoch jobs are pure
    triage lookups and stay on the per-job path.
    """
    groups: Dict[float, List[ChipJob]] = {}
    for job in jobs:
        groups.setdefault(float(job.epochs), []).append(job)
    return groups


def execute_jobs_batched(
    framework: ReduceFramework,
    jobs: Sequence[ChipJob],
    fat_batch: int = 8,
) -> List[ChipRetrainingResult]:
    """Execute a same-budget group of jobs through the stacked batched trainer.

    Returns results in job order, bit-identical (on this BLAS build) to
    ``[execute_job(framework, job) for job in jobs]``.  All jobs must share
    the same ``epochs`` and ``target_accuracy``.
    """
    job_list = list(jobs)
    if not job_list:
        return []
    epochs = job_list[0].epochs
    target = job_list[0].target_accuracy
    for job in job_list[1:]:
        if job.epochs != epochs or job.target_accuracy != target:
            raise ValueError(
                "batched execution requires jobs with identical epochs and target "
                f"(got epochs {job.epochs} vs {epochs}, target "
                f"{job.target_accuracy} vs {target})"
            )
    accuracies_before = {
        job.chip_id: job.accuracy_before
        for job in job_list
        if job.accuracy_before is not None
    }
    return framework.retrain_chips_batched(
        [job.to_chip() for job in job_list],
        epochs,
        target_accuracy=target,
        accuracies_before=accuracies_before,
        fat_batch=fat_batch,
    )
