"""Work-unit layer of the campaign engine.

The Step 2+3 slice of the Reduce flow for one chip — look up the retraining
amount, restore the pre-trained weights, retrain under the chip's fault masks
and evaluate against the constraint — is embarrassingly parallel across a
chip population.  A :class:`ChipJob` captures everything that slice needs
beyond the (shared, pre-trained) framework as plain JSON-compatible data:

* the serialized chip (``Chip.to_dict()``: id + fault-map coordinates),
* the retraining amount chosen by the policy in the parent process, and
* the accuracy target resolved once against the clean accuracy.

Jobs are therefore picklable, hashable enough to fingerprint, and executing
one is a pure function of ``(framework pre-trained state, job)``: the
retraining seed is a deterministic function of the campaign configuration
(shared by every chip — see :meth:`ReduceFramework._fat_training_config`),
so the result does not depend on which process runs the job or in what order
jobs complete.  Because the seed (and therefore the mini-batch and dropout
streams) is shared, jobs with the same epoch budget can also be *coalesced*:
:func:`execute_jobs_batched` retrains a whole group through one stacked
multi-chip trainer and returns exactly what per-job execution would.

The planner/executor split builds on exactly that purity:
:func:`plan_job_chunks` partitions pending jobs into same-budget *chunks* of
at most ``fat_batch`` jobs, and :func:`execute_job_chunk` runs one chunk —
batched when it holds several jobs, per-job otherwise.  A chunk is both the
unit of dispatch (the campaign engine hands whole chunks to worker
processes, so ``--jobs N`` and ``--fat-batch B`` compose) and the unit of
resume granularity (results are persisted chunk by chunk).  Any partition of
the same jobs yields bit-identical results, so a resumed campaign may regroup
the remaining jobs differently without changing a single recorded value.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.chips import Chip, ChipPopulation
from repro.core.reduce import ChipRetrainingResult, ReduceFramework
from repro.core.selection import RetrainingPolicy
from repro.mitigation.strategy import (
    DEFAULT_STRATEGY_NAME,
    StrategyLike,
    resolve_strategy,
)
from repro.observability import metrics, trace


@dataclasses.dataclass(frozen=True)
class ChipJob:
    """One chip's select+mitigate+evaluate step, as a self-contained unit."""

    chip: Dict[str, Any]
    epochs: float
    target_accuracy: float
    policy_name: str
    # Initial (pre-retraining) accuracy measured by the engine's batched
    # triage pass; workers then skip the serial initial evaluation.  Not part
    # of the campaign fingerprint: it is derived data, not work definition.
    accuracy_before: Optional[float] = None
    # How the chip is mitigated before/instead of spending the budget (part
    # of the work definition, so part of the campaign fingerprint).
    strategy: str = DEFAULT_STRATEGY_NAME
    # Compute backend the batched substrate replays its captured op graphs
    # through (``None`` = eager).  Part of the fingerprint only when it can
    # change recorded values: ``None`` and the bit-identical ``"numpy"``
    # reference replay fingerprint alike, so existing stores stay resumable.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")

    @property
    def chip_id(self) -> str:
        return str(self.chip["chip_id"])

    def to_chip(self) -> Chip:
        return Chip.from_dict(self.chip)

    def with_accuracy_before(self, accuracy: float) -> "ChipJob":
        return dataclasses.replace(self, accuracy_before=float(accuracy))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChipJob":
        accuracy_before = data.get("accuracy_before")
        return cls(
            chip=dict(data["chip"]),
            epochs=float(data["epochs"]),
            target_accuracy=float(data["target_accuracy"]),
            policy_name=str(data["policy_name"]),
            accuracy_before=None if accuracy_before is None else float(accuracy_before),
            strategy=str(data.get("strategy", DEFAULT_STRATEGY_NAME)),
            backend=data.get("backend"),
        )


def build_jobs(
    framework: ReduceFramework,
    population: ChipPopulation,
    policy: RetrainingPolicy,
    strategy: StrategyLike = None,
    backend: Optional[str] = None,
) -> List[ChipJob]:
    """Resolve a policy over a population into per-chip jobs (Step 2 output).

    Jobs are returned in population order; the campaign engine preserves that
    order in its results regardless of completion order, so serial and
    parallel runs are directly comparable.  ``strategy`` tags every job and
    clamps the budget to what the strategy actually spends (zero for
    non-retraining strategies and for bypassable chips under ``bypass+fat``),
    so the planner groups jobs by the work they really represent.
    ``backend`` tags every job with the compute backend the executor should
    route the batched substrate through; the job carries it, so workers need
    no extra configuration to honour it.
    """
    resolved = resolve_strategy(strategy)
    amounts = policy.epochs_for_population(population)
    target = framework.target_accuracy
    return [
        ChipJob(
            chip=chip.to_dict(),
            epochs=resolved.effective_epochs(float(amounts[chip.chip_id]), chip.fault_map),
            target_accuracy=target,
            policy_name=policy.name,
            strategy=resolved.name,
            backend=backend,
        )
        for chip in population
    ]


def execute_job(framework: ReduceFramework, job: ChipJob) -> ChipRetrainingResult:
    """Run one job against a framework holding the pre-trained weights."""
    return framework.retrain_chip(
        job.to_chip(),
        job.epochs,
        target_accuracy=job.target_accuracy,
        accuracy_before=job.accuracy_before,
        strategy=job.strategy,
        backend=job.backend,
    )


def group_jobs_for_batching(
    jobs: Sequence[ChipJob],
) -> Dict[Tuple[float, str, Optional[str]], List[ChipJob]]:
    """Group jobs by ``(budget, strategy, backend)`` (insertion-ordered).

    A stacked batched-FAT run shares one mini-batch stream, one set of
    stacked keep-multipliers and one compute backend, so only jobs that agree
    on the budget, the mitigation strategy *and* the backend may coalesce —
    a multi-strategy (or mixed-backend) sweep's jobs partition cleanly along
    this key.
    """
    groups: Dict[Tuple[float, str, Optional[str]], List[ChipJob]] = {}
    for job in jobs:
        groups.setdefault((float(job.epochs), job.strategy, job.backend), []).append(job)
    return groups


def plan_job_chunks(
    jobs: Sequence[ChipJob], fat_batch: int, workers: int = 1
) -> List[List[ChipJob]]:
    """Partition pending jobs into executor chunks (the campaign *plan*).

    Jobs are grouped by ``(budget, strategy, backend)``
    (:func:`group_jobs_for_batching`);
    every positive-budget group with at least two jobs is cut into batched
    chunks of at most ``fat_batch`` jobs, which the executor retrains through
    one stacked :class:`~repro.accelerator.batched.BatchedFaultTrainer` run
    each.  Everything else — zero-epoch triage lookups, singleton budgets,
    or ``fat_batch == 1`` — becomes single-job chunks on the per-job path.

    ``workers`` is the dispatch parallelism the plan should be able to feed:
    a group is chunked at ``min(fat_batch, ceil(len(group) / workers))`` so a
    single large budget group still splits across every worker instead of
    collapsing into one chunk (slightly smaller stacked batches in exchange
    for keeping all requested processes busy).  ``workers=1`` (the inline
    path) leaves ``fat_batch`` as the only cap.

    Chunks preserve the within-group job order, so planning the same pending
    jobs always yields the same chunks, and executing any plan over the same
    jobs yields bit-identical per-chip results (the batched trainer's
    serial-equivalence guarantee); only the completion order may differ.
    """
    if fat_batch < 1:
        raise ValueError(f"fat_batch must be >= 1, got {fat_batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    chunks: List[List[ChipJob]] = []
    for (epochs, _strategy, _backend), group in group_jobs_for_batching(jobs).items():
        chunk_cap = min(fat_batch, -(-len(group) // workers))
        if chunk_cap > 1 and epochs > 0 and len(group) > 1:
            for start in range(0, len(group), chunk_cap):
                chunks.append(group[start:start + chunk_cap])
        else:
            chunks.extend([job] for job in group)
    return chunks


def execute_job_chunk(
    framework: ReduceFramework,
    chunk: Sequence[ChipJob],
    fat_batch: int = 8,
    attempt: int = 0,
) -> List[ChipRetrainingResult]:
    """Execute one plan chunk; returns results in chunk order.

    Multi-job chunks run through the stacked batched trainer; single-job
    chunks (and ``fat_batch == 1``) take the per-job path.  Either way the
    results equal ``[execute_job(framework, job) for job in chunk]``.
    ``attempt`` tags the chunk span so a trace distinguishes first executions
    from supervisor retries after a worker death or hang.
    """
    chunk_list = list(chunk)
    if not chunk_list:
        return []
    # The chunk span is an execution *attempt*: it lands in the shard of
    # whichever process ran the chunk (worker shards are keyed by pid), and a
    # killed-then-resumed campaign may legitimately record the same chunk
    # twice.  Committed chips are the parent-side "campaign.chip" instants.
    pipeline = framework.eval_pipeline
    with trace.span(
        "campaign.chunk",
        chips=len(chunk_list),
        epochs=chunk_list[0].epochs,
        strategy=chunk_list[0].strategy,
        backend=chunk_list[0].backend or "eager",
        batched=len(chunk_list) > 1 and fat_batch > 1,
        attempt=attempt,
        prefetch=pipeline.prefetch,
        widened_eval=pipeline.widened_eval,
    ):
        if len(chunk_list) <= 1 or fat_batch <= 1:
            results = [execute_job(framework, job) for job in chunk_list]
        else:
            results = execute_jobs_batched(framework, chunk_list, fat_batch=fat_batch)
    metrics.counter("campaign.chunks_executed").inc()
    return results


def execute_jobs_batched(
    framework: ReduceFramework,
    jobs: Sequence[ChipJob],
    fat_batch: int = 8,
) -> List[ChipRetrainingResult]:
    """Execute a same-budget group of jobs through the stacked batched trainer.

    Returns results in job order, bit-identical (on this BLAS build) to
    ``[execute_job(framework, job) for job in jobs]``.  All jobs must share
    the same ``epochs``, ``target_accuracy``, ``strategy`` and ``backend``.
    """
    job_list = list(jobs)
    if not job_list:
        return []
    epochs = job_list[0].epochs
    target = job_list[0].target_accuracy
    strategy = job_list[0].strategy
    backend = job_list[0].backend
    for job in job_list[1:]:
        if (
            job.epochs != epochs
            or job.target_accuracy != target
            or job.strategy != strategy
            or job.backend != backend
        ):
            raise ValueError(
                "batched execution requires jobs with identical epochs, target, "
                f"strategy and backend (got epochs {job.epochs} vs {epochs}, "
                f"target {job.target_accuracy} vs {target}, strategy "
                f"{job.strategy!r} vs {strategy!r}, backend "
                f"{job.backend!r} vs {backend!r})"
            )
    accuracies_before = {
        job.chip_id: job.accuracy_before
        for job in job_list
        if job.accuracy_before is not None
    }
    return framework.retrain_chips_batched(
        [job.to_chip() for job in job_list],
        epochs,
        target_accuracy=target,
        accuracies_before=accuracies_before,
        fat_batch=fat_batch,
        strategy=strategy,
        backend=backend,
    )
