"""Work-unit layer of the campaign engine.

The Step 2+3 slice of the Reduce flow for one chip — look up the retraining
amount, restore the pre-trained weights, retrain under the chip's fault masks
and evaluate against the constraint — is embarrassingly parallel across a
chip population.  A :class:`ChipJob` captures everything that slice needs
beyond the (shared, pre-trained) framework as plain JSON-compatible data:

* the serialized chip (``Chip.to_dict()``: id + fault-map coordinates),
* the retraining amount chosen by the policy in the parent process, and
* the accuracy target resolved once against the clean accuracy.

Jobs are therefore picklable, hashable enough to fingerprint, and executing
one is a pure function of ``(framework pre-trained state, job)``: the
retraining seed is derived from the chip id via ``derive_seed`` inside
:meth:`ReduceFramework.retrain_chip`, so the result does not depend on which
process runs the job or in what order jobs complete.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.core.chips import Chip, ChipPopulation
from repro.core.reduce import ChipRetrainingResult, ReduceFramework
from repro.core.selection import RetrainingPolicy


@dataclasses.dataclass(frozen=True)
class ChipJob:
    """One chip's select+retrain+evaluate step, as a self-contained unit."""

    chip: Dict[str, Any]
    epochs: float
    target_accuracy: float
    policy_name: str
    # Initial (pre-retraining) accuracy measured by the engine's batched
    # triage pass; workers then skip the serial initial evaluation.  Not part
    # of the campaign fingerprint: it is derived data, not work definition.
    accuracy_before: Optional[float] = None

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")

    @property
    def chip_id(self) -> str:
        return str(self.chip["chip_id"])

    def to_chip(self) -> Chip:
        return Chip.from_dict(self.chip)

    def with_accuracy_before(self, accuracy: float) -> "ChipJob":
        return dataclasses.replace(self, accuracy_before=float(accuracy))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChipJob":
        accuracy_before = data.get("accuracy_before")
        return cls(
            chip=dict(data["chip"]),
            epochs=float(data["epochs"]),
            target_accuracy=float(data["target_accuracy"]),
            policy_name=str(data["policy_name"]),
            accuracy_before=None if accuracy_before is None else float(accuracy_before),
        )


def build_jobs(
    framework: ReduceFramework,
    population: ChipPopulation,
    policy: RetrainingPolicy,
) -> List[ChipJob]:
    """Resolve a policy over a population into per-chip jobs (Step 2 output).

    Jobs are returned in population order; the campaign engine preserves that
    order in its results regardless of completion order, so serial and
    parallel runs are directly comparable.
    """
    amounts = policy.epochs_for_population(population)
    target = framework.target_accuracy
    return [
        ChipJob(
            chip=chip.to_dict(),
            epochs=float(amounts[chip.chip_id]),
            target_accuracy=target,
            policy_name=policy.name,
        )
        for chip in population
    ]


def execute_job(framework: ReduceFramework, job: ChipJob) -> ChipRetrainingResult:
    """Run one job against a framework holding the pre-trained weights."""
    return framework.retrain_chip(
        job.to_chip(),
        job.epochs,
        target_accuracy=job.target_accuracy,
        accuracy_before=job.accuracy_before,
    )
