"""Batch-norm statistics recalibration after fault-aware pruning.

Zeroing weights changes the activation statistics of every subsequent layer,
so a batch-norm network evaluated with its *pre-fault* running statistics can
look much worse than it really is.  Recalibrating the running statistics with
a handful of forward passes (no gradient computation, no label usage) is a
cheap way to recover part of that gap before any retraining — and it composes
with FAT, which then starts from a better operating point.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro import nn
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset


def reset_batchnorm_stats(model: nn.Module) -> int:
    """Reset every BatchNorm layer's running statistics to the identity.

    Returns the number of batch-norm layers reset.
    """
    count = 0
    for module in model.modules():
        if isinstance(module, nn.BatchNorm2d):  # BatchNorm1d subclasses BatchNorm2d
            module.running_mean = np.zeros(module.num_features, dtype=np.float32)
            module.running_var = np.ones(module.num_features, dtype=np.float32)
            count += 1
    return count


def recalibrate_batchnorm(
    model: nn.Module,
    data: Union[Dataset, DataLoader],
    num_batches: Optional[int] = None,
    batch_size: int = 64,
    reset: bool = True,
    momentum: Optional[float] = 0.1,
) -> int:
    """Recompute batch-norm running statistics with label-free forward passes.

    Parameters
    ----------
    data:
        Dataset or loader providing calibration inputs (labels are ignored).
    num_batches:
        Number of batches to stream through the model (``None`` = all).
    reset:
        Reset the running statistics before recalibration so that stale
        pre-fault statistics do not linger.
    momentum:
        Temporary batch-norm momentum used during calibration; ``None`` keeps
        each layer's configured momentum.

    Returns the number of batches used.  The model's train/eval mode is
    restored afterwards.
    """
    bn_layers = [m for m in model.modules() if isinstance(m, nn.BatchNorm2d)]
    if not bn_layers:
        return 0
    if reset:
        reset_batchnorm_stats(model)

    loader = data if isinstance(data, DataLoader) else DataLoader(data, batch_size=batch_size)
    was_training = model.training
    original_momenta = [layer.momentum for layer in bn_layers]
    if momentum is not None:
        for layer in bn_layers:
            layer.momentum = momentum

    model.train()
    batches_used = 0
    try:
        with nn.no_grad():
            for inputs, _targets in loader:
                model(inputs)
                batches_used += 1
                if num_batches is not None and batches_used >= num_batches:
                    break
    finally:
        for layer, original in zip(bn_layers, original_momenta):
            layer.momentum = original
        model.train(was_training)
    return batches_used
