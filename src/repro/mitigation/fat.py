"""Fault-Aware Training / retraining (FAT), after Zhang et al. (VTS 2018).

FAT fine-tunes a pre-trained network *with the fault masks enforced*: the
weights mapped onto faulty PEs are clamped at zero throughout training, so
the remaining weights learn to compensate.  FAT recovers most of the accuracy
lost to fault-aware pruning but its retraining cost is what the Reduce
framework sets out to minimise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.systolic_array import SystolicArray
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.data.synthetic import DatasetBundle
from repro.mitigation.fap import apply_fap, build_fap_masks
from repro.training import Trainer, TrainingConfig, TrainingHistory

MaskDict = Dict[str, np.ndarray]


@dataclasses.dataclass(frozen=True)
class FatResult:
    """Outcome of one fault-aware retraining run."""

    history: TrainingHistory
    masks: MaskDict
    masked_fraction: float
    epochs_trained: float

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def initial_accuracy(self) -> float:
        """Accuracy after pruning but before any retraining (the FAP accuracy)."""
        return self.history.records[0].eval_accuracy


class FaultAwareTrainer(Trainer):
    """A :class:`~repro.training.Trainer` that enforces fault masks.

    This subclass exists mainly for discoverability (the paper's Step 3 uses
    "fault-aware retraining"); all mask enforcement already lives in the base
    trainer, here the masks are simply mandatory.
    """

    def __init__(
        self,
        model: nn.Module,
        masks: MaskDict,
        train_data: Union[Dataset, DataLoader],
        eval_data: Union[Dataset, DataLoader],
        config: Optional[TrainingConfig] = None,
    ) -> None:
        if masks is None:
            raise ValueError("FaultAwareTrainer requires fault masks; use Trainer for clean training")
        super().__init__(model, train_data, eval_data, config=config, masks=masks)


def fault_aware_retrain(
    model: nn.Module,
    fault_map_or_masks: Union[FaultMap, SystolicArray, MaskDict],
    bundle: DatasetBundle,
    epochs: float,
    config: Optional[TrainingConfig] = None,
    eval_checkpoints: Optional[Sequence[float]] = None,
    column_permutations: Optional[Dict[str, np.ndarray]] = None,
) -> FatResult:
    """Run FAP followed by FAT on ``model`` (modified in place).

    ``fault_map_or_masks`` may be a :class:`FaultMap`, a
    :class:`SystolicArray` or a pre-computed mask dictionary.  ``epochs`` may
    be fractional (e.g. ``0.05`` as in the paper's Fig. 2a).
    """
    if isinstance(fault_map_or_masks, dict):
        masks = fault_map_or_masks
    else:
        masks = build_fap_masks(model, fault_map_or_masks, column_permutations)
    trainer = FaultAwareTrainer(model, masks, bundle.train, bundle.test, config=config)
    history = trainer.train(epochs, eval_checkpoints=eval_checkpoints)
    masked = sum(int(mask.sum()) for mask in masks.values())
    total = sum(mask.size for mask in masks.values())
    return FatResult(
        history=history,
        masks=masks,
        masked_fraction=masked / total if total else 0.0,
        epochs_trained=history.total_epochs,
    )
