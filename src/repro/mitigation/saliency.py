"""Weight-saliency metrics used by fault-aware mapping (SalvageDNN).

Saliency estimates how much a weight (or a group of weights) contributes to
the network's function; fault-aware mapping steers the *least* salient
weights onto faulty PEs so that zeroing them costs the least accuracy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro import nn
from repro.accelerator.mapping import mappable_layers, weight_matrix_view

SaliencyFn = Callable[[np.ndarray], np.ndarray]


def magnitude_saliency(weight_matrix: np.ndarray) -> np.ndarray:
    """Per-weight saliency = |w| (the metric used by SalvageDNN's L1 mode)."""
    return np.abs(weight_matrix)


def squared_saliency(weight_matrix: np.ndarray) -> np.ndarray:
    """Per-weight saliency = w^2 (second-order-ish proxy)."""
    return weight_matrix * weight_matrix


_SALIENCY_METRICS: Dict[str, SaliencyFn] = {
    "magnitude": magnitude_saliency,
    "l1": magnitude_saliency,
    "squared": squared_saliency,
    "l2": squared_saliency,
}


def get_saliency_metric(name: str) -> SaliencyFn:
    """Look up a per-weight saliency metric by name."""
    key = name.lower()
    if key not in _SALIENCY_METRICS:
        raise KeyError(
            f"unknown saliency metric {name!r}; available: {', '.join(sorted(_SALIENCY_METRICS))}"
        )
    return _SALIENCY_METRICS[key]


def output_channel_saliency(
    module: nn.Module, metric: str = "magnitude"
) -> np.ndarray:
    """Total saliency of each output channel / neuron of a mappable layer.

    Returns a vector of length ``N_out``; fault-aware mapping groups output
    channels by the physical array column they land on and compares these
    totals to decide which groups to sacrifice.
    """
    saliency_fn = get_saliency_metric(metric)
    matrix = weight_matrix_view(module)  # (N_out, K)
    return saliency_fn(matrix).sum(axis=1)


def model_channel_saliency(model: nn.Module, metric: str = "magnitude") -> Dict[str, np.ndarray]:
    """Per-layer output-channel saliency for every mappable layer."""
    return {
        name: output_channel_saliency(module, metric=metric)
        for name, module in mappable_layers(model)
    }
