"""Fault-Aware Mapping (FAM), after SalvageDNN (Hanif & Shafique, 2020).

FAM improves on plain fault-aware pruning by choosing *which* weights get
sacrificed: the mapping of logical output channels onto physical array
columns is permuted so that the columns containing the most faulty PEs
receive the least salient output channels.  The permutation is transparent to
the network's function (the hardware re-orders the columns), so in simulation
it only changes which weights the fault masks select.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.mapping import (
    layer_gemm_shape,
    mappable_layers,
    masked_weight_fraction,
    model_fault_masks,
)
from repro.accelerator.systolic_array import SystolicArray
from repro.mitigation.saliency import output_channel_saliency
from repro.training import enforce_weight_masks

MaskDict = Dict[str, np.ndarray]
PermutationDict = Dict[str, np.ndarray]


def _column_group_saliency(channel_saliency: np.ndarray, num_columns: int) -> np.ndarray:
    """Total saliency of the output channels mapped onto each physical column.

    Under the periodic mapping, logical output ``n`` lands on column group
    ``n mod C``; the group's saliency is the sum over its channels.
    """
    groups = np.zeros(num_columns, dtype=np.float64)
    indices = np.arange(channel_saliency.shape[0]) % num_columns
    np.add.at(groups, indices, channel_saliency.astype(np.float64))
    return groups


def layer_column_permutation(
    module: nn.Module,
    fault_map: FaultMap,
    metric: str = "magnitude",
) -> np.ndarray:
    """Saliency-driven column permutation for one layer.

    Returns ``perm`` such that logical column group ``j`` is mapped onto
    physical column ``perm[j]``: the least salient groups are assigned to the
    physical columns with the most faulty PEs.
    """
    gemm = layer_gemm_shape(module)
    num_columns = fault_map.cols
    channel_saliency = output_channel_saliency(module, metric=metric)
    group_saliency = _column_group_saliency(channel_saliency, num_columns)

    # Faults affecting each physical column, restricted to the rows this
    # layer actually uses (reduction indices k < K map to rows k mod R).
    rows_used = np.bincount(
        np.arange(gemm.reduce_dim) % fault_map.rows, minlength=fault_map.rows
    )
    column_fault_weight = (fault_map.array * rows_used[:, None]).sum(axis=0)

    groups_by_saliency = np.argsort(group_saliency, kind="stable")  # ascending saliency
    columns_by_faults = np.argsort(-column_fault_weight, kind="stable")  # descending faults
    permutation = np.empty(num_columns, dtype=np.int64)
    permutation[groups_by_saliency] = columns_by_faults
    return permutation


@dataclasses.dataclass(frozen=True)
class FamResult:
    """Outcome of applying fault-aware mapping + pruning to a model."""

    masks: MaskDict
    permutations: PermutationDict
    masked_fraction: float
    masked_saliency: float
    baseline_masked_saliency: float

    @property
    def saliency_saving(self) -> float:
        """Relative reduction in total masked saliency vs. naive mapping."""
        if self.baseline_masked_saliency == 0:
            return 0.0
        return 1.0 - self.masked_saliency / self.baseline_masked_saliency


def compute_column_permutations(
    model: nn.Module,
    fault_map_or_array,
    metric: str = "magnitude",
) -> PermutationDict:
    """Per-layer saliency-driven column permutations for the whole model."""
    fault_map = (
        fault_map_or_array.fault_map
        if isinstance(fault_map_or_array, SystolicArray)
        else fault_map_or_array
    )
    return {
        name: layer_column_permutation(module, fault_map, metric=metric)
        for name, module in mappable_layers(model)
    }


def _total_masked_saliency(model: nn.Module, masks: MaskDict, metric: str) -> float:
    from repro.mitigation.saliency import get_saliency_metric
    from repro.accelerator.mapping import weight_matrix_view

    saliency_fn = get_saliency_metric(metric)
    modules = dict(model.named_modules())
    total = 0.0
    for name, mask in masks.items():
        module = modules[name]
        matrix = weight_matrix_view(module)
        matrix_mask = mask.reshape(matrix.shape)
        total += float(saliency_fn(matrix)[matrix_mask].sum())
    return total


def apply_fam(
    model: nn.Module,
    fault_map_or_array,
    metric: str = "magnitude",
    prune: bool = True,
) -> FamResult:
    """Apply fault-aware mapping (and, by default, the resulting pruning).

    With ``prune=False`` only the permutations and masks are computed, which
    is useful for analysing the mapping without modifying the model.
    """
    fault_map = (
        fault_map_or_array.fault_map
        if isinstance(fault_map_or_array, SystolicArray)
        else fault_map_or_array
    )
    permutations = compute_column_permutations(model, fault_map, metric=metric)
    baseline_masks = model_fault_masks(model, fault_map)
    masks = model_fault_masks(model, fault_map, permutations)
    masked_saliency = _total_masked_saliency(model, masks, metric)
    baseline_saliency = _total_masked_saliency(model, baseline_masks, metric)
    if prune:
        # Same construction-time keep-multiplier path as the trainers (and
        # apply_fap), so FAM pruning cannot drift from FAT enforcement.
        enforce_weight_masks(model, masks)
    return FamResult(
        masks=masks,
        permutations=permutations,
        masked_fraction=masked_weight_fraction(masks),
        masked_saliency=masked_saliency,
        baseline_masked_saliency=baseline_saliency,
    )
