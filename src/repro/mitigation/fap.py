"""Fault-Aware Pruning (FAP), after Zhang et al. (VTS 2018).

FAP exploits the intrinsic resilience of DNNs to pruning: a faulty PE's MAC
is bypassed in hardware, which is functionally equivalent to forcing every
weight mapped onto that PE to zero.  The accelerator keeps its full
throughput (unlike row/column bypass) at the cost of some accuracy loss —
which Fault-Aware Training (:mod:`repro.mitigation.fat`) then recovers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.accelerator.fault_map import FaultMap
from repro.accelerator.mapping import masked_weight_fraction, model_fault_masks
from repro.accelerator.systolic_array import SystolicArray
from repro.training import enforce_weight_masks, resolve_masked_parameters

MaskDict = Dict[str, np.ndarray]


@dataclasses.dataclass(frozen=True)
class FapResult:
    """Outcome of applying fault-aware pruning to a model."""

    masks: MaskDict
    masked_fraction: float
    per_layer_fraction: Dict[str, float]

    @property
    def num_masked_weights(self) -> int:
        return sum(int(mask.sum()) for mask in self.masks.values())

    @property
    def num_total_weights(self) -> int:
        return sum(mask.size for mask in self.masks.values())


def build_fap_masks(
    model: nn.Module,
    fault_map_or_array,
    column_permutations: Optional[Dict[str, np.ndarray]] = None,
) -> MaskDict:
    """Per-layer boolean masks (True = weight mapped onto a faulty PE)."""
    return model_fault_masks(model, fault_map_or_array, column_permutations)


def apply_fap(
    model: nn.Module,
    fault_map_or_array,
    column_permutations: Optional[Dict[str, np.ndarray]] = None,
) -> FapResult:
    """Apply fault-aware pruning to ``model`` in place.

    The weights selected by the fault map are zeroed and the masks are
    returned so that fault-aware training can keep them clamped at zero.
    Masks are resolved and enforced through the same construction-time
    :func:`~repro.training.resolve_masked_parameters` path (in-place float32
    keep-multipliers) the serial and batched trainers use, so pruning here
    and mask enforcement during FAT are bit-identical and cannot drift.
    """
    masks = build_fap_masks(model, fault_map_or_array, column_permutations)
    enforce_weight_masks(model, masks)
    per_layer = {
        name: (float(mask.sum()) / mask.size if mask.size else 0.0) for name, mask in masks.items()
    }
    return FapResult(
        masks=masks,
        masked_fraction=masked_weight_fraction(masks),
        per_layer_fraction=per_layer,
    )


def verify_masks_enforced(model: nn.Module, masks: MaskDict, atol: float = 0.0) -> bool:
    """Check that every masked weight of ``model`` is (still) zero.

    Masks resolve to live weight tensors through the trainers'
    :func:`~repro.training.resolve_masked_parameters` path, so the check
    validates exactly what the keep-multiplier enforcement operates on; a
    mask naming an unknown layer or mismatching the weight's shape yields
    ``False`` (it cannot be enforced by any path).
    """
    try:
        resolved = resolve_masked_parameters(model, masks)
    except (KeyError, ValueError):
        return False
    for masked in resolved:
        values = masked.weight.data[masked.mask]
        if values.size and not np.all(np.abs(values) <= atol):
            return False
    return True
