"""Mitigation strategies: how a chip is mitigated, as a first-class axis.

The paper's central claim is comparative: fault-aware *retraining* (FAT)
beats — and composes with — cheaper mitigations such as fault-aware pruning
(FAP), fault-aware mapping (FAM) and PE bypass.  A
:class:`MitigationStrategy` captures one point of that comparison as a
declarative recipe the campaign machinery can sweep:

* which weights are clamped to zero (plain FAP masks, or FAM's
  saliency-permuted masks),
* whether the faulty rows/columns are bypassed instead (shrunk array:
  accuracy preserved, throughput lost),
* whether the Step-2 retraining budget is actually spent (FAT).

Strategies are named by ``+``-separated component specs — ``"fat"``,
``"fap"``, ``"fam+fat"``, ``"bypass+fat"``, ``"none"`` — and resolve to
frozen, hashable objects.  Everything downstream of mask construction is
unchanged: a strategy's masks flow into the same
:class:`~repro.training.MaskedParameter` keep-multipliers (serial) and
stacked keep-multiplier tensors (:class:`~repro.accelerator.batched.BatchedFaultTrainer`)
that plain FAT uses, so ``--jobs N x --fat-batch B`` campaigns execute any
strategy without new training machinery.

Semantics of the components
---------------------------

``none``
    No mitigation effort.  The permanent faults still zero the weights
    mapped onto faulty PEs (that is the physical fault model), but nothing
    is gated, remapped, bypassed or retrained.
``fap``
    Fault-aware pruning (Zhang et al., VTS 2018): the faulty-PE weights are
    clamped at zero and the hardware clock-gates the corresponding MACs
    (modelled as a MAC-energy saving).  Accuracy equals the unmitigated
    faulty accuracy; no retraining is spent.
``fam``
    Fault-aware mapping (SalvageDNN): a saliency-driven column permutation
    steers the least-salient output channels onto the faultiest physical
    columns before pruning.  Implies pruning of the (permuted) masks.  An
    optional metric suffix selects the saliency metric (``fam:squared``;
    default magnitude) and is part of the strategy's identity.
``bypass``
    Classic row/column bypass: the faulty rows or columns are skipped so the
    surviving PEs form a smaller fault-free array.  Accuracy is preserved
    perfectly where feasible, at a throughput cost
    (:func:`~repro.accelerator.bypass.bypass_slowdown`); at high fault rates
    bypass can be infeasible (every row *and* column contains faults).
``fat``
    Fault-aware retraining: spend the Step-2 budget with the strategy's
    masks enforced.  ``bypass+fat`` is a hybrid: chips where bypass is
    feasible skip retraining entirely, chips where it is not fall back to
    FAP + FAT.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.accelerator.bypass import BypassPlan, best_bypass_plan
from repro.accelerator.fault_map import FaultMap
from repro.mitigation.fam import compute_column_permutations
from repro.mitigation.fap import build_fap_masks

MaskDict = Dict[str, np.ndarray]

#: Components a strategy spec may be composed of.
STRATEGY_COMPONENTS = ("none", "fap", "fam", "bypass", "fat")

#: Canonical saliency-metric names (aliases collapse so that equivalent
#: FAM specs share one identity: ``fam:l1`` is ``fam``, ``fam:l2`` is
#: ``fam:squared``).
_METRIC_CANONICAL = {
    "magnitude": "magnitude",
    "l1": "magnitude",
    "squared": "squared",
    "l2": "squared",
}

#: The strategy of every pre-existing campaign: FAP masks + retraining.
DEFAULT_STRATEGY_NAME = "fat"


def compose_masks(*mask_dicts: Optional[MaskDict]) -> MaskDict:
    """Union of several per-layer boolean mask sets (keep-multiplier product).

    Utility for callers layering additional prune masks on top of a
    strategy's fault masks (e.g. conventional sparsity pruning before FAT): a
    weight is clamped when *any* source masks it, and since masks are
    enforced as multiplicative float keep-factors (1.0 keep / 0.0 clamp) the
    union of boolean masks equals the product of their keep-multipliers, so
    the composed dict feeds the serial and stacked trainers unchanged.
    """
    composed: MaskDict = {}
    for masks in mask_dicts:
        if not masks:
            continue
        for name, mask in masks.items():
            if name in composed:
                if composed[name].shape != mask.shape:
                    raise ValueError(
                        f"cannot compose masks of shapes {composed[name].shape} and "
                        f"{mask.shape} for layer {name!r}"
                    )
                composed[name] = composed[name] | np.asarray(mask, dtype=bool)
            else:
                composed[name] = np.asarray(mask, dtype=bool)
    return composed


@dataclasses.dataclass(frozen=True)
class MitigationStrategy:
    """One mitigation recipe: masks to enforce, bypass plan, retraining or not."""

    name: str
    prune: bool = False
    remap: bool = False
    bypass: bool = False
    retrain: bool = False
    saliency_metric: str = "magnitude"

    # -- identity ----------------------------------------------------------------

    @property
    def gates_pruned_macs(self) -> bool:
        """Whether the hardware clock-gates the clamped MACs (FAP energy saving)."""
        return self.prune

    def gates_pruned_macs_for(self, fault_map: FaultMap) -> bool:
        """Whether *this chip's* executed mitigation clock-gates pruned MACs.

        Pruning strategies gate every chip; a retraining bypass strategy
        gates exactly its FAP+FAT fallback chips (a bypassed chip prunes
        nothing, and plain ``bypass``/``none`` never gate).  This is the
        per-chip rule the energy accounting must follow — keep it here so
        new strategy variants cannot drift from their reported overheads.
        """
        if self.bypass:
            return self.retrain and self.bypass_plan(fault_map) is None
        return self.prune

    @property
    def triage_key(self) -> str:
        """Strategies sharing this key measure ``accuracy_before`` under the
        same masks, so a sweep can share one batched triage pass among them."""
        if self.remap:
            return f"fam:{self.saliency_metric}"
        return "fap"

    # -- bypass ------------------------------------------------------------------

    def bypass_plan(self, fault_map: FaultMap) -> Optional[BypassPlan]:
        """The row/column bypass plan for a chip, or ``None``.

        ``None`` means bypass does not apply: either this strategy does not
        bypass at all, or every row and column of the fault map contains a
        fault (bypass infeasible — ``bypass+fat`` falls back to FAT then).
        """
        if not self.bypass:
            return None
        try:
            return best_bypass_plan(fault_map)
        except ValueError:
            return None

    # -- per-chip work definition ---------------------------------------------------

    def effective_epochs(self, epochs: float, fault_map: FaultMap) -> float:
        """The retraining budget actually spent on a chip under this strategy.

        Non-retraining strategies spend nothing; a bypassable chip under
        ``bypass+fat`` spends nothing either (its accuracy is already
        preserved by the shrunk array).
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if not self.retrain:
            return 0.0
        if self.bypass and self.bypass_plan(fault_map) is not None:
            return 0.0
        return float(epochs)

    def chip_masks(self, model: nn.Module, fault_map: FaultMap) -> MaskDict:
        """Per-layer masks the chip's weights are clamped with.

        For FAM strategies the masks come from the saliency-driven column
        permutation (computed against the model's *current* — i.e.
        pre-trained — weights); everything else uses the plain periodic fault
        masks.  Bypass strategies also return the plain masks: they describe
        the chip's physical faults, which is what ``accuracy_before`` is
        measured under and what the FAT fallback trains against.
        """
        if self.remap:
            permutations = compute_column_permutations(
                model, fault_map, metric=self.saliency_metric
            )
            return build_fap_masks(model, fault_map, permutations)
        return build_fap_masks(model, fault_map)


def _parse_spec(spec: str) -> Tuple[Tuple[str, ...], str]:
    """Split a spec into its base components and the FAM saliency metric.

    A ``fam`` component may carry a metric suffix (``fam:l2``); aliases
    collapse to their canonical metric so equivalent specs share an identity.
    """
    raw = [part.strip().lower() for part in spec.split("+")]
    if not raw or any(not part for part in raw):
        raise ValueError(f"empty component in strategy spec {spec!r}")
    parts = []
    metric = "magnitude"
    for part in raw:
        base, _, suffix = part.partition(":")
        if suffix:
            if base != "fam":
                raise ValueError(
                    f"only 'fam' takes a saliency-metric suffix, got {part!r} in {spec!r}"
                )
            if suffix not in _METRIC_CANONICAL:
                raise ValueError(
                    f"unknown saliency metric {suffix!r} in {spec!r}; "
                    f"available: {', '.join(sorted(set(_METRIC_CANONICAL)))}"
                )
            metric = _METRIC_CANONICAL[suffix]
        parts.append(base)
    unknown = [part for part in parts if part not in STRATEGY_COMPONENTS]
    if unknown:
        raise ValueError(
            f"unknown strategy component(s) {unknown} in {spec!r}; "
            f"available: {', '.join(STRATEGY_COMPONENTS)}"
        )
    if len(set(parts)) != len(parts):
        raise ValueError(f"duplicate component in strategy spec {spec!r}")
    if "none" in parts and len(parts) > 1:
        raise ValueError(f"'none' cannot be combined with other components ({spec!r})")
    if "bypass" in parts and ("fap" in parts or "fam" in parts):
        raise ValueError(
            f"'bypass' cannot combine with 'fap'/'fam' ({spec!r}): the bypassed "
            "array has no faulty PEs left to prune or remap"
        )
    if "fam" in parts and "fap" in parts:
        raise ValueError(f"'fam' already implies pruning; drop 'fap' from {spec!r}")
    return tuple(parts), metric


def parse_strategy(spec: str) -> MitigationStrategy:
    """Parse a ``+``-separated strategy spec into a :class:`MitigationStrategy`.

    The canonicalised spec is the strategy's name and identity — component
    order, case and metric aliases must not change which campaign (and which
    resumable store) a spec names, so ``"fat+fap"`` is ``"fap+fat"`` and
    ``"fam:l1+fat"`` is ``"fam+fat"``, while a non-default FAM metric is part
    of the name (``"fam:squared+fat"``) and therefore of every job's
    fingerprint.  ``"fat"`` and ``"fap+fat"`` are distinct sweepable
    strategies even though their per-chip results are bit-identical in this
    substrate (FAT always enforces the FAP masks).
    """
    parts, metric = _parse_spec(spec)
    # Canonical component order: identity must not depend on how the user
    # spelled the spec ("fat+fap" and "fap+fat" are the same campaign, the
    # same fingerprint and the same resumable store).
    parts = tuple(sorted(parts, key=STRATEGY_COMPONENTS.index))
    name = "+".join(
        part if part != "fam" or metric == "magnitude" else f"fam:{metric}"
        for part in parts
    )
    retrain = "fat" in parts
    remap = "fam" in parts
    bypass = "bypass" in parts
    # Pruning (with MAC clock-gating) is explicit via fap/fam, and implied by
    # FAT on a non-bypassed array — retraining clamps the faulty weights.
    prune = ("fap" in parts) or remap or (retrain and not bypass)
    return MitigationStrategy(
        name=name,
        prune=prune,
        remap=remap,
        bypass=bypass,
        retrain=retrain,
        saliency_metric=metric,
    )


StrategyLike = Union[str, MitigationStrategy, None]


def resolve_strategy(strategy: StrategyLike) -> MitigationStrategy:
    """Coerce a spec string / strategy / ``None`` into a strategy instance.

    ``None`` resolves to the default FAT strategy, i.e. the exact behaviour
    of every pre-strategy campaign.  :func:`parse_strategy` is the canonical
    constructor: a strategy's ``name`` is its campaign identity (job tags,
    fingerprints, stores), so hand-built instances must keep the name
    consistent with their flags and metric.
    """
    if strategy is None:
        return parse_strategy(DEFAULT_STRATEGY_NAME)
    if isinstance(strategy, MitigationStrategy):
        return strategy
    return parse_strategy(str(strategy))


def parse_strategy_list(
    specs: Union[str, Sequence[Union[str, "MitigationStrategy"]]],
) -> Tuple[MitigationStrategy, ...]:
    """Parse a comma-separated string (or sequence of specs / strategies).

    Order is preserved and duplicates (by canonical name) are rejected — a
    sweep runs each strategy exactly once.
    """
    if isinstance(specs, str):
        items: Sequence[Union[str, MitigationStrategy]] = [
            item for item in (part.strip() for part in specs.split(",")) if item
        ]
    else:
        items = list(specs)
    if not items:
        raise ValueError("at least one mitigation strategy is required")
    strategies = tuple(resolve_strategy(item) for item in items)
    names = [strategy.name for strategy in strategies]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate strategies in {list(names)}")
    return strategies


def available_strategies() -> Tuple[str, ...]:
    """Canonical names of the common, known-good strategy specs."""
    return ("none", "fap", "fam", "fat", "fap+fat", "fam+fat", "bypass", "bypass+fat")
