"""Permanent-fault mitigation techniques: FAP, FAM and FAT.

These are the baselines / building blocks the Reduce framework orchestrates:

* :mod:`repro.mitigation.fap` — Fault-Aware Pruning (zero weights mapped onto
  faulty PEs),
* :mod:`repro.mitigation.fam` — Fault-Aware Mapping (SalvageDNN-style
  saliency-driven column permutation before pruning),
* :mod:`repro.mitigation.fat` — Fault-Aware Training (retraining with masks
  enforced), whose cost Reduce minimises,
* :mod:`repro.mitigation.strategy` — mitigation *strategies* (``fat``,
  ``fap``, ``fam+fat``, ``bypass+fat``, ...) as a first-class, sweepable
  campaign axis combining the techniques above with PE bypass.
"""

from repro.mitigation.saliency import (
    magnitude_saliency,
    squared_saliency,
    get_saliency_metric,
    output_channel_saliency,
    model_channel_saliency,
)
from repro.mitigation.fap import FapResult, build_fap_masks, apply_fap, verify_masks_enforced
from repro.mitigation.fam import (
    FamResult,
    layer_column_permutation,
    compute_column_permutations,
    apply_fam,
)
from repro.mitigation.fat import FatResult, FaultAwareTrainer, fault_aware_retrain
from repro.mitigation.calibration import recalibrate_batchnorm, reset_batchnorm_stats
from repro.mitigation.strategy import (
    DEFAULT_STRATEGY_NAME,
    MitigationStrategy,
    available_strategies,
    compose_masks,
    parse_strategy,
    parse_strategy_list,
    resolve_strategy,
)

__all__ = [
    "DEFAULT_STRATEGY_NAME",
    "MitigationStrategy",
    "available_strategies",
    "compose_masks",
    "parse_strategy",
    "parse_strategy_list",
    "resolve_strategy",
    "recalibrate_batchnorm",
    "reset_batchnorm_stats",
    "magnitude_saliency",
    "squared_saliency",
    "get_saliency_metric",
    "output_channel_saliency",
    "model_channel_saliency",
    "FapResult",
    "build_fap_masks",
    "apply_fap",
    "verify_masks_enforced",
    "FamResult",
    "layer_column_permutation",
    "compute_column_permutations",
    "apply_fam",
    "FatResult",
    "FaultAwareTrainer",
    "fault_aware_retrain",
]
