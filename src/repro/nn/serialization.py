"""Checkpoint serialization for models and training state.

Checkpoints are stored as ``.npz`` archives holding the flat
``state_dict`` of a module.  The Reduce framework snapshots the pre-trained
model once and reloads it before retraining for every faulty chip, so cheap
and exact round-tripping matters.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]


def state_dict_to_arrays(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Validate and normalise a state dict into plain numpy arrays."""
    arrays: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, value in state.items():
        if value is None:
            continue
        arrays[str(name)] = np.asarray(value)
    return arrays


def save_checkpoint(module_or_state: Union[Module, Dict[str, np.ndarray]], path: PathLike) -> Path:
    """Save a module's (or raw) state dict to an ``.npz`` checkpoint."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module_or_state.state_dict() if isinstance(module_or_state, Module) else module_or_state
    arrays = state_dict_to_arrays(state)
    np.savez(path, **arrays)
    return path


def load_checkpoint(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict saved by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; accept both spellings.
        alternative = path.with_suffix(path.suffix + ".npz")
        if alternative.exists():
            path = alternative
        else:
            raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name].copy() for name in archive.files}


def load_into(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Load a checkpoint file directly into ``module`` and return it."""
    module.load_state_dict(load_checkpoint(path), strict=strict)
    return module


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep-copy a state dict (used to snapshot pre-trained weights in memory)."""
    return OrderedDict((name, np.array(value, copy=True)) for name, value in state.items())


def state_dicts_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray], atol: float = 0.0) -> bool:
    """Return True when two state dicts contain identical keys and values."""
    if set(a) != set(b):
        return False
    for name in a:
        left, right = np.asarray(a[name]), np.asarray(b[name])
        if left.shape != right.shape:
            return False
        if atol == 0.0:
            if not np.array_equal(left, right):
                return False
        elif not np.allclose(left, right, atol=atol):
            return False
    return True
