"""A small reverse-mode automatic-differentiation engine on top of numpy.

This module provides the :class:`Tensor` class used throughout the library
as the substrate for training deep neural networks.  It deliberately follows
the same mental model as PyTorch (the framework used by the original paper):

* a :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional gradient;
* differentiable operations are implemented as :class:`Function` subclasses
  with ``forward``/``backward`` static behaviour;
* calling :meth:`Tensor.backward` on a scalar result walks the recorded graph
  in reverse topological order and accumulates gradients into the leaf
  tensors (the model parameters).

Only the operations required by the models and training procedures in this
repository are implemented, but they are implemented completely (broadcasting,
reductions over arbitrary axes, matrix products, element-wise math, shape
manipulation and indexing), so the engine is usable as a general-purpose
mini-framework.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import capture as backend_capture
from repro.backends.errors import BackendError, describe_operands

DEFAULT_DTYPE = np.float32

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# ---------------------------------------------------------------------------
# Global autograd state
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager re-enabling gradient recording inside ``no_grad``."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


# ---------------------------------------------------------------------------
# Function base class
# ---------------------------------------------------------------------------


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (producing a numpy array from numpy
    inputs) and :meth:`backward` (mapping the upstream gradient to a tuple of
    gradients, one per tensor input, in positional order).  Non-tensor inputs
    (integers, axis tuples, hyper-parameters) are passed through unchanged and
    receive no gradient.
    """

    def __init__(self) -> None:
        self.parents: Tuple["Tensor", ...] = ()
        self.saved: Tuple[Any, ...] = ()
        # Which positional tensor inputs need a gradient; backward
        # implementations may skip computing gradients (returning None) for
        # inputs flagged False — e.g. the conv input-gradient scatter for the
        # first layer, whose input is the data batch.
        self.needs_input_grad: Tuple[bool, ...] = ()

    def save_for_backward(self, *values: Any) -> None:
        self.saved = values

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        ctx = cls()
        tensor_inputs = tuple(a for a in args if isinstance(a, Tensor))
        ctx.needs_input_grad = tuple(
            is_grad_enabled() and t.requires_grad for t in tensor_inputs
        )
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        op_name = getattr(cls, "capture_name", cls.__name__.lower())
        try:
            output_data = ctx.forward(*raw_args, **kwargs)
        except AssertionError as exc:
            raise BackendError(
                f"forward violated a dtype/contiguity invariant for inputs "
                f"{describe_operands(raw_args)}: {exc}",
                op=op_name,
            ) from exc
        if not isinstance(output_data, (np.ndarray, np.generic)):
            raise BackendError(
                f"forward returned {type(output_data).__name__} for inputs "
                f"{describe_operands(raw_args)}, expected ndarray",
                op=op_name,
            )
        # Float32 dtype discipline: an op whose tensor inputs are all float32
        # must not silently promote its output to float64 (e.g. via a numpy
        # scalar operand) — a promotion would cascade through the rest of the
        # graph, doubling memory traffic on every downstream hot path.
        if (
            output_data.dtype == np.float64
            and tensor_inputs
            and all(t.data.dtype != np.float64 for t in tensor_inputs)
        ):
            output_data = output_data.astype(DEFAULT_DTYPE)
        requires_grad = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
        output = Tensor(output_data, requires_grad=requires_grad)
        if backend_capture.is_capturing():
            # Record the post-construction array: Tensor() may coerce (numpy
            # scalars, integer dtypes), and downstream ops consume that array.
            backend_capture.record_function(cls, args, kwargs, output.data)
        if requires_grad:
            ctx.parents = tensor_inputs
            output._ctx = ctx
        return output

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


class Add(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad_output: np.ndarray):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad_output, a_shape), _unbroadcast(grad_output, b_shape)


class Sub(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad_output: np.ndarray):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad_output, a_shape), _unbroadcast(-grad_output, b_shape)


class Mul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_output: np.ndarray):
        a, b = self.saved
        return _unbroadcast(grad_output * b, a.shape), _unbroadcast(grad_output * a, b.shape)


class Div(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad_output: np.ndarray):
        a, b = self.saved
        grad_a = grad_output / b
        grad_b = -grad_output * a / (b * b)
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)


class Neg(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad_output: np.ndarray):
        return (-grad_output,)


class Pow(Function):
    """Raise a tensor to a constant (non-tensor) power."""

    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.save_for_backward(a, exponent)
        return a ** exponent

    def backward(self, grad_output: np.ndarray):
        a, exponent = self.saved
        return (grad_output * exponent * (a ** (exponent - 1)),)


class Exp(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output: np.ndarray):
        (out,) = self.saved
        return (grad_output * out,)


class Log(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad_output: np.ndarray):
        (a,) = self.saved
        return (grad_output / a,)


class Sqrt(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output: np.ndarray):
        (out,) = self.saved
        return (grad_output / (2.0 * out),)


class Abs(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.abs(a)

    def backward(self, grad_output: np.ndarray):
        (a,) = self.saved
        return (grad_output * np.sign(a),)


class Clip(Function):
    def forward(self, a: np.ndarray, low: Optional[float], high: Optional[float]) -> np.ndarray:
        out = np.clip(a, low, high)
        mask = np.ones_like(a)
        if low is not None:
            mask = mask * (a >= low)
        if high is not None:
            mask = mask * (a <= high)
        self.save_for_backward(mask)
        return out

    def backward(self, grad_output: np.ndarray):
        (mask,) = self.saved
        return (grad_output * mask,)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------


class ReLU(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad_output: np.ndarray):
        (mask,) = self.saved
        return (grad_output * mask,)


class LeakyReLU(Function):
    def forward(self, a: np.ndarray, negative_slope: float) -> np.ndarray:
        self.save_for_backward(a > 0, negative_slope)
        return np.where(a > 0, a, a * negative_slope)

    def backward(self, grad_output: np.ndarray):
        mask, negative_slope = self.saved
        return (np.where(mask, grad_output, grad_output * negative_slope),)


class Sigmoid(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad_output: np.ndarray):
        (out,) = self.saved
        return (grad_output * out * (1.0 - out),)


class Tanh(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output: np.ndarray):
        (out,) = self.saved
        return (grad_output * (1.0 - out * out),)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _normalize_axis(axis, ndim: int) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.save_for_backward(a.shape, _normalize_axis(axis, a.ndim), keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad_output: np.ndarray):
        shape, axis, keepdims = self.saved
        grad = grad_output
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis=tuple(sorted(axis)))
        return (np.broadcast_to(grad, shape).astype(grad_output.dtype, copy=False).copy(),)


class Mean(Function):
    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        normalized = _normalize_axis(axis, a.ndim)
        if normalized is None:
            count = a.size
        else:
            count = int(np.prod([a.shape[i] for i in normalized]))
        self.save_for_backward(a.shape, normalized, keepdims, count)
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad_output: np.ndarray):
        shape, axis, keepdims, count = self.saved
        grad = grad_output / count
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis=tuple(sorted(axis)))
        return (np.broadcast_to(grad, shape).astype(grad_output.dtype, copy=False).copy(),)


class Max(Function):
    """Maximum reduction; gradient is routed to (all) positions attaining the max."""

    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        out = a.max(axis=axis, keepdims=True)
        self.save_for_backward(a, out, _normalize_axis(axis, a.ndim), keepdims)
        if keepdims or axis is None and keepdims:
            return out if keepdims else out.reshape(())
        return a.max(axis=axis, keepdims=keepdims)

    def backward(self, grad_output: np.ndarray):
        a, out_keepdims, axis, keepdims = self.saved
        mask = (a == out_keepdims).astype(a.dtype)
        mask /= mask.sum(axis=tuple(axis) if axis is not None else None, keepdims=True)
        grad = grad_output
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis=tuple(sorted(axis)))
        elif axis is None and not keepdims:
            grad = np.asarray(grad).reshape((1,) * a.ndim)
        return (mask * grad,)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


class MatMul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad_output: np.ndarray):
        a, b = self.saved
        if a.ndim == 1 and b.ndim == 1:
            return grad_output * b, grad_output * a
        if a.ndim == 1:
            grad_a = grad_output @ np.swapaxes(b, -1, -2)
            grad_b = np.outer(a, grad_output)
            return grad_a, grad_b
        if b.ndim == 1:
            grad_a = np.outer(grad_output, b) if a.ndim == 2 else np.expand_dims(grad_output, -1) * b
            grad_b = np.swapaxes(a, -1, -2) @ grad_output
            return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)
        grad_a = grad_output @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad_output
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)


class Linear(Function):
    """Fused affine transform ``x @ weight.T + bias`` for 2-D inputs."""

    def forward(self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
        self.save_for_backward(x, weight, bias is not None)
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out

    def backward(self, grad_output: np.ndarray):
        x, weight, has_bias = self.saved
        grad_x = None
        if not self.needs_input_grad or self.needs_input_grad[0]:
            grad_x = grad_output @ weight
        grad_w = grad_output.T @ x
        if has_bias:
            grad_b = grad_output.sum(axis=0)
            return grad_x, grad_w, grad_b
        return grad_x, grad_w


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


class Reshape(Function):
    def forward(self, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        self.save_for_backward(a.shape)
        return a.reshape(shape)

    def backward(self, grad_output: np.ndarray):
        (original_shape,) = self.saved
        return (grad_output.reshape(original_shape),)


class Transpose(Function):
    def forward(self, a: np.ndarray, axes: Optional[Tuple[int, ...]]) -> np.ndarray:
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        self.save_for_backward(axes)
        return a.transpose(axes)

    def backward(self, grad_output: np.ndarray):
        (axes,) = self.saved
        inverse = np.argsort(axes)
        return (grad_output.transpose(inverse),)


class GetItem(Function):
    def forward(self, a: np.ndarray, index: Any) -> np.ndarray:
        self.save_for_backward(a.shape, a.dtype, index)
        return a[index]

    def backward(self, grad_output: np.ndarray):
        shape, dtype, index = self.saved
        grad = np.zeros(shape, dtype=dtype)
        np.add.at(grad, index, grad_output)
        return (grad,)


class Concatenate(Function):
    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.save_for_backward(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_output: np.ndarray):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad_output, splits, axis=axis))


class Pad2d(Function):
    """Zero-padding of the last two (spatial) dimensions of an NCHW tensor."""

    def forward(self, a: np.ndarray, padding: Tuple[int, int]) -> np.ndarray:
        self.save_for_backward(padding, a.shape)
        pad_h, pad_w = padding
        return np.pad(a, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))

    def backward(self, grad_output: np.ndarray):
        (pad_h, pad_w), shape = self.saved
        h, w = shape[-2], shape[-1]
        return (grad_output[..., pad_h:pad_h + h, pad_w:pad_w + w],)


# ---------------------------------------------------------------------------
# Fused numerically-stable softmax family
# ---------------------------------------------------------------------------


class LogSoftmax(Function):
    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_sum
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad_output: np.ndarray):
        out, axis = self.saved
        softmax = np.exp(out)
        return (grad_output - softmax * grad_output.sum(axis=axis, keepdims=True),)


class Softmax(Function):
    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad_output: np.ndarray):
        out, axis = self.saved
        dot = (grad_output * out).sum(axis=axis, keepdims=True)
        return (out * (grad_output - dot),)


# ---------------------------------------------------------------------------
# Tensor
# ---------------------------------------------------------------------------


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __array_priority__ = 100.0  # ensure Tensor ops win over ndarray ops

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        keep_float64 = isinstance(data, (np.ndarray, np.generic)) and data.dtype == np.float64
        array = np.asarray(data, dtype=dtype if dtype is not None else None)
        if dtype is None and array.dtype not in (np.float32, np.float64):
            array = array.astype(DEFAULT_DTYPE)
        elif dtype is None and array.dtype == np.float64 and not keep_float64:
            # Python floats / lists default to float64 under numpy; the
            # library-wide default dtype is float32, so only explicit float64
            # ndarrays (e.g. for numeric-gradient checks) keep double width.
            array = array.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._ctx: Optional[Function] = None

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.asarray(array), requires_grad=requires_grad)

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._ctx is None

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying data as a numpy array (shared memory)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd -----------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only supported for scalar outputs"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo_order: List[Tensor] = []

        # Iterative DFS to avoid recursion limits on deep graphs.
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        visited_iter: set = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                topo_order.append(node)
                continue
            if id(node) in visited_iter or node._ctx is None:
                continue
            visited_iter.add(id(node))
            stack.append((node, True))
            for parent in node._ctx.parents:
                if parent._ctx is not None and id(parent) not in visited_iter:
                    stack.append((parent, False))

        grads: Dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo_order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            ctx = node._ctx
            parent_grads = ctx.backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            if len(parent_grads) != len(ctx.parents):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(parent_grads)} gradients "
                    f"for {len(ctx.parents)} inputs"
                )
            for parent, parent_grad in zip(ctx.parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = np.asarray(parent_grad, dtype=parent.data.dtype)
                if parent._ctx is None:
                    parent.grad = parent_grad if parent.grad is None else parent.grad + parent_grad
                else:
                    existing = grads.get(id(parent))
                    grads[id(parent)] = parent_grad if existing is None else existing + parent_grad
        # Gradient w.r.t. self when self is a leaf.
        if self._ctx is None and self.requires_grad:
            self.grad = grad if self.grad is None else self.grad + grad

    # -- arithmetic operators -----------------------------------------------

    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        return Add.apply(self, self._coerce(other))

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return Add.apply(self._coerce(other), self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return Sub.apply(self, self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Sub.apply(self._coerce(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return Mul.apply(self, self._coerce(other))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return Mul.apply(self._coerce(other), self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return Div.apply(self, self._coerce(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Div.apply(self._coerce(other), self)

    def __neg__(self) -> "Tensor":
        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return Pow.apply(self, float(exponent))

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return MatMul.apply(self, self._coerce(other))

    def __getitem__(self, index: Any) -> "Tensor":
        return GetItem.apply(self, index)

    # -- math methods --------------------------------------------------------

    def exp(self) -> "Tensor":
        return Exp.apply(self)

    def log(self) -> "Tensor":
        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        return Sqrt.apply(self)

    def abs(self) -> "Tensor":
        return Abs.apply(self)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        return Clip.apply(self, low, high)

    def relu(self) -> "Tensor":
        return ReLU.apply(self)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        return LeakyReLU.apply(self, negative_slope)

    def sigmoid(self) -> "Tensor":
        return Sigmoid.apply(self)

    def tanh(self) -> "Tensor":
        return Tanh.apply(self)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Sum.apply(self, axis, keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Mean.apply(self, axis, keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Max.apply(self, axis, keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1) if lead else self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 0:
            axes_arg = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_arg = tuple(axes[0])
        else:
            axes_arg = tuple(axes)
        return Transpose.apply(self, axes_arg)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return LogSoftmax.apply(self, axis)

    def softmax(self, axis: int = -1) -> "Tensor":
        return Softmax.apply(self, axis)

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self.__matmul__(other)

    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        """Return argmax indices as a plain numpy array (not differentiable)."""
        return self.data.argmax(axis=axis)

    # -- misc ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype.name}{grad_flag})"


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    if len(tensors) == 0:
        raise ValueError("concatenate() requires at least one tensor")
    return Concatenate.apply(*tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already a Tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
