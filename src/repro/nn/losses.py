"""Loss modules wrapping the functional losses."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class CrossEntropyLoss(Module):
    """Cross-entropy between raw logits and integer class targets."""

    def __init__(self, reduction: str = "mean", label_smoothing: float = 0.0) -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
        target_array = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return F.cross_entropy(
            logits,
            target_array,
            reduction=self.reduction,
            label_smoothing=self.label_smoothing,
        )

    def extra_repr(self) -> str:
        return f"reduction={self.reduction!r}, label_smoothing={self.label_smoothing}"


class NllLoss(Module):
    """Negative log-likelihood loss over log-probabilities."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
        target_array = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return F.nll_loss(log_probs, target_array, reduction=self.reduction)


class MseLoss(Module):
    """Mean squared error loss."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
        return F.mse_loss(prediction, target, reduction=self.reduction)
