"""Module (layer container) abstraction mirroring ``torch.nn.Module``.

Modules register parameters, buffers (non-trainable state such as batch-norm
running statistics) and sub-modules automatically through attribute
assignment, and expose ``state_dict`` / ``load_state_dict`` for check-pointing
— which the Reduce framework relies on to reset a model to its pre-trained
weights before retraining it for each faulty chip.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    Parameters are ordinary tensors flagged with ``requires_grad=True`` that
    modules register automatically so that optimizers and the fault-aware
    masking machinery can discover them by name.
    """

    def __init__(self, data: Union[np.ndarray, Tensor], requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ---------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            # Plain attribute; drop any stale registration under the same name.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: Optional[np.ndarray]) -> None:
        """Register non-trainable state included in ``state_dict``."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Optional[Parameter]) -> None:
        if value is None:
            self._parameters.pop(name, None)
            object.__setattr__(self, name, None)
        else:
            setattr(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    # -- traversal -----------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if param is not None:
                yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Optional[np.ndarray]]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for module_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    # -- training state -------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- state dict -----------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat name → array copy of all parameters and buffers."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            if buffer is not None:
                state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from a ``state_dict``.

        With ``strict=True`` missing or unexpected keys raise ``KeyError``.
        """
        own_params = dict(self.named_parameters())
        own_buffer_names = [name for name, _ in self.named_buffers()]
        expected = set(own_params) | set(own_buffer_names)
        provided = set(state)
        if strict:
            missing = expected - provided
            unexpected = provided - expected
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
                )
        for name, param in own_params.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name in self._buffers:
            full_name = f"{prefix}{name}"
            if full_name in state and state[full_name] is not None:
                current = getattr(self, name)
                value = np.asarray(state[full_name])
                if current is not None:
                    value = value.astype(np.asarray(current).dtype, copy=True).reshape(np.asarray(current).shape)
                self._buffers[name] = value
                object.__setattr__(self, name, value)
        for module_name, module in self._modules.items():
            module._load_buffers(state, prefix=f"{prefix}{module_name}.")

    # -- misc ------------------------------------------------------------------

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters in the module."""
        return sum(
            p.size for p in self.parameters() if (p.requires_grad or not trainable_only)
        )

    def forward(self, *args: Any, **kwargs: Any) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        children = list(self._modules.items())
        if not children:
            return lines[0] + ")"
        for name, module in children:
            child_repr = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines)


class Sequential(Module):
    """A module chaining sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Holds sub-modules in a list; useful for programmatically built models."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        if modules is not None:
            for module in modules:
                self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args: Any, **kwargs: Any) -> Tensor:  # pragma: no cover
        raise RuntimeError("ModuleList is a container and cannot be called directly")
