"""Optimizers and learning-rate schedulers.

The fault-aware retraining loop (:mod:`repro.mitigation.fat`) uses these
optimizers; SGD with momentum matches the fine-tuning setup typically used
for fault-aware training of convolutional networks.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.backends import recorded
from repro.nn.module import Parameter


class Optimizer:
    """Base class for optimizers operating on a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        self._step_count += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            self._update(index, param, param.grad)

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _param_state(self, index: int) -> Dict[str, np.ndarray]:
        return self.state.setdefault(index, {})

    def _scratch(self, state: Dict[str, np.ndarray], name: str, like: np.ndarray) -> np.ndarray:
        """Preallocated per-parameter work buffer (reused across steps).

        The hot update paths write every intermediate into these buffers, so a
        step allocates nothing after the first; the buffer is recreated only
        if the parameter's shape or dtype changed (e.g. ``load_state_dict``).
        """
        buf = state.get(name)
        if buf is None or buf.shape != like.shape or buf.dtype != like.dtype:
            buf = np.empty_like(like)
            state[name] = buf
        return buf

    @property
    def step_count(self) -> int:
        return self._step_count


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        recorded("sgd.update", (param.data, grad), self._update_kernel(index))

    def _update_kernel(self, index: int):
        state = self._param_state(index)

        def update(data: np.ndarray, grad: np.ndarray) -> np.ndarray:
            # All arithmetic below matches the textbook formulation value-for-
            # value (same operations in the same order); the only change is
            # that every intermediate lands in a preallocated buffer and the
            # parameter is updated in place, so a step performs zero array
            # allocations.
            if self.weight_decay:
                scratch = self._scratch(state, "scratch", data)
                np.multiply(data, self.weight_decay, out=scratch)
                np.add(grad, scratch, out=scratch)
                grad = scratch
            if self.momentum:
                buf = state.get("momentum")
                if buf is None or buf.shape != grad.shape:
                    buf = grad.copy()
                    state["momentum"] = buf
                else:
                    buf *= self.momentum
                    buf += grad
                if self.nesterov:
                    nesterov = self._scratch(state, "nesterov", data)
                    np.multiply(buf, self.momentum, out=nesterov)
                    np.add(grad, nesterov, out=nesterov)
                    grad = nesterov
                else:
                    grad = buf
            step_buf = self._scratch(state, "step", data)
            np.multiply(grad, self.lr, out=step_buf)
            np.subtract(data, step_buf, out=data)
            return data

        return update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        # Same math as the textbook update (identical operation order), with
        # every intermediate written into preallocated per-parameter buffers.
        state = self._param_state(index)
        if self.weight_decay:
            scratch = self._scratch(state, "scratch", param.data)
            np.multiply(param.data, self.weight_decay, out=scratch)
            np.add(grad, scratch, out=scratch)
            grad = scratch
        m = state.get("m")
        v = state.get("v")
        step = state.get("step", 0) + 1
        if m is None or m.shape != param.data.shape:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            state["m"], state["v"] = m, v
        state["step"] = step
        work = self._scratch(state, "work", param.data)
        # m = beta1 * m + (1 - beta1) * grad
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=work)
        m += work
        # v = beta2 * v + (1 - beta2) * grad^2
        v *= self.beta2
        np.multiply(grad, grad, out=work)
        work *= 1 - self.beta2
        v += work
        # param -= lr * m_hat / (sqrt(v_hat) + eps)
        denom = self._scratch(state, "denom", param.data)
        np.divide(v, 1 - self.beta2 ** step, out=denom)
        np.sqrt(denom, out=denom)
        denom += self.eps
        np.divide(m, 1 - self.beta1 ** step, out=work)
        work *= self.lr
        np.divide(work, denom, out=work)
        np.subtract(param.data, work, out=param.data)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        if self.weight_decay:
            state = self._param_state(index)
            decay = self._scratch(state, "decay", param.data)
            np.multiply(param.data, self.lr * self.weight_decay, out=decay)
            np.subtract(param.data, decay, out=param.data)
        weight_decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super()._update(index, param, grad)
        finally:
            self.weight_decay = weight_decay


class LRScheduler:
    """Base class for learning-rate schedulers."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class MultiStepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.last_epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for logging and tests).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in params))
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            np.multiply(p.grad, scale, out=p.grad)
    return total


def clip_grad_norm_per_chip(
    parameters: Iterable[Parameter], max_norm: float, num_chips: int
) -> np.ndarray:
    """Per-chip gradient clipping over *stacked* ``(B, ...)`` parameters.

    Each parameter (and its gradient) carries a leading chip axis of length
    ``num_chips``; chip ``b``'s norm is accumulated over every parameter's
    ``[b]`` slice and only that slice is rescaled — exactly what
    :func:`clip_grad_norm` computes for chip ``b``'s standalone parameter
    list, value for value (same float64 accumulation over the same
    per-parameter order, same in-place float32 rescale).

    Returns the per-chip norms before clipping, shape ``(num_chips,)``.
    """
    if num_chips < 1:
        raise ValueError(f"num_chips must be >= 1, got {num_chips}")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return np.zeros(num_chips, dtype=np.float64)
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    for p in params:
        if p.grad.shape[0] != num_chips:
            raise ValueError(
                f"stacked gradient has leading dimension {p.grad.shape[0]}, "
                f"expected {num_chips} chips"
            )
    norms = np.empty(num_chips, dtype=np.float64)
    for chip in range(num_chips):
        total = math.sqrt(
            sum(float((p.grad[chip].astype(np.float64) ** 2).sum()) for p in params)
        )
        norms[chip] = total
        if total > max_norm:
            scale = max_norm / (total + 1e-12)
            for p in params:
                np.multiply(p.grad[chip], scale, out=p.grad[chip])
    return norms
