"""Functional (stateless) neural-network operations.

The convolution and pooling operators are implemented as fused autograd
:class:`~repro.nn.tensor.Function` subclasses using an im2col formulation.
This mirrors how a systolic-array accelerator executes a convolution: the
layer is lowered to a GEMM whose weight matrix has shape
``(out_channels, in_channels * kh * kw)``, which is exactly the matrix the
fault-aware pruning masks in :mod:`repro.accelerator.mapping` are generated
for.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.tensor import Function, Tensor, as_tensor, is_grad_enabled

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _pad_nchw(x: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Zero-pad the spatial dims (faster than the generic ``np.pad``)."""
    n, c, h, w = x.shape
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.dtype)
    padded[:, :, ph:ph + h, pw:pw + w] = x
    return padded


# ---------------------------------------------------------------------------
# im2col helpers
# ---------------------------------------------------------------------------


def im2col(
    x: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, int, int]:
    """Lower an NCHW activation tensor into a GEMM operand.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x.shape
    if ph or pw:
        x = _pad_nchw(x, ph, pw)
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    if padded_h < kh or padded_w < kw:
        raise ValueError(
            f"kernel {kernel_size} larger than padded input ({padded_h}, {padded_w})"
        )
    out_h = (padded_h - kh) // sh + 1
    out_w = (padded_w - kw) // sw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    if sh != 1 or sw != 1:
        windows = windows[:, :, ::sh, ::sw, :, :]
    # (n, c, out_h, out_w, kh, kw) -> (n, out_h, out_w, c, kh, kw); the reshape
    # of the transposed view is the single copy of this lowering.  For
    # degenerate spatial outputs (e.g. a kernel covering the whole padded
    # input, out 1x1) the reshape would be a zero-copy *view* with transposed
    # strides — BLAS then reduces in a different order than for the C layout —
    # so the operand is materialised unconditionally: the GEMM layout (and the
    # bit-exact equivalence with the stacked multi-chip path, which gathers
    # straight into C-contiguous stacks) is shape-independent.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def im2col_t(
    x: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, int, int]:
    """Transposed im2col: returns ``(colsT, out_h, out_w)`` with ``colsT`` of
    shape ``(C * kh * kw, N * out_h * out_w)``.

    ``colsT`` is ``im2col(...)[0].T`` exactly, but materialised in the
    K-major layout, whose gather copies run over the (partially contiguous)
    spatial window axes instead of the tiny kernel axes — measurably faster
    than the row-major ``im2col`` copy for stride-1 convolutions.  The
    ``(P, K)`` operand of the GEMM is then the zero-copy view ``colsT.T``.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x.shape
    if ph or pw:
        x = _pad_nchw(x, ph, pw)
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    if padded_h < kh or padded_w < kw:
        raise ValueError(
            f"kernel {kernel_size} larger than padded input ({padded_h}, {padded_w})"
        )
    out_h = (padded_h - kh) // sh + 1
    out_w = (padded_w - kw) // sw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    if sh != 1 or sw != 1:
        windows = windows[:, :, ::sh, ::sw, :, :]
    # Materialised unconditionally for the same reason as :func:`im2col`: a
    # degenerate 1x1 spatial output would otherwise yield a zero-copy view
    # with F-order strides, changing the BLAS reduction order relative to the
    # C-contiguous stacked multi-chip lowering.
    colsT = windows.transpose(1, 4, 5, 0, 2, 3).reshape(c * kh * kw, n * out_h * out_w)
    return np.ascontiguousarray(colsT), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col` (used by the conv backward)."""
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x_shape
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    dx = np.zeros((n, c, padded_h, padded_w), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw] += cols[:, :, :, :, i, j]
    if ph or pw:
        dx = dx[:, :, ph:ph + h, pw:pw + w]
    return dx


def col2im_t(
    colsT: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col_t` (K-major column gradients).

    Accepts the ``(C * kh * kw, N * out_h * out_w)`` layout produced directly
    by the backward GEMM ``weight_matrix.T @ grad_t``, so no reshape-copy of
    the column gradient is needed before the scatter; each phase slice adds
    the same elements in the same order as :func:`col2im`.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x_shape
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    dx = np.zeros((n, c, padded_h, padded_w), dtype=colsT.dtype)
    colsK = colsT.reshape(c, kh, kw, n, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            view = dx[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
            view += colsK[:, i, j].transpose(1, 0, 2, 3)
    if ph or pw:
        dx = dx[:, :, ph:ph + h, pw:pw + w]
    return dx


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


class Conv2dFunction(Function):
    """2-D convolution via im2col, with full backward support."""

    capture_name = "conv2d"

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        out_channels, in_channels, kh, kw = weight.shape
        if x.shape[1] != in_channels:
            raise ValueError(
                f"input has {x.shape[1]} channels but weight expects {in_channels}"
            )
        colsT, out_h, out_w = im2col_t(x, (kh, kw), stride, padding)
        weight_matrix = weight.reshape(out_channels, -1)
        # (O, K) @ (K, P): same dot products as ``cols @ weight_matrix.T``
        # with the faster K-major lowering; the transpose back to NCHW is the
        # one output copy either way.
        out_t = weight_matrix @ colsT
        if bias is not None:
            out_t += bias[:, None]
        n = x.shape[0]
        out = out_t.reshape(out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        if is_grad_enabled():
            # ``colsT`` is the dominant memory cost of a conv layer; only
            # keep it alive when a backward pass can actually consume it.
            self.save_for_backward(
                colsT, weight, x.shape, (kh, kw), stride, padding, out_h, out_w, bias is not None
            )
        return np.ascontiguousarray(out)

    def backward(self, grad_output: np.ndarray):
        colsT, weight, x_shape, kernel, stride, padding, out_h, out_w, has_bias = self.saved
        out_channels = weight.shape[0]
        n = x_shape[0]
        # (n, O, oh, ow) -> (O, n * oh * ow): this channel-major copy moves
        # contiguous spatial blocks (several times faster than gathering the
        # (P, O) layout) and feeds every GEMM below directly.
        grad_t = grad_output.transpose(1, 0, 2, 3).reshape(out_channels, n * out_h * out_w)
        grad_weight = (grad_t @ colsT.T).reshape(weight.shape)
        grad_x = None
        if not self.needs_input_grad or self.needs_input_grad[0]:
            # The col2im scatter is the most expensive part of the conv
            # backward; skip it when the input needs no gradient (the first
            # layer of every model — its input is the data batch).  The
            # column gradient is produced straight in the K-major layout the
            # scatter consumes, avoiding a reshape copy.
            weight_matrix = weight.reshape(out_channels, -1)
            grad_colsT = weight_matrix.T @ grad_t
            grad_x = col2im_t(grad_colsT, x_shape, kernel, stride, padding, out_h, out_w)
        if has_bias:
            grad_bias = grad_t.sum(axis=1)
            return grad_x, grad_weight, grad_bias
        return grad_x, grad_weight


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Differentiable 2-D convolution over an NCHW tensor."""
    stride = _pair(stride)
    padding = _pair(padding)
    if bias is None:
        return Conv2dFunction.apply(x, weight, None, stride, padding)
    return Conv2dFunction.apply(x, weight, bias, stride, padding)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


class MaxPool2dFunction(Function):
    capture_name = "max_pool2d"

    def forward(
        self,
        x: np.ndarray,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel_size
        sh, sw = stride
        n, c, h, w = x.shape
        out_h = (h - kh) // sh + 1
        out_w = (w - kw) // sw + 1
        if not is_grad_enabled():
            # Inference fast path: reduce the kh*kw window positions with
            # elementwise maxima over strided phase views — no window
            # materialisation, no argmax bookkeeping, zero temporary copies
            # beyond the running maximum itself.
            out = None
            for i in range(kh):
                for j in range(kw):
                    phase = x[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
                    if out is None:
                        out = phase.copy()
                    else:
                        np.maximum(out, phase, out=out)
            return out
        # Training path: the same phase-view sweep also tracks the winning
        # within-window flat index.  Only a strictly greater value replaces
        # the running maximum, so ties resolve to the first (row-major)
        # window position — identical to ``argmax`` over the window axis.
        out = None
        argmax = None
        for i in range(kh):
            for j in range(kw):
                phase = x[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
                if out is None:
                    out = phase.copy()
                    argmax = np.zeros(out.shape, dtype=np.int16)
                else:
                    better = phase > out
                    np.maximum(out, phase, out=out)
                    argmax[better] = i * kw + j
        self.save_for_backward(x.shape, kernel_size, stride, argmax, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray):
        x_shape, (kh, kw), (sh, sw), argmax, out_h, out_w = self.saved
        dx = np.zeros(x_shape, dtype=grad_output.dtype)
        # Route each window's gradient to its argmax position, one window
        # phase at a time: within a phase every target element is distinct,
        # so a masked strided accumulate replaces the (much slower) np.add.at
        # scatter.  Overlapping windows accumulate across phase iterations.
        for i in range(kh):
            for j in range(kw):
                selected = argmax == (i * kw + j)
                view = dx[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
                view += grad_output * selected
        return (dx,)


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling over the spatial dimensions of an NCHW tensor."""
    kernel = _pair(kernel_size)
    stride_pair = _pair(stride) if stride is not None else kernel
    return MaxPool2dFunction.apply(x, kernel, stride_pair)


class AvgPool2dFunction(Function):
    capture_name = "avg_pool2d"

    def forward(
        self,
        x: np.ndarray,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel_size
        sh, sw = stride
        windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
        if sh != 1 or sw != 1:
            windows = windows[:, :, ::sh, ::sw, :, :]
        out = windows.mean(axis=(-2, -1))
        self.save_for_backward(x.shape, kernel_size, stride, out.shape)
        return np.ascontiguousarray(out)

    def backward(self, grad_output: np.ndarray):
        x_shape, (kh, kw), (sh, sw), out_shape = self.saved
        n, c, out_h, out_w = out_shape
        dx = np.zeros(x_shape, dtype=grad_output.dtype)
        scaled = grad_output / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw] += scaled
        return (dx,)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling over the spatial dimensions of an NCHW tensor."""
    kernel = _pair(kernel_size)
    stride_pair = _pair(stride) if stride is not None else kernel
    return AvgPool2dFunction.apply(x, kernel, stride_pair)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning an ``(N, C)`` tensor."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# Normalisation, dropout and activations
# ---------------------------------------------------------------------------


def _bn_axes(ndim: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``(reduce_axes, param_shape)`` for a 2-D or 4-D batch-norm input."""
    if ndim == 4:
        return (0, 2, 3), (1, -1, 1, 1)
    if ndim == 2:
        return (0,), (1, -1)
    raise ValueError(f"batch_norm expects a 2-D or 4-D input, got {ndim}-D")


def _bn_train_forward(
    x: np.ndarray,
    gamma_b: np.ndarray,
    beta_b: np.ndarray,
    reduce_axes: Tuple[int, ...],
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Training-mode batch-norm forward arithmetic on raw arrays.

    Shared between the fused serial :class:`BatchNormFunction` and the
    stacked multi-chip variant in :mod:`repro.accelerator.batched`, which
    calls it on each chip's contiguous fold — bit-identical by construction.
    Returns ``(out, normalised, inv_std, mean, var)`` (mean/var keep dims).
    """
    mean = x.mean(axis=reduce_axes, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=reduce_axes, keepdims=True)
    inv_std = (var + eps) ** -0.5
    normalised = centered * inv_std
    out = normalised * gamma_b + beta_b
    return out, normalised, inv_std, mean, var


def _bn_train_backward(
    grad_output: np.ndarray,
    gamma_b: np.ndarray,
    normalised: np.ndarray,
    inv_std: np.ndarray,
    reduce_axes: Tuple[int, ...],
    need_input_grad: bool = True,
) -> Tuple[Optional[np.ndarray], np.ndarray, np.ndarray]:
    """Analytic batch-norm backward (gradients through the batch statistics).

    With ``xhat`` the normalised activations and ``g`` the upstream gradient,

        dx = inv_std * (g*gamma - mean(g*gamma) - xhat * mean(g*gamma * xhat))

    which is the standard fused form of the ~15 generic autograd nodes the
    composed training-mode batch norm used to record per layer.  Shared with
    the stacked multi-chip op (called per chip fold).  Returns
    ``(grad_x, grad_gamma, grad_beta)`` with the parameter gradients reduced
    to 1-D ``(C,)`` vectors; ``grad_x`` is None when ``need_input_grad`` is
    False (a first-layer batch norm whose input is the data batch).
    """
    grad_x = None
    if need_input_grad:
        dxhat = grad_output * gamma_b
        grad_x = inv_std * (
            dxhat
            - dxhat.mean(axis=reduce_axes, keepdims=True)
            - normalised * (dxhat * normalised).mean(axis=reduce_axes, keepdims=True)
        )
    grad_gamma = (grad_output * normalised).sum(axis=reduce_axes)
    grad_beta = grad_output.sum(axis=reduce_axes)
    return grad_x, grad_gamma, grad_beta


def _bn_eval_forward(x, gamma_b, beta_b, mean_const, var_const, eps):
    """Eval-mode normalisation with running statistics as constants.

    Generic over Tensor/ndarray operands; shared between the serial
    :func:`batch_norm` eval path and the stacked multi-chip eval path so the
    per-chip arithmetic stays expression-for-expression identical (the
    bit-exact serial-equivalence guarantee covers eval checkpoints too).
    """
    scale = gamma_b * (1.0 / np.sqrt(var_const + eps))
    return (x - mean_const) * scale + beta_b


def bn_running_update(
    running_mean: np.ndarray,
    running_var: np.ndarray,
    batch_mean: np.ndarray,
    batch_var: np.ndarray,
    reduce_count: int,
    momentum: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """EMA update of batch-norm running statistics (Bessel-corrected variance).

    ``batch_var`` is the biased batch variance as computed by the forward;
    the stored running variance uses the unbiased estimate, mirroring
    PyTorch.  Shared by the serial layer and the stacked multi-chip trainer
    (applied per chip) so updated statistics agree bit for bit.
    """
    bessel = reduce_count / max(reduce_count - 1, 1)
    new_mean = (1 - momentum) * running_mean + momentum * batch_mean
    new_var = (1 - momentum) * running_var + momentum * (batch_var * bessel)
    return new_mean, new_var


class BatchNormFunction(Function):
    """Fused training-mode batch normalisation with an analytic backward.

    The composed formulation recorded ~15 generic autograd nodes per layer
    (profiled at ~20% of a ``vgg11_mini`` training step); this single node
    computes the identical forward arithmetic (:func:`_bn_train_forward`, so
    outputs are bit-identical to the composed path) and the standard closed-
    form backward through the batch statistics.

    ``stats_out`` is an optional list the forward appends the 1-D batch mean
    and (biased) batch variance to, so callers can update running statistics
    without a second pass over the input.
    """

    capture_name = "batch_norm"

    def forward(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        reduce_axes: Tuple[int, ...],
        param_shape: Tuple[int, ...],
        eps: float,
        stats_out: Optional[list] = None,
    ) -> np.ndarray:
        gamma_b = gamma.reshape(param_shape)
        beta_b = beta.reshape(param_shape)
        out, normalised, inv_std, mean, var = _bn_train_forward(
            x, gamma_b, beta_b, reduce_axes, eps
        )
        if stats_out is not None:
            stats_out.append(mean.reshape(-1))
            stats_out.append(var.reshape(-1))
        if is_grad_enabled():
            self.save_for_backward(gamma_b, normalised, inv_std, reduce_axes, gamma.shape)
        return out

    def backward(self, grad_output: np.ndarray):
        gamma_b, normalised, inv_std, reduce_axes, param_vec_shape = self.saved
        grad_x, grad_gamma, grad_beta = _bn_train_backward(
            grad_output, gamma_b, normalised, inv_std, reduce_axes,
            need_input_grad=not self.needs_input_grad or self.needs_input_grad[0],
        )
        return grad_x, grad_gamma.reshape(param_vec_shape), grad_beta.reshape(param_vec_shape)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Optional[np.ndarray],
    running_var: Optional[np.ndarray],
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tuple[Tensor, Optional[np.ndarray], Optional[np.ndarray]]:
    """Batch normalisation over an ``(N, C)`` or ``(N, C, H, W)`` tensor.

    Returns ``(output, new_running_mean, new_running_var)``.  In training
    mode the batch statistics participate in the autograd graph through the
    fused :class:`BatchNormFunction` (one node with an analytic backward);
    in eval mode the running statistics are used as constants.
    """
    reduce_axes, param_shape = _bn_axes(x.ndim)

    if training:
        stats: list = []
        out = BatchNormFunction.apply(
            x, gamma, beta, reduce_axes, param_shape, eps, stats
        )
        new_mean = running_mean
        new_var = running_var
        if running_mean is not None and running_var is not None:
            batch_mean, batch_var = stats
            reduce_count = int(np.prod([x.shape[a] for a in reduce_axes]))
            new_mean, new_var = bn_running_update(
                running_mean, running_var, batch_mean, batch_var, reduce_count, momentum
            )
        return out, new_mean, new_var

    if running_mean is None or running_var is None:
        raise ValueError("eval-mode batch_norm requires running statistics")
    out = _bn_eval_forward(
        x,
        gamma.reshape(*param_shape),
        beta.reshape(*param_shape),
        running_mean.reshape(param_shape),
        running_var.reshape(param_shape),
        eps,
    )
    return out, running_mean, running_var


# Fallback generator for ``dropout`` calls that pass no ``rng``.  A fresh
# unseeded ``default_rng()`` per call would make otherwise fully-seeded
# training runs nondeterministic; stateful callers (``nn.Dropout``) thread a
# per-layer generator derived from the trainer seed instead (see
# ``repro.training.seed_stochastic_layers``).
_FALLBACK_DROPOUT_RNG = np.random.default_rng(0)


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    generator = rng if rng is not None else _FALLBACK_DROPOUT_RNG
    mask = (generator.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * mask


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` for 2-D ``x``."""
    from repro.nn.tensor import Linear as LinearFunction

    if bias is None:
        return LinearFunction.apply(x, weight, None)
    return LinearFunction.apply(x, weight, bias)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    return x.flatten(start_dim=start_dim)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------


class NllLossFunction(Function):
    """Negative log-likelihood of integer targets given log-probabilities."""

    capture_name = "nll_loss"

    def forward(self, log_probs: np.ndarray, targets: np.ndarray, reduction: str) -> np.ndarray:
        if log_probs.ndim != 2:
            raise ValueError(f"nll_loss expects (N, C) log-probabilities, got {log_probs.shape}")
        targets = np.asarray(targets).astype(np.int64).reshape(-1)
        if targets.shape[0] != log_probs.shape[0]:
            raise ValueError(
                f"targets length {targets.shape[0]} does not match batch size {log_probs.shape[0]}"
            )
        picked = log_probs[np.arange(log_probs.shape[0]), targets]
        self.save_for_backward(log_probs.shape, targets, reduction, log_probs.dtype)
        if reduction == "mean":
            return np.asarray(-picked.mean(), dtype=log_probs.dtype)
        if reduction == "sum":
            return np.asarray(-picked.sum(), dtype=log_probs.dtype)
        if reduction == "none":
            return -picked
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(self, grad_output: np.ndarray):
        shape, targets, reduction, dtype = self.saved
        n = shape[0]
        grad = np.zeros(shape, dtype=dtype)
        rows = np.arange(n)
        if reduction == "mean":
            grad[rows, targets] = -1.0 / n
            grad = grad * grad_output
        elif reduction == "sum":
            grad[rows, targets] = -1.0
            grad = grad * grad_output
        else:
            grad[rows, targets] = -1.0
            grad = grad * grad_output.reshape(n, 1)
        return (grad,)


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood loss for integer class targets."""
    return NllLossFunction.apply(log_probs, np.asarray(targets), reduction)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    reduction: str = "mean",
    label_smoothing: float = 0.0,
) -> Tensor:
    """Cross-entropy between raw logits and integer class targets.

    ``label_smoothing`` mixes the one-hot target with a uniform distribution,
    matching the semantics of ``torch.nn.functional.cross_entropy``.
    """
    log_probs = logits.log_softmax(axis=-1)
    if label_smoothing <= 0.0:
        return nll_loss(log_probs, targets, reduction=reduction)
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
    num_classes = logits.shape[-1]
    hard = nll_loss(log_probs, targets, reduction=reduction)
    if reduction == "mean":
        smooth = -log_probs.sum(axis=-1).mean() * (1.0 / num_classes)
    elif reduction == "sum":
        smooth = -log_probs.sum() * (1.0 / num_classes)
    else:
        smooth = -log_probs.sum(axis=-1) * (1.0 / num_classes)
    return hard * (1.0 - label_smoothing) + smooth * label_smoothing


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray], reduction: str = "mean") -> Tensor:
    """Mean squared error loss."""
    target_t = as_tensor(target)
    diff = prediction - target_t
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("targets out of range for one_hot encoding")
    encoded = np.zeros((targets.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(targets.shape[0]), targets] = 1.0
    return encoded


def accuracy(logits: Union[Tensor, np.ndarray], targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.shape[0] == 0:
        return 0.0
    return float((predictions == targets).mean())
