"""Neural-network layers built on the autograd engine.

The convolution and linear layers are the ones mapped onto the systolic
array by :mod:`repro.accelerator.mapping`; they therefore expose their weight
matrices in the exact layout used for fault-aware pruning masks
(``(out_features, in_features)`` for :class:`Linear` and
``(out_channels, in_channels, kh, kw)`` for :class:`Conv2d`, lowered to
``(out_channels, in_channels * kh * kw)`` for the GEMM view).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng

IntPair = Union[int, Tuple[int, int]]


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        generator = new_rng(rng)
        weight = init.kaiming_uniform((out_features, in_features), generator)
        self.weight = Parameter(weight)
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init.bias_uniform_for((out_features, in_features), (out_features,), generator)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            x = x.flatten(start_dim=1)
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}, bias={self.bias is not None}"


class Conv2d(Module):
    """2-D convolution layer (NCHW layout)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("in_channels and out_channels must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        generator = new_rng(rng)
        kh, kw = self.kernel_size
        weight_shape = (out_channels, in_channels, kh, kw)
        self.weight = Parameter(init.kaiming_normal(weight_shape, generator))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial_size(self, input_size: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial output size for a given ``(H, W)`` input size."""
        h, w = input_size
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        return ((h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, bias={self.bias is not None}"
        )


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors.

    Training mode runs through the fused
    :class:`~repro.nn.functional.BatchNormFunction` (one autograd node with
    an analytic backward); the batch statistics it computes are reused for
    the running-statistics update, so each step touches the activations
    exactly once beyond the normalisation itself.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        out, new_mean, new_var = F.batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )
        if self.training and new_mean is not None:
            self.running_mean = np.asarray(new_mean, dtype=np.float32)
            self.running_var = np.asarray(new_var, dtype=np.float32)
        return out

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(BatchNorm2d):
    """Batch normalisation over the feature dimension of ``(N, C)`` tensors."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects a 2-D input, got {x.ndim}-D")
        return super().forward(x)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing an ``(N, C)`` tensor."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)

    def extra_repr(self) -> str:
        return f"start_dim={self.start_dim}"


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The layer owns its generator so masks are reproducible; trainers reseed
    it from their derived seed (via :meth:`reseed`) so that two training runs
    with the same :class:`~repro.training.TrainingConfig` draw identical masks
    even when the layer was constructed without an explicit ``rng``.
    """

    def __init__(self, p: float = 0.5, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)

    def reseed(self, seed: SeedLike) -> None:
        """Replace the layer's generator (used to thread the trainer seed)."""
        self._rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Identity(Module):
    """Pass-through layer, convenient for optional blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)


class LogSoftmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.log_softmax(axis=self.axis)
