"""A self-contained numpy-based neural-network framework.

This package replaces PyTorch (which the original paper used) as the training
substrate: tensors with reverse-mode autograd, layers, losses, optimizers and
checkpointing.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.nn.tensor import Tensor, no_grad, enable_grad, is_grad_enabled, concatenate, stack, as_tensor
from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import (
    Linear,
    Conv2d,
    BatchNorm1d,
    BatchNorm2d,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
    Softmax,
    LogSoftmax,
)
from repro.nn.losses import CrossEntropyLoss, NllLoss, MseLoss
from repro.nn.optim import (
    Optimizer,
    SGD,
    Adam,
    AdamW,
    LRScheduler,
    StepLR,
    MultiStepLR,
    CosineAnnealingLR,
    clip_grad_norm,
    clip_grad_norm_per_chip,
)
from repro.nn.serialization import (
    save_checkpoint,
    load_checkpoint,
    load_into,
    clone_state_dict,
    state_dicts_equal,
)
from repro.nn import functional
from repro.nn import init

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "as_tensor",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Softmax",
    "LogSoftmax",
    "CrossEntropyLoss",
    "NllLoss",
    "MseLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "clip_grad_norm_per_chip",
    "save_checkpoint",
    "load_checkpoint",
    "load_into",
    "clone_state_dict",
    "state_dicts_equal",
    "functional",
    "init",
]
