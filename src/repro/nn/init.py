"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
model construction is fully reproducible — resilience analysis and per-chip
retraining depend on starting from exactly the same pre-trained weights.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.nn.tensor import DEFAULT_DTYPE


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fan for a scalar parameter")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    # Convolution weights (out_channels, in_channels, kh, kw).
    receptive_field = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases and batch-norm shifts)."""
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (used for batch-norm scales)."""
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def uniform(shape: Tuple[int, ...], low: float, high: float, rng: np.random.Generator) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return rng.uniform(low, high, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: Tuple[int, ...], mean: float, std: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian initialisation."""
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    return (rng.standard_normal(shape) * std + mean).astype(DEFAULT_DTYPE)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, rng)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal(shape, 0.0, std, rng)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    a: float = math.sqrt(5.0),
    mode: str = "fan_in",
) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch's default for conv/linear)."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    fan = fan_in if mode == "fan_in" else fan_out
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan)
    return uniform(shape, -bound, bound, rng)


def kaiming_normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    mode: str = "fan_out",
    nonlinearity: str = "relu",
) -> np.ndarray:
    """He/Kaiming normal initialisation (used for VGG conv layers)."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    fan = fan_in if mode == "fan_in" else fan_out
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan)
    return normal(shape, 0.0, std, rng)


def bias_uniform_for(weight_shape: Tuple[int, ...], bias_shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias initialisation: uniform in ``±1/sqrt(fan_in)``."""
    fan_in, _ = _fan_in_fan_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return uniform(bias_shape, -bound, bound, rng)
