"""Supervised training loop with optional weight masking and fractional epochs.

This module is the training substrate shared by

* pre-training the clean reference model (the "pre-trained DNN" input of the
  Reduce framework),
* fault-aware retraining (FAT), where a per-layer boolean mask keeps the
  weights mapped onto faulty PEs clamped at zero, and
* resilience analysis, which needs accuracy measured at several *fractional*
  epoch checkpoints (the paper evaluates retraining amounts as small as
  0.05 epochs) within a single progressive training run.

Epochs are accounted in fractions of a pass over the training set: an epoch
amount ``e`` corresponds to ``round(e * batches_per_epoch)`` optimizer steps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.nn import functional as F
from repro.observability import trace
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, derive_seed

logger = get_logger("training")

MaskDict = Dict[str, np.ndarray]


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of the (re)training loop."""

    optimizer: str = "sgd"
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    batch_size: int = 32
    grad_clip: Optional[float] = 5.0
    label_smoothing: float = 0.0
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.optimizer not in ("sgd", "adam", "adamw"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    def build_optimizer(self, parameters) -> nn.Optimizer:
        if self.optimizer == "sgd":
            return nn.SGD(
                parameters,
                lr=self.learning_rate,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
            )
        if self.optimizer == "adam":
            return nn.Adam(parameters, lr=self.learning_rate, weight_decay=self.weight_decay)
        return nn.AdamW(parameters, lr=self.learning_rate, weight_decay=self.weight_decay)


@dataclasses.dataclass(frozen=True)
class CheckpointRecord:
    """Metrics captured at one evaluation checkpoint during (re)training."""

    epochs: float
    steps: int
    train_loss: float
    eval_accuracy: float


@dataclasses.dataclass
class TrainingHistory:
    """Progressive accuracy-vs-retraining-amount curve of one training run."""

    records: List[CheckpointRecord] = dataclasses.field(default_factory=list)

    def add(self, record: CheckpointRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> List[float]:
        return [record.epochs for record in self.records]

    @property
    def accuracies(self) -> List[float]:
        return [record.eval_accuracy for record in self.records]

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].eval_accuracy

    @property
    def total_epochs(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].epochs

    def accuracy_at(self, epochs: float, tolerance: float = 1e-9, strict: bool = False) -> float:
        """Accuracy recorded at the checkpoint closest to ``epochs``.

        The closest checkpoint is accepted when it lies within
        ``max(tolerance, 25% of the requested amount)``; a match farther away
        than that is almost certainly a caller error (asking a history for an
        epoch amount it never evaluated), so it raises with ``strict=True``
        and is logged at WARNING level otherwise instead of being silently
        returned as if it were the requested checkpoint.
        """
        if not self.records:
            raise ValueError("history is empty")
        best = min(self.records, key=lambda record: abs(record.epochs - epochs))
        window = max(tolerance, 0.25 * max(epochs, 1e-9))
        if abs(best.epochs - epochs) > window:
            message = (
                f"accuracy_at({epochs}): nearest recorded checkpoint is {best.epochs} "
                f"epochs (off by {abs(best.epochs - epochs):.6g}, tolerance {window:.6g}); "
                f"recorded checkpoints: {self.epochs}"
            )
            if strict:
                raise ValueError(message)
            logger.warning(message)
        return best.eval_accuracy

    def epochs_to_reach(self, target_accuracy: float) -> Optional[float]:
        """Smallest checkpoint epoch amount whose accuracy meets the target."""
        for record in self.records:
            if record.eval_accuracy >= target_accuracy:
                return record.epochs
        return None

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "epochs": self.epochs,
            "accuracy": self.accuracies,
            "train_loss": [record.train_loss for record in self.records],
        }


def _as_loader(
    data: Union[Dataset, DataLoader],
    batch_size: int,
    shuffle: bool,
    seed: SeedLike,
) -> DataLoader:
    if isinstance(data, DataLoader):
        return data
    return DataLoader(data, batch_size=batch_size, shuffle=shuffle, seed=seed)


def require_nonempty_train_loader(loader: DataLoader) -> DataLoader:
    """Reject loaders that yield no batches (they would hang training loops).

    An empty loader (empty dataset, or ``drop_last`` with fewer samples than
    a batch) makes a ``while remaining > 0`` step loop spin forever around a
    zero-batch iterator; both trainers fail loudly at construction instead.
    """
    if len(loader) == 0:
        raise ValueError(
            "train loader yields no batches "
            f"({loader.num_samples} samples, batch_size={loader.batch_size}, "
            f"drop_last={loader.drop_last}); "
            "training requires at least one batch per epoch"
        )
    return loader


def _as_eval_loader(data: Union[Dataset, DataLoader], batch_size: int) -> DataLoader:
    """A deterministic, unshuffled view of ``data`` for evaluation.

    A caller-supplied *shuffled* loader is never iterated directly: every
    iteration would draw a permutation from its generator, so evaluating
    mid-training with the training loader (or any loader sharing its RNG)
    would silently change the order of all subsequent training batches.  The
    evaluation instead walks the same dataset unshuffled, which consumes no
    random state and is order-independent for the metrics computed here.
    """
    if isinstance(data, DataLoader):
        if not data.shuffle:
            return data
        return DataLoader(
            data.dataset,
            batch_size=data.batch_size,
            shuffle=False,
            drop_last=data.drop_last,
        )
    return DataLoader(data, batch_size=batch_size, shuffle=False, seed=0)


def evaluate_accuracy(
    model: nn.Module,
    data: Union[Dataset, DataLoader],
    batch_size: int = 128,
) -> float:
    """Top-1 accuracy of ``model`` on ``data`` (model mode is restored)."""
    loader = _as_eval_loader(data, batch_size=batch_size)
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with nn.no_grad():
        for inputs, targets in loader:
            logits = model(inputs)
            predictions = logits.data.argmax(axis=-1)
            correct += int((predictions == np.asarray(targets)).sum())
            total += len(targets)
    if was_training:
        model.train()
    return correct / total if total else 0.0


def evaluate_loss(
    model: nn.Module,
    data: Union[Dataset, DataLoader],
    batch_size: int = 128,
) -> float:
    """Mean cross-entropy loss of ``model`` on ``data``."""
    loader = _as_eval_loader(data, batch_size=batch_size)
    was_training = model.training
    model.eval()
    total_loss = 0.0
    total = 0
    with nn.no_grad():
        for inputs, targets in loader:
            loss = F.cross_entropy(model(inputs), targets, reduction="sum")
            total_loss += loss.item()
            total += len(targets)
    if was_training:
        model.train()
    return total_loss / total if total else 0.0


@dataclasses.dataclass
class MaskedParameter:
    """One weight tensor with its fault mask, resolved to the live parameter.

    ``keep`` is the float32 multiplicative complement of the boolean mask
    (1.0 = trainable, 0.0 = clamped); multiplying by it in place enforces the
    mask without boolean fancy-indexing or temporary allocations.
    """

    name: str
    weight: nn.Tensor
    mask: np.ndarray
    keep: np.ndarray

    def enforce_weight(self) -> None:
        np.multiply(self.weight.data, self.keep, out=self.weight.data)

    def enforce_grad(self) -> None:
        grad = self.weight.grad
        if grad is not None:
            np.multiply(grad, self.keep, out=grad)


def _resolve_masked_weight(model_modules: Dict[str, nn.Module], name: str, mask: np.ndarray):
    """Look up and validate the weight tensor a mask applies to."""
    if name not in model_modules:
        raise KeyError(f"mask refers to unknown layer {name!r}")
    weight = getattr(model_modules[name], "weight", None)
    if weight is None:
        raise ValueError(f"layer {name!r} has no weight to mask")
    if mask.shape != weight.data.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match weight shape {weight.data.shape} for layer {name!r}"
        )
    return weight


def resolve_masked_parameters(
    model: nn.Module, masks: Optional[MaskDict]
) -> List[MaskedParameter]:
    """Resolve mask names to live weight tensors once (hot loops reuse this).

    Validates exactly like the per-call path: unknown layer names and shape
    mismatches raise immediately rather than mid-training.
    """
    if not masks:
        return []
    modules = dict(model.named_modules())
    resolved: List[MaskedParameter] = []
    for name, mask in masks.items():
        weight = _resolve_masked_weight(modules, name, mask)
        keep = np.where(mask, np.float32(0.0), np.float32(1.0))
        resolved.append(MaskedParameter(name=name, weight=weight, mask=mask, keep=keep))
    return resolved


def apply_weight_masks(model: nn.Module, masks: Optional[MaskDict]) -> None:
    """Zero out the weights selected by ``masks`` (True = forced to zero)."""
    if not masks:
        return
    modules = dict(model.named_modules())
    for name, mask in masks.items():
        weight = _resolve_masked_weight(modules, name, mask)
        weight.data[mask] = 0.0


def enforce_weight_masks(model: nn.Module, masks: Optional[MaskDict]) -> List[MaskedParameter]:
    """Clamp masked weights through the keep-multiplier enforcement path.

    The one shared pruning primitive: resolves the masks exactly like the
    trainers (:func:`resolve_masked_parameters`) and enforces them with the
    same in-place float32 keep-multiplies the per-step hot loops use, so
    pruning applied here can never drift from mask enforcement during FAT.
    Returns the resolved parameters for callers that keep enforcing.
    """
    resolved = resolve_masked_parameters(model, masks)
    for masked in resolved:
        masked.enforce_weight()
    return resolved


def mask_gradients(model: nn.Module, masks: Optional[MaskDict]) -> None:
    """Zero the gradients of masked weights so optimizer state stays clean."""
    if not masks:
        return
    modules = dict(model.named_modules())
    for name, mask in masks.items():
        module = modules.get(name)
        if module is None:
            continue
        weight = getattr(module, "weight", None)
        if weight is not None and weight.grad is not None:
            weight.grad[mask] = 0.0


def seed_stochastic_layers(model: nn.Module, seed: SeedLike) -> int:
    """Reseed every stochastic layer (dropout) from a derived per-layer seed.

    Without this, dropout layers constructed without an explicit ``rng`` draw
    from an unseeded generator and two otherwise-identical training runs
    diverge.  Returns the number of layers reseeded.
    """
    base = int(seed) if isinstance(seed, (int, np.integer)) else 0
    reseeded = 0
    for name, module in model.named_modules():
        reseed = getattr(module, "reseed", None)
        if callable(reseed):
            reseed(derive_seed(base, "dropout", name))
            reseeded += 1
    return reseeded


def epochs_to_steps(epochs: float, batches_per_epoch: int) -> int:
    """Convert a (possibly fractional) epoch amount into optimizer steps."""
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    if batches_per_epoch <= 0:
        raise ValueError("batches_per_epoch must be positive")
    if epochs == 0:
        return 0
    steps = int(round(epochs * batches_per_epoch))
    return max(steps, 1)


class Trainer:
    """Progressive trainer with optional fault masks and epoch checkpoints."""

    def __init__(
        self,
        model: nn.Module,
        train_data: Union[Dataset, DataLoader],
        eval_data: Union[Dataset, DataLoader],
        config: Optional[TrainingConfig] = None,
        masks: Optional[MaskDict] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self.masks = masks
        self.train_loader = _as_loader(
            train_data,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            seed=derive_seed(self.config.seed, "train-loader"),
        )
        self.eval_data = eval_data
        require_nonempty_train_loader(self.train_loader)
        self.optimizer = self.config.build_optimizer(model.parameters())
        self.steps_taken = 0
        self.batches_per_epoch = len(self.train_loader)
        # Resolve mask → parameter bindings once; the per-step hot loop then
        # enforces masks via in-place float multiplies instead of re-walking
        # ``named_modules()`` and boolean fancy-indexing on every step.
        self._masked_params = resolve_masked_parameters(self.model, self.masks)
        # Stochastic layers (dropout) draw from generators derived from the
        # trainer seed so two trainers with the same config are bit-identical.
        seed_stochastic_layers(self.model, self.config.seed)
        # Enforce the masks on the starting weights (FAP before FAT).
        for masked in self._masked_params:
            masked.weight.data[masked.mask] = 0.0

    @property
    def epochs_taken(self) -> float:
        return self.steps_taken / self.batches_per_epoch

    def _train_steps(self, num_steps: int) -> float:
        """Run ``num_steps`` optimizer steps; returns the mean training loss."""
        if num_steps <= 0:
            return float("nan")
        self.model.train()
        losses: List[float] = []
        remaining = num_steps
        with trace.span("train.steps", steps=num_steps):
            while remaining > 0:
                for inputs, targets in self.train_loader:
                    logits = self.model(inputs)
                    loss = F.cross_entropy(
                        logits, targets, label_smoothing=self.config.label_smoothing
                    )
                    self.optimizer.zero_grad()
                    loss.backward()
                    for masked in self._masked_params:
                        masked.enforce_grad()
                    if self.config.grad_clip is not None:
                        # The optimizer already holds the resolved parameter list;
                        # avoid re-walking the module tree every step.
                        nn.clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
                    self.optimizer.step()
                    for masked in self._masked_params:
                        masked.enforce_weight()
                    losses.append(loss.item())
                    self.steps_taken += 1
                    remaining -= 1
                    if remaining == 0:
                        break
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self) -> float:
        with trace.span("train.eval"):
            return evaluate_accuracy(
                self.model, self.eval_data, batch_size=self.config.batch_size * 4
            )

    def train(
        self,
        epochs: float,
        eval_checkpoints: Optional[Sequence[float]] = None,
        include_initial: bool = True,
    ) -> TrainingHistory:
        """Train for ``epochs`` (fractional allowed) with periodic evaluation.

        ``eval_checkpoints`` is a list of *cumulative* epoch amounts (relative
        to the start of this call) at which to record accuracy; the final
        epoch amount is always evaluated.  With ``include_initial=True`` the
        accuracy before any step (0.0 epochs) is recorded too.
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        history = TrainingHistory()
        if include_initial:
            history.add(
                CheckpointRecord(
                    epochs=0.0,
                    steps=self.steps_taken,
                    train_loss=float("nan"),
                    eval_accuracy=self.evaluate(),
                )
            )
        checkpoints = sorted(set(float(c) for c in (eval_checkpoints or []) if 0.0 < c <= epochs))
        if epochs > 0 and (not checkpoints or abs(checkpoints[-1] - epochs) > 1e-12):
            checkpoints.append(float(epochs))
        previous_steps = 0
        for checkpoint in checkpoints:
            target_steps = epochs_to_steps(checkpoint, self.batches_per_epoch)
            step_delta = target_steps - previous_steps
            train_loss = self._train_steps(step_delta) if step_delta > 0 else float("nan")
            previous_steps = target_steps
            history.add(
                CheckpointRecord(
                    epochs=checkpoint,
                    steps=self.steps_taken,
                    train_loss=train_loss,
                    eval_accuracy=self.evaluate(),
                )
            )
        return history


def train_classifier(
    model: nn.Module,
    train_data: Union[Dataset, DataLoader],
    eval_data: Union[Dataset, DataLoader],
    epochs: float,
    config: Optional[TrainingConfig] = None,
    masks: Optional[MaskDict] = None,
    eval_checkpoints: Optional[Sequence[float]] = None,
) -> TrainingHistory:
    """One-call training helper (builds a :class:`Trainer` and runs it)."""
    trainer = Trainer(model, train_data, eval_data, config=config, masks=masks)
    return trainer.train(epochs, eval_checkpoints=eval_checkpoints)
