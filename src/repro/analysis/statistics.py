"""Small statistical helpers used when aggregating experiment results."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStatistics(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Normal-approximation confidence interval ``(mean, low, high)``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean, mean
    # Two-sided z-value via the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half_width = z * float(array.std(ddof=1)) / math.sqrt(array.size)
    return mean, mean - half_width, mean + half_width


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki approximation, adequate for CIs)."""
    if not -1.0 < x < 1.0:
        raise ValueError("erfinv argument must be in (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(math.sqrt(math.sqrt(first * first - ln_term / a) - first), x)


def bootstrap_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: Optional[int] = 0,
) -> Tuple[float, float, float]:
    """Bootstrap percentile confidence interval of the mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    resample_means = rng.choice(array, size=(num_resamples, array.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return float(array.mean()), float(low), float(high)


def relative_change(baseline: float, value: float) -> float:
    """Relative change ``(value - baseline) / |baseline|`` (0 when baseline is 0)."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / abs(baseline)
