"""Terminal (ASCII) plotting.

The examples and benchmark harnesses print the paper's figures as text plots
so that the reproduction is inspectable without matplotlib (which is not
available in this offline environment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, low: float, high: float, size: int) -> np.ndarray:
    if high <= low:
        return np.zeros(len(values), dtype=int)
    scaled = (values - low) / (high - low) * (size - 1)
    return np.clip(np.round(scaled).astype(int), 0, size - 1)


def line_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more y(x) series as an ASCII plot."""
    x = np.asarray(list(x), dtype=float)
    if x.size == 0 or not series:
        raise ValueError("line_plot requires x values and at least one series")
    all_y = np.concatenate([np.asarray(list(ys), dtype=float) for ys in series.values()])
    x_low, x_high = float(x.min()), float(x.max())
    y_low, y_high = float(np.nanmin(all_y)), float(np.nanmax(all_y))
    if y_low == y_high:
        y_low, y_high = y_low - 0.5, y_high + 0.5
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        ys = np.asarray(list(ys), dtype=float)
        if ys.shape != x.shape:
            raise ValueError(f"series {name!r} length {ys.shape} does not match x {x.shape}")
        marker = _MARKERS[index % len(_MARKERS)]
        cols = _scale(x, x_low, x_high, width)
        valid = ~np.isnan(ys)
        rows = _scale(np.where(valid, ys, y_low), y_low, y_high, height)
        for col, row, ok in zip(cols, rows, valid):
            if ok:
                grid[height - 1 - row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_high - (y_high - y_low) * row_index / (height - 1)
        lines.append(f"{y_value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x_low:<10.3f}{x_label:^{max(1, width - 20)}}{x_high:>10.3f}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}   (y: {y_label})")
    return "\n".join(lines)


def scatter_plot(
    points: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled (x, y) point clouds as an ASCII scatter plot."""
    if not points:
        raise ValueError("scatter_plot requires at least one point set")
    all_x = np.concatenate([np.asarray(list(xs), dtype=float) for xs, _ in points.values()])
    all_y = np.concatenate([np.asarray(list(ys), dtype=float) for _, ys in points.values()])
    if all_x.size == 0:
        raise ValueError("scatter_plot requires at least one point")
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if x_low == x_high:
        x_low, x_high = x_low - 0.5, x_high + 0.5
    if y_low == y_high:
        y_low, y_high = y_low - 0.5, y_high + 0.5
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(points.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        xs = np.asarray(list(xs), dtype=float)
        ys = np.asarray(list(ys), dtype=float)
        cols = _scale(xs, x_low, x_high, width)
        rows = _scale(ys, y_low, y_high, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_high - (y_high - y_low) * row_index / (height - 1)
        lines.append(f"{y_value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x_low:<10.3f}{x_label:^{max(1, width - 20)}}{x_high:>10.3f}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(points)
    )
    lines.append(f"legend: {legend}   (y: {y_label})")
    return "\n".join(lines)


def bar_table(
    rows: Sequence[Tuple[str, float, str]],
    width: int = 40,
    scale_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render labelled values as a horizontal bar table.

    Each row is ``(label, value, annotation)``; bars are scaled to
    ``scale_max`` when given (e.g. 100 for percentages) and to the largest
    value otherwise.  The annotation is printed to the right of the bar.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("bar_table requires at least one row")
    peak = scale_max if scale_max is not None else max(value for _, value, _ in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _, _ in rows)
    lines = [title] if title else []
    for label, value, annotation in rows:
        filled = int(round(width * min(max(value, 0.0), peak) / peak))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| {annotation}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Render a horizontal ASCII histogram."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("histogram requires at least one value")
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{low:8.3f}, {high:8.3f}) {count:5d} |{bar}")
    return "\n".join(lines)
