"""Result analysis: Pareto fronts, statistics and terminal plotting."""

from repro.analysis.pareto import pareto_mask, pareto_front, dominates, hypervolume_2d
from repro.analysis.statistics import (
    SummaryStatistics,
    summarize,
    mean_confidence_interval,
    bootstrap_mean_interval,
    relative_change,
)
from repro.analysis.ascii_plot import line_plot, scatter_plot, histogram

__all__ = [
    "pareto_mask",
    "pareto_front",
    "dominates",
    "hypervolume_2d",
    "SummaryStatistics",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_mean_interval",
    "relative_change",
    "line_plot",
    "scatter_plot",
    "histogram",
]
