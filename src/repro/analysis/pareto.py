"""Pareto-front extraction.

Fig. 3f of the paper plots every retraining policy as a point
(average retraining epochs, % of chips meeting the accuracy constraint) and
observes that Reduce lies on the Pareto front: no other policy achieves more
satisfied chips with less average retraining.  These helpers compute that
front for arbitrary cost/quality trade-off points.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def pareto_mask(
    costs: Sequence[float],
    qualities: Sequence[float],
) -> np.ndarray:
    """Boolean mask of Pareto-optimal points (minimise cost, maximise quality).

    A point is Pareto-optimal when no other point has cost <= its cost and
    quality >= its quality with at least one strict inequality.
    """
    costs = np.asarray(costs, dtype=float)
    qualities = np.asarray(qualities, dtype=float)
    if costs.shape != qualities.shape or costs.ndim != 1:
        raise ValueError("costs and qualities must be 1-D arrays of equal length")
    n = len(costs)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominates = (
            (costs <= costs[i])
            & (qualities >= qualities[i])
            & ((costs < costs[i]) | (qualities > qualities[i]))
        )
        if np.any(dominates):
            mask[i] = False
    return mask


def pareto_front(
    points: Sequence[Dict[str, float]],
    cost_key: str,
    quality_key: str,
) -> List[Dict[str, float]]:
    """Pareto-optimal subset of ``points`` sorted by increasing cost."""
    if not points:
        return []
    costs = [float(point[cost_key]) for point in points]
    qualities = [float(point[quality_key]) for point in points]
    mask = pareto_mask(costs, qualities)
    optimal = [point for point, keep in zip(points, mask) if keep]
    return sorted(optimal, key=lambda point: float(point[cost_key]))


def dominates(
    cost_a: float, quality_a: float, cost_b: float, quality_b: float
) -> bool:
    """True when point A dominates point B (cheaper-or-equal and better-or-equal, one strict)."""
    return (
        cost_a <= cost_b
        and quality_a >= quality_b
        and (cost_a < cost_b or quality_a > quality_b)
    )


def hypervolume_2d(
    costs: Sequence[float],
    qualities: Sequence[float],
    reference_cost: float,
    reference_quality: float = 0.0,
) -> float:
    """Area dominated by the Pareto front relative to a reference point.

    Useful as a single scalar comparing whole policy families (larger is
    better).  Costs above ``reference_cost`` or qualities below
    ``reference_quality`` contribute nothing.
    """
    mask = pareto_mask(costs, qualities)
    front = sorted(
        (float(c), float(q))
        for c, q, keep in zip(costs, qualities, mask)
        if keep and c <= reference_cost and q >= reference_quality
    )
    area = 0.0
    best_quality = reference_quality
    for cost, quality in front:
        area += (reference_cost - cost) * max(0.0, quality - best_quality)
        best_quality = max(best_quality, quality)
    return area
