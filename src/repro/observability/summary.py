"""Trace summarization: the ``repro-reduce trace`` per-phase breakdown.

Takes the events of a campaign trace — a merged Chrome trace JSON, a raw
shard, or a whole trace directory — and attributes wall-clock per phase, per
worker process and per mitigation strategy:

* **Phases** are the engine's top-level spans (``campaign.resume_scan`` /
  ``campaign.triage`` / ``campaign.plan`` / ``campaign.execute``), reported
  as a share of the summed ``campaign.run`` wall-clock.
* **Workers** are the processes that executed ``campaign.chunk`` spans,
  keyed by ``(hostname, pid)`` so cross-host workers of a distributed
  campaign never collide (old single-host shards without a host field fold
  into one anonymous host); a worker's utilization is its busy (in-span)
  time over the execute-phase wall-clock, which makes pool starvation
  visible at a glance.
* **Strategies** aggregate chunk time and chip counts by the ``strategy``
  span attribute, giving per-strategy chips/s straight from the trace.
* **Faults** count the supervisor's recovery instants (worker deaths, chunk
  retries, quarantined chunks) plus retried chunk executions (``campaign.chunk``
  spans with ``attempt > 0``), so a trace shows at a glance whether the
  campaign had to recover and how often.

The ASCII rendering reuses :func:`repro.analysis.ascii_plot.bar_table`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.ascii_plot import bar_table
from repro.observability.tracer import (
    CHROME_TRACE_NAME,
    merge_shards,
    read_shard,
)
from repro.utils.timing import format_duration

PathLike = Union[str, Path]

#: Engine spans that partition one campaign run's wall-clock.
PHASE_SPANS = (
    "campaign.resume_scan",
    "campaign.triage",
    "campaign.plan",
    "campaign.execute",
)


def _from_chrome(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Normalize a Chrome trace-event document back to internal events."""
    events: List[Dict[str, Any]] = []
    for entry in document.get("traceEvents", []):
        # The chrome export stores the host in args (pids must stay ints
        # there); lift it back out into the event's host field.
        attrs = dict(entry.get("args", {}) or {})
        host = attrs.pop("host", None)
        event: Dict[str, Any] = {
            "name": entry.get("name", ""),
            "start": float(entry.get("ts", 0.0)) / 1e6,
            "pid": int(entry.get("pid", 0)),
            "attrs": attrs,
        }
        if host:
            event["host"] = str(host)
        if entry.get("ph") == "X":
            event["duration"] = float(entry.get("dur", 0.0)) / 1e6
        events.append(event)
    return events


def load_trace(path: PathLike) -> List[Dict[str, Any]]:
    """Load trace events from a directory, a merged trace JSON, or a shard.

    A directory is merged from its shards (falling back to its ``trace.json``
    when no shards remain); a ``.jsonl`` file is read as one shard; any other
    file is parsed as a Chrome trace-event document.
    """
    path = Path(path)
    if path.is_dir():
        events = merge_shards(path)
        if not events and (path / CHROME_TRACE_NAME).exists():
            path = path / CHROME_TRACE_NAME
        else:
            return events
    if not path.exists():
        raise FileNotFoundError(f"no trace at {path}")
    if path.suffix == ".jsonl":
        return read_shard(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path} is not a trace document")
    return _from_chrome(document)


def _duration_events(events: List[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    return [e for e in events if e.get("name") == name and e.get("duration") is not None]


def summarize_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate trace events into the per-phase/worker/strategy breakdown."""
    runs = _duration_events(events, "campaign.run")
    total_wall = sum(float(e["duration"]) for e in runs)
    phases: List[Dict[str, Any]] = []
    accounted = 0.0
    for phase in PHASE_SPANS:
        spans = _duration_events(events, phase)
        phase_total = sum(float(e["duration"]) for e in spans)
        accounted += phase_total
        phases.append(
            {
                "phase": phase.split(".", 1)[1],
                "seconds": phase_total,
                "count": len(spans),
                "percent": 100.0 * phase_total / total_wall if total_wall else 0.0,
            }
        )
    execute_total = next(p["seconds"] for p in phases if p["phase"] == "execute")

    chunks = _duration_events(events, "campaign.chunk")
    workers: Dict[Tuple[str, int], Dict[str, Any]] = {}
    strategies: Dict[str, Dict[str, Any]] = {}
    for chunk in chunks:
        attrs = chunk.get("attrs", {}) or {}
        seconds = float(chunk["duration"])
        chips = int(attrs.get("chips", 0))
        # Key by (host, pid): pids collide across the hosts of a distributed
        # campaign.  Legacy shards without a host field share the "" host.
        worker = workers.setdefault(
            (str(chunk.get("host", "") or ""), int(chunk.get("pid", 0))),
            {"busy_seconds": 0.0, "chunks": 0, "chips": 0},
        )
        worker["busy_seconds"] += seconds
        worker["chunks"] += 1
        worker["chips"] += chips
        name = str(attrs.get("strategy", "?"))
        strategy = strategies.setdefault(name, {"seconds": 0.0, "chunks": 0, "chips": 0})
        strategy["seconds"] += seconds
        strategy["chunks"] += 1
        strategy["chips"] += chips
    worker_rows = [
        {
            "host": host,
            "pid": pid,
            "worker": f"{host}:{pid}" if host else f"pid {pid}",
            **stats,
            "utilization": stats["busy_seconds"] / execute_total if execute_total else 0.0,
        }
        for (host, pid), stats in sorted(workers.items())
    ]
    strategy_rows = [
        {
            "strategy": name,
            **stats,
            "chips_per_second": stats["chips"] / stats["seconds"] if stats["seconds"] else 0.0,
        }
        for name, stats in sorted(strategies.items())
    ]
    chip_events = [e for e in events if e.get("name") == "campaign.chip"]
    # FAT eval-vs-train attribution: checkpoint-eval passes vs training-step
    # spans inside the batched trainer, the split the pipelined eval path
    # (prefetch, widened multi-checkpoint GEMMs) is meant to move.
    train_spans = _duration_events(events, "fat.train_steps")
    eval_spans = _duration_events(events, "fat.eval_checkpoint")
    widened_spans = _duration_events(events, "fat.eval_widened")
    fat = {
        "train_seconds": sum(float(e["duration"]) for e in train_spans),
        "train_spans": len(train_spans),
        "eval_seconds": sum(float(e["duration"]) for e in eval_spans),
        "eval_spans": len(eval_spans),
        "widened_evals": len(widened_spans),
    }
    # Fault-recovery instants from the supervising executor: how often the
    # campaign had to recover, visible straight from the trace.
    faults = {
        "worker_deaths": sum(
            1 for e in events if e.get("name") == "campaign.worker_death"
        ),
        "chunk_retries": sum(
            1 for e in events if e.get("name") == "campaign.chunk_retry"
        ),
        "chunks_quarantined": sum(
            1 for e in events if e.get("name") == "campaign.chunk_quarantined"
        ),
        "retried_chunk_executions": sum(
            1
            for e in chunks
            if int((e.get("attrs", {}) or {}).get("attempt", 0) or 0) > 0
        ),
    }
    return {
        "total_wall_seconds": total_wall,
        "runs": len(runs),
        "accounted_seconds": accounted,
        "accounted_percent": 100.0 * accounted / total_wall if total_wall else 0.0,
        "phases": phases,
        "workers": worker_rows,
        "strategies": strategy_rows,
        "chips_committed": len(chip_events),
        "faults": faults,
        "fat": fat,
    }


def render_trace_summary(summary: Dict[str, Any], width: int = 40) -> str:
    """Render :func:`summarize_trace` output as an ASCII breakdown."""
    lines: List[str] = []
    total = summary["total_wall_seconds"]
    lines.append(
        f"campaign trace: {summary['runs']} run(s), "
        f"wall-clock {format_duration(total) if total else '0s'}, "
        f"{summary['chips_committed']} chip(s) committed, "
        f"{summary['accounted_percent']:.1f}% of wall-clock in phases"
    )
    lines.append("")
    lines.append("Per-phase breakdown (% of campaign wall-clock):")
    lines.append(
        bar_table(
            [
                (
                    row["phase"],
                    row["percent"],
                    f"{row['percent']:5.1f}%  {format_duration(row['seconds']) if row['seconds'] else '0s'}"
                    f"  ({row['count']}x)",
                )
                for row in summary["phases"]
            ],
            width=width,
            scale_max=100.0,
        )
    )
    if summary["workers"]:
        lines.append("")
        lines.append("Per-worker utilization (busy / execute wall-clock):")
        lines.append(
            bar_table(
                [
                    (
                        str(row.get("worker") or f"pid {row['pid']}"),
                        100.0 * row["utilization"],
                        f"{100.0 * row['utilization']:5.1f}%  "
                        f"{row['chips']} chips in {row['chunks']} chunk(s)",
                    )
                    for row in summary["workers"]
                ],
                width=width,
                scale_max=100.0,
            )
        )
    fat = summary.get("fat", {})
    fat_total = fat.get("train_seconds", 0.0) + fat.get("eval_seconds", 0.0)
    if fat_total:
        eval_share = 100.0 * fat.get("eval_seconds", 0.0) / fat_total
        widened = fat.get("widened_evals", 0)
        widened_note = f", {widened} widened multi-checkpoint pass(es)" if widened else ""
        lines.append("")
        lines.append(
            "FAT eval vs train: "
            f"eval {format_duration(fat['eval_seconds']) if fat['eval_seconds'] else '0s'} "
            f"({eval_share:.1f}%) in {fat['eval_spans']} checkpoint pass(es), "
            f"train {format_duration(fat['train_seconds']) if fat['train_seconds'] else '0s'} "
            f"({100.0 - eval_share:.1f}%) in {fat['train_spans']} step span(s)"
            f"{widened_note}"
        )
    faults = summary.get("faults", {})
    if any(faults.values()):
        lines.append("")
        lines.append(
            "Fault recovery: "
            f"{faults.get('worker_deaths', 0)} worker death(s), "
            f"{faults.get('chunk_retries', 0)} chunk retry(ies) "
            f"({faults.get('retried_chunk_executions', 0)} re-execution(s)), "
            f"{faults.get('chunks_quarantined', 0)} chunk(s) quarantined"
        )
    if summary["strategies"]:
        lines.append("")
        lines.append("Per-strategy attribution (chunk execution time):")
        lines.append(
            bar_table(
                [
                    (
                        row["strategy"],
                        row["seconds"],
                        f"{format_duration(row['seconds']) if row['seconds'] else '0s'}  "
                        f"{row['chips']} chips, {row['chips_per_second']:.2f} chips/s",
                    )
                    for row in summary["strategies"]
                ],
                width=width,
            )
        )
    return "\n".join(lines)


def summarize_trace_path(path: PathLike, width: int = 40) -> str:
    """One-call helper: load, summarize and render a trace path."""
    return render_trace_summary(summarize_trace(load_trace(path)), width=width)
