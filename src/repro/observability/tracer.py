"""Span tracer: where does campaign wall-clock actually go?

The tracer is a process-wide singleton (:data:`trace`) with a context-manager
API::

    from repro.observability import trace

    with trace.span("campaign.triage", chips=24):
        ...

* **Disabled** (the default), ``span()`` returns a shared no-op singleton —
  no span object, no record, no I/O.  The only cost at an instrumentation
  site is one attribute check, which keeps the hot paths' disabled overhead
  unmeasurable (the tracer-overhead benchmark pair in
  ``benchmarks/test_bench_campaign.py`` pins this).
* **Enabled** (:meth:`Tracer.enable` with a directory), every finished span
  is appended immediately — one JSON line per span, flushed but not fsynced —
  to a per-process shard ``trace-<host>-<pid>.jsonl``.  Shards are keyed by
  ``(hostname, pid)`` because distributed campaigns collect shards from
  several machines into one directory, where a bare pid collides; old
  single-host ``trace-<pid>.jsonl`` shards still match the merge glob and
  stay readable.  Worker processes of the campaign pool write their *own*
  shards: the shard path is re-derived whenever ``os.getpid()`` changes, so
  ``fork``-started workers that inherit an enabled tracer never interleave
  writes into the parent's shard, and ``spawn``-started workers are enabled
  explicitly by the pool initializer.
  Immediate per-span writes are what make traces kill-tolerant: a killed
  campaign's shard holds every span that finished before the kill.

Spans record ``(name, start, duration, pid, attrs)`` with
``time.perf_counter()`` timestamps (CLOCK_MONOTONIC on Linux, so shards from
concurrent processes share a timebase).  :func:`merge_shards` combines all
shards of a directory into one event list and :func:`write_chrome_trace`
renders them as a Chrome trace-event JSON loadable in Perfetto /
``chrome://tracing``.

Tracing never touches model numerics, RNG streams or stored results:
campaigns are bit-identical with tracing on or off.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.utils.hostinfo import host_tag

PathLike = Union[str, Path]

SHARD_PREFIX = "trace-"
SHARD_SUFFIX = ".jsonl"
CHROME_TRACE_NAME = "trace.json"


class _DisabledSpan:
    """Shared no-op span: the entire disabled-tracer span path."""

    __slots__ = ()

    def __enter__(self) -> "_DisabledSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_DisabledSpan":
        return self


_DISABLED_SPAN = _DisabledSpan()


class Span:
    """One live span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start: Optional[float] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or override) attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self._start is not None:
            self._tracer._record(
                self.name, self._start, time.perf_counter() - self._start, self.attrs
            )
        return False


class Tracer:
    """Per-process span recorder writing one JSONL shard per pid."""

    def __init__(self) -> None:
        self.enabled = False
        self.directory: Optional[Path] = None
        self._handle: Optional[TextIO] = None
        self._pid: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    def enable(self, directory: PathLike) -> None:
        """Start recording spans to per-process shards under ``directory``."""
        self.disable()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.enabled = True

    def disable(self) -> None:
        """Stop recording and close the current shard (if any)."""
        self.enabled = False
        self.directory = None
        self._close()

    def _close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
        self._handle = None
        self._pid = None

    def shard_path(self) -> Optional[Path]:
        """This process's shard path (None while disabled)."""
        if self.directory is None:
            return None
        return (
            self.directory
            / f"{SHARD_PREFIX}{host_tag()}-{os.getpid()}{SHARD_SUFFIX}"
        )

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context manager timing one named span (no-op singleton when disabled)."""
        if not self.enabled:
            return _DISABLED_SPAN
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event (e.g. one chip committed to the store)."""
        if not self.enabled:
            return
        self._record(name, time.perf_counter(), None, attrs)

    def _record(
        self,
        name: str,
        start: float,
        duration: Optional[float],
        attrs: Dict[str, Any],
    ) -> None:
        if not self.enabled or self.directory is None:
            return
        pid = os.getpid()
        if self._handle is None or pid != self._pid:
            # First record in this process — or a fork-inherited tracer whose
            # handle still points at the parent's shard.  Either way, (re)open
            # this pid's own shard so concurrent processes never interleave.
            self._close()
            self._handle = self.shard_path().open("a", encoding="utf-8")
            self._pid = pid
        event: Dict[str, Any] = {
            "name": name,
            "start": start,
            "pid": pid,
            "host": host_tag(),
        }
        if duration is not None:
            event["duration"] = duration
        if attrs:
            event["attrs"] = attrs
        # One line per span, flushed immediately (no fsync): everything that
        # finished before a kill is on disk, and a resumed run appends.
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def flush(self) -> None:
        """Flush the current shard handle (writes are already per-span)."""
        if self._handle is not None:
            self._handle.flush()


#: The process-wide tracer used by all instrumentation sites.
trace = Tracer()


# ---------------------------------------------------------------------------
# Shard merging / Chrome trace export
# ---------------------------------------------------------------------------


def read_shard(path: PathLike) -> List[Dict[str, Any]]:
    """Events of one shard; unreadable lines (torn writes) are skipped."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event and "start" in event:
                events.append(event)
    return events


def merge_shards(directory: PathLike) -> List[Dict[str, Any]]:
    """All events of a trace directory's shards, sorted by start time."""
    directory = Path(directory)
    events: List[Dict[str, Any]] = []
    for shard in sorted(directory.glob(f"{SHARD_PREFIX}*{SHARD_SUFFIX}")):
        events.extend(read_shard(shard))
    events.sort(key=lambda event: float(event["start"]))
    return events


def to_chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Render merged events as a Chrome trace-event document.

    Spans become complete ("X") events and instants become instant ("i")
    events; timestamps are microseconds relative to the earliest event, so
    the trace starts at t=0 in Perfetto / ``chrome://tracing``.
    """
    t0 = min((float(event["start"]) for event in events), default=0.0)
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        pid = int(event.get("pid", 0))
        # Chrome trace pids must be integers, so the host travels in args
        # (restored by the summary loader when reading a merged trace back).
        args = dict(event.get("attrs", {}) or {})
        host = event.get("host")
        if host:
            args["host"] = str(host)
        entry: Dict[str, Any] = {
            "name": str(event["name"]),
            "cat": str(event["name"]).split(".", 1)[0],
            "ts": (float(event["start"]) - t0) * 1e6,
            "pid": pid,
            "tid": pid,
            "args": args,
        }
        duration = event.get("duration")
        if duration is None:
            entry["ph"] = "i"
            entry["s"] = "p"  # process-scoped instant
        else:
            entry["ph"] = "X"
            entry["dur"] = float(duration) * 1e6
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    directory: PathLike, output: Optional[PathLike] = None
) -> Path:
    """Merge a trace directory's shards into one Chrome trace JSON file.

    Returns the path written (``<directory>/trace.json`` by default).
    Merging is idempotent: re-running after more shards (or more spans)
    landed simply rewrites the merged view.
    """
    directory = Path(directory)
    output_path = Path(output) if output is not None else directory / CHROME_TRACE_NAME
    document = to_chrome_trace(merge_shards(directory))
    tmp = output_path.with_name(output_path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp, output_path)
    return output_path
