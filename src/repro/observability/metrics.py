"""Metrics registry: counters, gauges and histograms for the campaign pipeline.

The registry (:data:`metrics`, a process-wide singleton) is always
functional — engine bookkeeping such as the heartbeat's chips-completed
counter costs one integer add per chip and needs no opt-in.  The ``enabled``
flag gates only the *hot-path* observations (per-GEMM timers, lowering-cache
hit counters) whose guard must stay a single attribute check when
observability is off, plus the per-process JSON snapshot shards.

Instruments::

    metrics.counter("campaign.chips_completed", strategy="fat").inc()
    metrics.gauge("campaign.phase").set("execute")
    metrics.histogram("store.fsync_seconds").observe(0.0021)
    with metrics.timer("fat.eval.im2col_seconds"): ...   # no-op when disabled

Label kwargs are folded into the metric key (``name{k=v,...}``), so a sweep's
per-strategy throughput counters coexist in one registry.  Snapshots are
plain JSON (:meth:`MetricsRegistry.snapshot`); pool workers write per-process
``metrics-<host>-<pid>.json`` shards (host-qualified so cross-host shards
never collide; old ``metrics-<pid>.json`` shards still merge) which
:func:`merge_metric_shards` combines — counters sum, gauges keep the latest
write, histograms merge their moments.

Like the tracer, the registry never touches model numerics or RNG streams:
results are bit-identical with metrics on or off.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.utils.hostinfo import host_tag

PathLike = Union[str, Path]

METRICS_SHARD_PREFIX = "metrics-"
METRICS_SHARD_SUFFIX = ".json"
MERGED_METRICS_NAME = "metrics.json"

# Histograms keep at most this many raw samples for percentile estimates;
# moments (count/total/min/max) stay exact beyond the cap.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins value (numbers or short strings, e.g. a phase name)."""

    __slots__ = ("value", "updated_at")

    def __init__(self) -> None:
        self.value: Any = None
        self.updated_at: float = 0.0

    def set(self, value: Any) -> None:
        self.value = value
        self.updated_at = time.time()

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "updated_at": self.updated_at}


class Histogram:
    """Streaming distribution: exact moments plus a capped sample reservoir."""

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile from the retained samples (0 <= q <= 100)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[index]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        room = HISTOGRAM_SAMPLE_CAP - len(self.samples)
        if room > 0:
            self.samples.extend(other.samples[:room])


class _DisabledTimer:
    """Shared no-op timer for the disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_DisabledTimer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_DISABLED_TIMER = _DisabledTimer()


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_key`: ``"a{b=c}"`` -> ``("a", {"b": "c"})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, label_part = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in label_part[:-1].split(","):
        if "=" in pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


class MetricsRegistry:
    """Named counters/gauges/histograms with JSON snapshots."""

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        return histogram

    def timer(self, name: str, **labels: Any):
        """Context manager observing its duration into a histogram.

        Returns the shared no-op when the registry is disabled, so hot paths
        pay one attribute check and nothing else.
        """
        if not self.enabled:
            return _DISABLED_TIMER
        return _Timer(self.histogram(name, **labels))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-compatible mapping."""
        out: Dict[str, Any] = {}
        for key, counter in self._counters.items():
            out[key] = counter.snapshot()
        for key, gauge in self._gauges.items():
            out[key] = gauge.snapshot()
        for key, histogram in self._histograms.items():
            out[key] = histogram.snapshot()
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def shard_path(self, directory: PathLike) -> Path:
        return (
            Path(directory)
            / f"{METRICS_SHARD_PREFIX}{host_tag()}-{os.getpid()}{METRICS_SHARD_SUFFIX}"
        )

    def shard_payload(self) -> Dict[str, Any]:
        """This process's shard content (also shipped over the campaign socket)."""
        return {
            "host": host_tag(),
            "pid": os.getpid(),
            "written_at": time.time(),
            "metrics": self.snapshot(),
            # Raw samples ride along so merged histograms keep percentiles.
            "histogram_samples": {
                key: histogram.samples for key, histogram in self._histograms.items()
            },
        }

    def write_shard(self, directory: PathLike) -> Path:
        """Write this process's snapshot shard (atomic replace, safe to re-run)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(directory)
        payload = self.shard_payload()
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return path


#: The process-wide registry used by all instrumentation sites.
metrics = MetricsRegistry()


def merge_metric_shards(directory: PathLike) -> Dict[str, Any]:
    """Merge every ``metrics-<pid>.json`` shard of a directory.

    Counters sum across processes, gauges keep the most recent write, and
    histograms merge moments (plus capped samples for the percentiles).
    """
    directory = Path(directory)
    counters: Dict[str, int] = {}
    gauges: Dict[str, Tuple[float, Any]] = {}
    histograms: Dict[str, Histogram] = {}
    for shard in sorted(directory.glob(f"{METRICS_SHARD_PREFIX}*{METRICS_SHARD_SUFFIX}")):
        try:
            with shard.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        samples = payload.get("histogram_samples", {})
        for key, snap in payload.get("metrics", {}).items():
            kind = snap.get("type")
            if kind == "counter":
                counters[key] = counters.get(key, 0) + int(snap.get("value", 0))
            elif kind == "gauge":
                stamped = (float(snap.get("updated_at", 0.0)), snap.get("value"))
                if key not in gauges or stamped[0] >= gauges[key][0]:
                    gauges[key] = stamped
            elif kind == "histogram":
                incoming = Histogram()
                incoming.count = int(snap.get("count", 0))
                incoming.total = float(snap.get("total", 0.0))
                incoming.min = snap.get("min")
                incoming.max = snap.get("max")
                incoming.samples = [float(v) for v in samples.get(key, [])]
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = incoming
                else:
                    merged.merge(incoming)
    out: Dict[str, Any] = {}
    for key, value in counters.items():
        out[key] = {"type": "counter", "value": value}
    for key, (updated_at, value) in gauges.items():
        out[key] = {"type": "gauge", "value": value, "updated_at": updated_at}
    for key, histogram in histograms.items():
        out[key] = histogram.snapshot()
    return out


def write_merged_metrics(
    directory: PathLike, output: Optional[PathLike] = None
) -> Path:
    """Merge metric shards and write the combined ``metrics.json``."""
    directory = Path(directory)
    output_path = Path(output) if output is not None else directory / MERGED_METRICS_NAME
    merged = merge_metric_shards(directory)
    tmp = output_path.with_name(output_path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
    os.replace(tmp, output_path)
    return output_path
