"""Observability layer: span tracing + metrics for the campaign pipeline.

Two process-wide singletons back every instrumentation site:

* :data:`trace` — a span tracer (``with trace.span("campaign.triage"): ...``)
  that is a no-op until :meth:`~repro.observability.tracer.Tracer.enable` is
  called with a directory, then writes per-process JSONL shards mergeable
  into a Chrome trace-event JSON (Perfetto / ``chrome://tracing``).
* :data:`metrics` — a counter/gauge/histogram registry snapshotting to JSON.

Neither touches model numerics or RNG streams: campaign results are
bit-identical with observability on or off.
"""

from repro.observability.metrics import (
    MERGED_METRICS_NAME,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_shards,
    metrics,
    split_key,
    write_merged_metrics,
)
from repro.observability.summary import (
    load_trace,
    render_trace_summary,
    summarize_trace,
    summarize_trace_path,
)
from repro.observability.tracer import (
    CHROME_TRACE_NAME,
    Span,
    Tracer,
    merge_shards,
    read_shard,
    to_chrome_trace,
    trace,
    write_chrome_trace,
)

__all__ = [
    "CHROME_TRACE_NAME",
    "MERGED_METRICS_NAME",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "load_trace",
    "merge_metric_shards",
    "merge_shards",
    "metrics",
    "read_shard",
    "render_trace_summary",
    "split_key",
    "summarize_trace",
    "summarize_trace_path",
    "to_chrome_trace",
    "trace",
    "write_chrome_trace",
]
