"""Unit tests for Tensor arithmetic, reductions and shape manipulation."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, as_tensor, concatenate, stack, no_grad, is_grad_enabled, enable_grad


class TestConstruction:
    def test_from_list_defaults_to_float32(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.dtype == np.float32
        assert t.shape == (2, 2)

    def test_from_numpy_keeps_float64(self):
        t = Tensor(np.zeros((3,), dtype=np.float64))
        assert t.dtype == np.float64

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert np.all(Tensor.ones(4).data == 1)
        assert Tensor.randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_properties(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3
        assert t.is_leaf
        assert "Tensor" in repr(t)

    def test_item_requires_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestArithmetic:
    def test_add_sub_mul_div(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([4.0, 5.0, 6.0])
        assert np.allclose((a + b).data, [5, 7, 9])
        assert np.allclose((a - b).data, [-3, -3, -3])
        assert np.allclose((a * b).data, [4, 10, 18])
        assert np.allclose((b / a).data, [4, 2.5, 2])

    def test_scalar_and_reflected_operators(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((2 - a).data, [1, 0])
        assert np.allclose((2 * a).data, [2, 4])
        assert np.allclose((2 / a).data, [2, 1])
        assert np.allclose((-a).data, [-1, -2])
        assert np.allclose((a ** 2).data, [1, 4])

    def test_broadcasting(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3, dtype=np.float32))
        assert (a + b).shape == (2, 3)
        assert (a * b).shape == (2, 3)

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)
        assert np.allclose(a.matmul(b).data, a.data @ b.data)

    def test_elementwise_math(self):
        a = Tensor([0.5, 1.0, 2.0])
        assert np.allclose(a.exp().data, np.exp(a.data))
        assert np.allclose(a.log().data, np.log(a.data))
        assert np.allclose(a.sqrt().data, np.sqrt(a.data))
        assert np.allclose(Tensor([-1.0, 2.0]).abs().data, [1, 2])
        assert np.allclose(Tensor([-2.0, 0.5, 3.0]).clip(-1, 1).data, [-1, 0.5, 1])

    def test_activations(self):
        a = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(a.relu().data, [0, 0, 2])
        assert np.allclose(a.sigmoid().data, 1 / (1 + np.exp(-a.data)))
        assert np.allclose(a.tanh().data, np.tanh(a.data))
        assert np.allclose(a.leaky_relu(0.1).data, [-0.1, 0, 2])


class TestReductions:
    def test_sum_mean_max(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert a.sum().item() == pytest.approx(15)
        assert a.mean().item() == pytest.approx(2.5)
        assert a.max().item() == pytest.approx(5)
        assert np.allclose(a.sum(axis=0).data, [3, 5, 7])
        assert np.allclose(a.mean(axis=1).data, [1, 4])
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_softmax_and_log_softmax(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]], dtype=np.float32))
        probabilities = logits.softmax(axis=-1)
        assert np.allclose(probabilities.data.sum(axis=-1), 1.0)
        assert np.allclose(np.exp(logits.log_softmax(axis=-1).data), probabilities.data, atol=1e-6)

    def test_argmax_returns_numpy(self):
        a = Tensor(np.array([[0.1, 0.9], [0.8, 0.2]], dtype=np.float32))
        assert np.array_equal(a.argmax(axis=1), [1, 0])


class TestShapeOps:
    def test_reshape_flatten_transpose(self):
        a = Tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        assert a.reshape(6, 4).shape == (6, 4)
        assert a.reshape((4, 6)).shape == (4, 6)
        assert a.flatten().shape == (2, 12)
        assert a.flatten(start_dim=2).shape == (2, 3, 4)
        assert a.transpose().shape == (4, 3, 2)
        assert a.transpose(0, 2, 1).shape == (2, 4, 3)
        assert Tensor(np.ones((2, 3))).T.shape == (3, 2)

    def test_getitem(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert np.allclose(a[0].data, [0, 1, 2, 3])
        assert np.allclose(a[:, 1].data, [1, 5, 9])

    def test_concatenate_and_stack(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.zeros((2, 3)))
        assert concatenate([a, b], axis=0).shape == (4, 3)
        assert concatenate([a, b], axis=1).shape == (2, 6)
        assert stack([a, b], axis=0).shape == (2, 2, 3)
        with pytest.raises(ValueError):
            concatenate([])

    def test_detach_and_clone(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        detached = a.detach()
        assert not detached.requires_grad
        assert detached.data is a.data
        cloned = a.clone()
        cloned.data[0] = 99.0
        assert a.data[0] == 1.0


class TestGradMode:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert out._ctx is None
        assert not out.requires_grad

    def test_enable_grad_nested(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
