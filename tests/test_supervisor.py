"""Tests for the supervising executor, the chaos harness, and recovery paths.

The unit tests drive :class:`SupervisingExecutor` directly with stub workers
(no ML stack) to exercise death/hang/retry/quarantine mechanics quickly; the
integration tests run real smoke-scale campaigns under seeded chaos and
assert the headline guarantee: recovery is invisible in the results.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignStore,
    ChaosError,
    ChaosSpec,
    SupervisingExecutor,
    SupervisorConfig,
    resolve_chaos,
)
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.observability import metrics


@pytest.fixture(scope="module")
def population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=123,
    )


def _fast_config(**overrides):
    base = dict(backoff_base=0.05, backoff_max=0.2, poll_interval=0.02)
    base.update(overrides)
    return SupervisorConfig(**base)


class TestChaosSpec:
    def test_parse_round_trip(self):
        spec = ChaosSpec.parse("seed=7,kill=2,hang=1,exc=1,poison=1,torn=2,hang_s=5")
        assert spec.seed == 7
        assert (spec.kill, spec.hang, spec.exc, spec.poison, spec.torn) == (2, 1, 1, 1, 2)
        assert spec.hang_s == 5.0
        assert ChaosSpec.parse(spec.describe() + ",hang_s=5") == spec

    @pytest.mark.parametrize(
        "bad",
        ["", "kill", "kill=", "kill=x", "frob=1", "hang_s=0", "kill=-1", "hang_s=abc"],
    )
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_resolve_chaos_normalizes(self):
        assert resolve_chaos(None) is None
        spec = ChaosSpec(kill=1)
        assert resolve_chaos(spec) is spec
        assert resolve_chaos("kill=1") == ChaosSpec(kill=1)

    def test_schedule_is_deterministic(self):
        spec = ChaosSpec.parse("seed=11,kill=2,exc=1,torn=2")
        first = spec.schedule(16)
        second = spec.schedule(16)
        assert first.actions == second.actions
        assert first.torn_points == second.torn_points
        assert len(first.actions) == 3
        # A different seed plans different fault points (overwhelmingly).
        other = ChaosSpec.parse("seed=12,kill=2,exc=1,torn=2").schedule(16)
        assert (other.actions, other.torn_points) != (first.actions, first.torn_points)

    def test_faults_beyond_chunk_count_are_dropped(self):
        schedule = ChaosSpec.parse("kill=5,exc=5").schedule(3)
        assert len(schedule.actions) == 3

    def test_first_attempt_only_except_poison(self):
        schedule = ChaosSpec(exc=1, poison=1).schedule(2)
        (exc_index,) = [i for i, a in schedule.actions.items() if a == "exc"]
        (poison_index,) = [i for i, a in schedule.actions.items() if a == "poison"]
        assert schedule.action_for(exc_index, 0) == "exc"
        assert schedule.action_for(exc_index, 1) is None
        assert schedule.action_for(poison_index, 0) == "poison"
        assert schedule.action_for(poison_index, 5) == "poison"

    def test_inline_downgrades_process_faults(self):
        schedule = ChaosSpec(kill=1).schedule(1)
        # Would SIGKILL the test process if not downgraded.
        schedule.maybe_inject(0, 0, allow_process_faults=False)
        exc_schedule = ChaosSpec(exc=1).schedule(1)
        with pytest.raises(ChaosError):
            exc_schedule.maybe_inject(0, 0, allow_process_faults=False)


class TestSupervisorConfig:
    def test_backoff_is_capped_exponential(self):
        config = SupervisorConfig(backoff_base=0.5, backoff_max=3.0)
        assert config.backoff_seconds(0) == 0.0
        assert config.backoff_seconds(1) == 0.5
        assert config.backoff_seconds(2) == 1.0
        assert config.backoff_seconds(10) == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_chunk_retries": -1},
            {"chunk_timeout": 0.0},
            {"timeout_factor": 0.0},
            {"backoff_base": -1.0},
            {"poll_interval": 0.0},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


# -- stub workers (module-level so spawn contexts could pickle them too) --------


def _stub_initializer():
    def execute(chunk, chunk_index, attempt):
        return [f"{chunk_index}:{item}" for item in chunk]

    return execute


def _kill_second_chunk_initializer():
    def execute(chunk, chunk_index, attempt):
        if chunk_index == 1 and attempt == 0:
            os.kill(os.getpid(), signal.SIGKILL)
        return [f"{chunk_index}:{item}" for item in chunk]

    return execute


def _hang_first_chunk_initializer():
    def execute(chunk, chunk_index, attempt):
        if chunk_index == 0 and attempt == 0:
            time.sleep(30.0)
        return [f"{chunk_index}:{item}" for item in chunk]

    return execute


def _always_fail_chunk_zero_initializer():
    def execute(chunk, chunk_index, attempt):
        if chunk_index == 0:
            raise RuntimeError("poisoned")
        return [f"{chunk_index}:{item}" for item in chunk]

    return execute


class _FakeJob:
    """Minimal stand-in for ChipJob in ChunkFailure records."""

    def __init__(self, chip_id):
        self.chip_id = chip_id
        self.epochs = 0.25
        self.strategy = "fat"


class TestSupervisingExecutorUnit:
    PLAN = [["a", "b"], ["c"], ["d", "e"]]

    def _run(self, initializer, config, plan=None):
        recorded = []
        executor = SupervisingExecutor(
            plan if plan is not None else self.PLAN,
            recorded.append,
            workers=2,
            mp_context=multiprocessing.get_context("fork"),
            initializer=initializer,
            initargs=(),
            config=config,
        )
        failures = executor.run()
        return recorded, failures

    def test_healthy_plan_completes(self):
        recorded, failures = self._run(_stub_initializer, _fast_config())
        assert not failures
        assert sorted(r[0] for r in recorded) == ["0:a", "1:c", "2:d"]

    def test_worker_death_reassigns_chunk(self):
        before = metrics.counter("campaign.worker_deaths").value
        recorded, failures = self._run(_kill_second_chunk_initializer, _fast_config())
        assert not failures
        assert sorted(r[0] for r in recorded) == ["0:a", "1:c", "2:d"]
        assert metrics.counter("campaign.worker_deaths").value > before

    def test_hung_worker_is_killed_and_chunk_retried(self):
        before = metrics.counter("campaign.worker_hangs").value
        recorded, failures = self._run(
            _hang_first_chunk_initializer, _fast_config(chunk_timeout=0.5)
        )
        assert not failures
        assert sorted(r[0] for r in recorded) == ["0:a", "1:c", "2:d"]
        assert metrics.counter("campaign.worker_hangs").value > before

    def test_poison_chunk_is_quarantined_others_complete(self):
        plan = [[_FakeJob("a"), _FakeJob("b")], [_FakeJob("c")]]
        recorded, failures = self._run(
            _always_fail_chunk_zero_initializer,
            _fast_config(max_chunk_retries=1),
            plan=plan,
        )
        assert sorted(r[0] for r in recorded) == ["1:" + str(plan[1][0])] or len(recorded) == 1
        assert len(failures) == 1
        failure = failures[0]
        assert failure.chip_ids == ["a", "b"]
        assert failure.attempts == 2
        assert "poisoned" in failure.error
        records = failure.to_chip_records()
        assert [r["chip_id"] for r in records] == ["a", "b"]
        assert all(r["attempts"] == 2 and r["strategy"] == "fat" for r in records)


class TestChaosCampaigns:
    """End-to-end: seeded chaos campaigns finish with undisturbed results."""

    def _run(self, context, population, tmp_path, name, **engine_kwargs):
        engine = CampaignEngine(
            context,
            store_base=tmp_path / name,
            supervisor_config=engine_kwargs.pop("supervisor_config", _fast_config()),
            **engine_kwargs,
        )
        result = engine.run(population, FixedEpochPolicy(0.25))
        return engine, result

    def _store_lines(self, engine):
        return sorted(
            (engine.last_report.store_dir / "results.jsonl").read_text().splitlines()
        )

    def test_worker_sigkill_mid_chunk_is_invisible(
        self, smoke_context, population, tmp_path
    ):
        deaths_before = metrics.counter("campaign.worker_deaths").value
        retries_before = metrics.counter("campaign.chunk_retries").value
        _, baseline = self._run(
            smoke_context, population, tmp_path, "plain", jobs=2, fat_batch=2
        )
        chaos_engine, chaotic = self._run(
            smoke_context,
            population,
            tmp_path,
            "chaos",
            jobs=2,
            fat_batch=2,
            chaos="seed=3,kill=1",
        )
        assert chaotic.results == baseline.results
        assert not chaotic.failed_chips
        assert chaos_engine.last_report.failed == 0
        assert metrics.counter("campaign.worker_deaths").value > deaths_before
        assert metrics.counter("campaign.chunk_retries").value > retries_before
        # Recovery is invisible on disk too: same rows, verified clean.
        baseline_engine_dir = tmp_path / "plain"
        plain_lines = sorted(
            next(baseline_engine_dir.iterdir()).joinpath("results.jsonl")
            .read_text()
            .splitlines()
        )
        assert self._store_lines(chaos_engine) == plain_lines
        assert CampaignStore(chaos_engine.last_report.store_dir).verify().is_clean

    def test_hang_is_detected_and_chunk_reassigned(
        self, smoke_context, population, tmp_path
    ):
        hangs_before = metrics.counter("campaign.worker_hangs").value
        _, baseline = self._run(
            smoke_context, population, tmp_path, "plain", jobs=2, fat_batch=2
        )
        _, chaotic = self._run(
            smoke_context,
            population,
            tmp_path,
            "chaos",
            jobs=2,
            fat_batch=2,
            chaos="seed=5,hang=1,hang_s=30",
            supervisor_config=_fast_config(chunk_timeout=2.0),
        )
        assert chaotic.results == baseline.results
        assert not chaotic.failed_chips
        assert metrics.counter("campaign.worker_hangs").value > hangs_before

    def test_transient_exception_retried_inline(
        self, smoke_context, population, tmp_path
    ):
        retries_before = metrics.counter("campaign.chunk_retries").value
        _, baseline = self._run(
            smoke_context, population, tmp_path, "plain", jobs=1, fat_batch=2
        )
        _, chaotic = self._run(
            smoke_context,
            population,
            tmp_path,
            "chaos",
            jobs=1,
            fat_batch=2,
            chaos="seed=1,exc=1",
        )
        assert chaotic.results == baseline.results
        assert not chaotic.failed_chips
        assert metrics.counter("campaign.chunk_retries").value > retries_before

    def test_torn_write_is_repaired(self, smoke_context, population, tmp_path):
        _, baseline = self._run(
            smoke_context, population, tmp_path, "plain", jobs=1, fat_batch=2
        )
        chaos_engine, chaotic = self._run(
            smoke_context,
            population,
            tmp_path,
            "chaos",
            jobs=1,
            fat_batch=2,
            chaos="seed=2,torn=1",
        )
        assert chaotic.results == baseline.results
        store = CampaignStore(chaos_engine.last_report.store_dir)
        report = store.verify()
        assert report.is_clean
        assert not report.torn_tail

    def test_poison_chunk_quarantined_and_campaign_degrades(
        self, smoke_context, population, tmp_path
    ):
        chaos_engine, chaotic = self._run(
            smoke_context,
            population,
            tmp_path,
            "chaos",
            jobs=2,
            fat_batch=2,
            chaos="seed=4,poison=1",
            supervisor_config=_fast_config(max_chunk_retries=1),
        )
        assert chaotic.failed_chips
        assert chaos_engine.last_report.failed == len(chaotic.failed_chips)
        assert (
            len(chaotic.results) + len(chaotic.failed_chips) == len(population)
        )
        for record in chaotic.failed_chips:
            assert record["attempts"] == 2
            assert "ChaosError" in record["reason"]
        store = CampaignStore(chaos_engine.last_report.store_dir)
        quarantine = store.read_quarantine()
        assert len(quarantine) == 1
        assert quarantine[0]["chip_ids"] == [
            r["chip_id"] for r in chaotic.failed_chips
        ]
        assert store.verify().quarantined == len(chaotic.failed_chips)

        # A clean resume re-executes exactly the quarantined chips and
        # clears the quarantine file.
        resumed_engine, resumed = self._run(
            smoke_context, population, tmp_path, "chaos", jobs=1, fat_batch=2
        )
        assert not resumed.failed_chips
        assert len(resumed.results) == len(population)
        assert resumed_engine.last_report.skipped == len(chaotic.results)
        assert not store.quarantine_path.exists()

        # The degraded-then-repaired campaign matches an undisturbed one.
        _, baseline = self._run(
            smoke_context, population, tmp_path, "plain", jobs=1, fat_batch=2
        )
        assert resumed.results == baseline.results
