"""Backend equivalence tests: captured op graphs vs eager execution.

Three layers of guarantees are pinned down here:

* **Per-op** — every op in the IR vocabulary (im2col, stacked GEMM, bias,
  ReLU, max-pool, BatchNorm, keep-multiplier mask, SGD update) captured once
  and replayed on fresh inputs is *bit-identical* under the ``numpy``
  reference backend and ``allclose`` + deterministic under ``fused``.
* **Substrate** — the batched evaluator and trainer produce the same
  accuracies/losses/weights through a backend as eagerly (bit-identical for
  ``numpy``, allclose for ``fused``).
* **End-to-end** — a fast-preset campaign through the ``numpy`` backend
  writes a ``results.jsonl`` byte-identical to the eager campaign and shares
  its content-addressed store fingerprint.

``fused`` runs interpreted in environments without numba (the registry
degrades it gracefully), so every test here is meaningful with or without
the optional dependency.
"""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.accelerator.batched import (
    BatchedFaultEvaluator,
    BatchedFaultTrainer,
    _keep_multiplier_kernel,
)
from repro.backends import (
    BACKEND_ENV_VAR,
    BackendError,
    available_backends,
    capture_graph,
    env_backend_name,
    get_backend,
    numba_available,
    recorded,
    resolve_backend,
)
from repro.backends.fused import FusedBackend
from repro.data import make_class_template_images
from repro.nn import functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Function
from repro.observability import metrics
from repro.training import TrainingConfig

BACKENDS = ("numpy", "fused")


def _assert_backend_matches(backend_name, replayed, expected):
    """numpy must be bit-identical; fused is allclose (signed zeros differ)."""
    assert replayed.shape == expected.shape
    assert replayed.dtype == expected.dtype
    if backend_name == "numpy":
        assert replayed.tobytes() == expected.tobytes()
    else:
        np.testing.assert_allclose(replayed, expected, rtol=1e-6, atol=1e-6)


def _capture(inputs, fn):
    with capture_graph(inputs) as session:
        out = fn(*inputs)
    graph = session.finish(out)
    assert graph is not None, "chain was not captured"
    return graph


def _roundtrip(backend_name, make_inputs, fn):
    """Capture ``fn`` on one input set, replay on a second, compare to eager."""
    a = make_inputs(np.random.default_rng(11))
    b = make_inputs(np.random.default_rng(23))
    compiled = get_backend(backend_name).compile(_capture(a, fn))
    expected = fn(*[x.copy() for x in b])
    replayed = compiled([x.copy() for x in b])
    _assert_backend_matches(backend_name, replayed, expected)
    # Fixed inputs -> fixed outputs: replaying the same graph twice must be
    # byte-stable (this is the fused backend's determinism contract).
    again = compiled([x.copy() for x in b])
    assert again.tobytes() == replayed.tobytes()


# ---------------------------------------------------------------------------
# Per-op equivalence over the captured IR vocabulary
# ---------------------------------------------------------------------------


class TestPerOpEquivalence:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_relu(self, backend_name):
        _roundtrip(
            backend_name,
            lambda rng: (rng.standard_normal((5, 7)).astype(np.float32),),
            lambda x: F.relu(nn.Tensor(x)).data,
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_max_pool(self, backend_name):
        _roundtrip(
            backend_name,
            lambda rng: (rng.standard_normal((2, 3, 8, 8)).astype(np.float32),),
            lambda x: F.max_pool2d(nn.Tensor(x), (2, 2)).data,
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_im2col_t(self, backend_name):
        _roundtrip(
            backend_name,
            lambda rng: (rng.standard_normal((2, 3, 6, 6)).astype(np.float32),),
            lambda x: recorded(
                "eval.im2col",
                (x,),
                lambda a: F.im2col_t(a, (3, 3), (1, 1), (1, 1))[0],
            ),
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_stacked_gemm(self, backend_name):
        _roundtrip(
            backend_name,
            lambda rng: (
                rng.standard_normal((4, 5, 18)).astype(np.float32),
                rng.standard_normal((18, 50)).astype(np.float32),
            ),
            lambda w, c: recorded("eval.gemm", (w, c), np.matmul),
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_stacked_bias(self, backend_name):
        _roundtrip(
            backend_name,
            lambda rng: (
                rng.standard_normal((4, 5, 50)).astype(np.float32),
                rng.standard_normal((4, 5)).astype(np.float32),
            ),
            lambda g, b: recorded(
                "eval.bias", (g, b), lambda G, B: G + B[:, :, None]
            ),
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_linear_layer(self, backend_name):
        layer = nn.Linear(10, 4, rng=0)
        _roundtrip(
            backend_name,
            lambda rng: (rng.standard_normal((6, 10)).astype(np.float32),),
            lambda x: layer(nn.Tensor(x)).data,
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_batchnorm_eval(self, backend_name):
        bn = nn.BatchNorm2d(3)
        # Warm the running statistics so the eval-mode normalisation is not
        # the identity transform.
        with nn.no_grad():
            bn(nn.Tensor(np.random.default_rng(5).standard_normal((4, 3, 6, 6)).astype(np.float32)))
        bn.eval()
        _roundtrip(
            backend_name,
            lambda rng: (rng.standard_normal((4, 3, 6, 6)).astype(np.float32),),
            lambda x: bn(nn.Tensor(x)).data,
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_keep_multiplier_mask(self, backend_name):
        # The mask kernel is in-place: capture and replay must both mutate
        # their operand and the mutated values must match eager exactly.
        def fn(values, keep):
            return recorded(
                "mask.keep_multiplier", (values, keep), _keep_multiplier_kernel
            )

        rng = np.random.default_rng(3)
        a = (
            rng.standard_normal((3, 4, 4)).astype(np.float32),
            (rng.random((3, 4, 4)) > 0.2).astype(np.float32),
        )
        b_values = rng.standard_normal((3, 4, 4)).astype(np.float32)
        b_keep = (rng.random((3, 4, 4)) > 0.3).astype(np.float32)

        compiled = get_backend(backend_name).compile(_capture(a, fn))
        expected = _keep_multiplier_kernel(b_values.copy(), b_keep)
        replay_values = b_values.copy()
        replayed = compiled((replay_values, b_keep))
        _assert_backend_matches(backend_name, replayed, expected)
        # The in-place contract: the operand itself carries the result.
        assert replay_values.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_sgd_update(self, backend_name):
        # Replaying the captured update across optimizer steps must track the
        # live momentum state exactly as two eager steps would.
        rng = np.random.default_rng(7)
        initial = rng.standard_normal((6, 4)).astype(np.float32)
        g1 = rng.standard_normal((6, 4)).astype(np.float32)
        g2 = rng.standard_normal((6, 4)).astype(np.float32)

        def make_opt(data):
            param = nn.Parameter(data.copy())
            opt = SGD([param], lr=0.05, momentum=0.9, weight_decay=1e-4)
            return param, opt

        captured_param, captured_opt = make_opt(initial)
        captured_param.grad = g1.copy()
        graph = _capture(
            (captured_param.data, captured_param.grad), lambda *_: _step(captured_opt)
        )
        compiled = get_backend(backend_name).compile(graph)
        # Step 2 through the backend: same parameter array, fresh gradient.
        compiled((captured_param.data, g2.copy()))

        eager_param, eager_opt = make_opt(initial)
        for grad in (g1, g2):
            eager_param.grad = grad.copy()
            eager_opt.step()

        assert captured_param.data.tobytes() == eager_param.data.tobytes()


def _step(opt):
    opt.step()
    return opt.parameters[0].data


# ---------------------------------------------------------------------------
# Fusion lowering
# ---------------------------------------------------------------------------


class TestFusedLowering:
    def test_relu_chain_fuses_into_fewer_nodes(self):
        bias = np.random.default_rng(1).standard_normal((4, 5)).astype(np.float32)

        def chain(w, c):
            g = recorded("eval.gemm", (w, c), np.matmul)
            h = recorded("eval.bias", (g, bias), lambda G, B: G + B[:, :, None])
            return F.relu(nn.Tensor(h)).data

        rng = np.random.default_rng(2)
        a = (
            rng.standard_normal((4, 5, 18)).astype(np.float32),
            rng.standard_normal((18, 50)).astype(np.float32),
        )
        graph = _capture(a, chain)
        reference = get_backend("numpy").compile(graph)
        fused = get_backend("fused").compile(graph)
        assert len(fused.graph.nodes) < len(reference.graph.nodes)

        b = (
            rng.standard_normal((4, 5, 18)).astype(np.float32),
            rng.standard_normal((18, 50)).astype(np.float32),
        )
        np.testing.assert_allclose(
            fused(b), reference([x.copy() for x in b]), rtol=1e-6, atol=1e-6
        )

    def test_describe_names_execution_mode(self):
        assert FusedBackend(use_jit=False).describe() == "fused (interpreted)"
        expected = "fused (numba-jit)" if numba_available() else "fused (interpreted)"
        assert get_backend("fused").describe() == expected


# ---------------------------------------------------------------------------
# Substrate equivalence: batched evaluator and trainer
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def backend_bundle():
    return make_class_template_images(
        num_classes=4,
        train_per_class=16,
        test_per_class=8,
        image_size=8,
        channels=2,
        noise_std=0.3,
        shift_pixels=0,
        seed=1,
    )


def _make_cnn(bundle):
    channels = bundle.input_shape[0]
    return nn.Sequential(
        nn.Conv2d(channels, 4, 3, padding=1, bias=False, rng=0),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 8, rng=1),
        nn.BatchNorm1d(8),
        nn.ReLU(),
        nn.Linear(8, bundle.num_classes, rng=2),
    )


def _mask_sets(model_factory, num_chips=3):
    maps = [FaultMap.random(16, 16, 0.05 + 0.04 * i, seed=i) for i in range(num_chips)]
    return [model_fault_masks(model_factory(), fault_map) for fault_map in maps]


class TestEvaluatorEquivalence:
    def test_numpy_backend_bit_identical(self, backend_bundle):
        model = _make_cnn(backend_bundle)
        mask_sets = _mask_sets(lambda: _make_cnn(backend_bundle))
        batch = (
            np.random.default_rng(9)
            .standard_normal((8,) + backend_bundle.input_shape)
            .astype(np.float32)
        )

        eager = BatchedFaultEvaluator(model, mask_sets)
        replayed = BatchedFaultEvaluator(model, mask_sets, backend="numpy")

        expected_logits = eager.evaluate_logits(batch)
        replayed.evaluate_logits(batch)  # first call captures eagerly
        hits = metrics.counter("backend.graph_cache.hits", backend="numpy")
        hits_before = hits.value
        replay_logits = replayed.evaluate_logits(batch)  # second call replays
        assert hits.value == hits_before + 1
        assert replay_logits.tobytes() == expected_logits.tobytes()

        expected_acc = eager.evaluate_accuracy(backend_bundle.test, batch_size=16)
        replay_acc = replayed.evaluate_accuracy(backend_bundle.test, batch_size=16)
        assert replay_acc == expected_acc

    def test_fused_backend_allclose_and_deterministic(self, backend_bundle):
        model = _make_cnn(backend_bundle)
        mask_sets = _mask_sets(lambda: _make_cnn(backend_bundle))
        batch = (
            np.random.default_rng(9)
            .standard_normal((8,) + backend_bundle.input_shape)
            .astype(np.float32)
        )

        eager = BatchedFaultEvaluator(model, mask_sets)
        fused = BatchedFaultEvaluator(model, mask_sets, backend=get_backend("fused"))

        expected = eager.evaluate_logits(batch)
        fused.evaluate_logits(batch)  # capture
        first = fused.evaluate_logits(batch)  # replay
        second = fused.evaluate_logits(batch)
        np.testing.assert_allclose(first, expected, rtol=1e-5, atol=1e-6)
        assert first.tobytes() == second.tobytes()

        assert fused.evaluate_accuracy(
            backend_bundle.test, batch_size=16
        ) == eager.evaluate_accuracy(backend_bundle.test, batch_size=16)


def _nan_aware_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))


class TestTrainerEquivalence:
    def _run(self, bundle, backend):
        model = _make_cnn(bundle)
        trainer = BatchedFaultTrainer(
            model,
            _mask_sets(lambda: _make_cnn(bundle)),
            bundle.train,
            bundle.test,
            config=TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            backend=backend,
        )
        histories = trainer.train(1.0, eval_checkpoints=[0.5])
        states = [trainer.chip_state_dict(chip) for chip in range(3)]
        return histories, states

    def test_numpy_backend_bit_identical(self, backend_bundle):
        eager_hist, eager_states = self._run(backend_bundle, None)
        numpy_hist, numpy_states = self._run(backend_bundle, "numpy")
        for a, b in zip(eager_hist, numpy_hist):
            assert a.accuracies == b.accuracies
            assert _nan_aware_equal(
                [r.train_loss for r in a.records], [r.train_loss for r in b.records]
            )
        for sa, sb in zip(eager_states, numpy_states):
            assert sa.keys() == sb.keys()
            for key in sa:
                assert sa[key].tobytes() == sb[key].tobytes()

    def test_fused_backend_allclose_and_deterministic(self, backend_bundle):
        _, eager_states = self._run(backend_bundle, None)
        fused_hist, fused_states = self._run(backend_bundle, get_backend("fused"))
        for sa, sb in zip(eager_states, fused_states):
            for key in sa:
                np.testing.assert_allclose(
                    sa[key].astype(np.float64),
                    sb[key].astype(np.float64),
                    rtol=1e-4,
                    atol=1e-5,
                )
        fused_hist2, fused_states2 = self._run(backend_bundle, get_backend("fused"))
        for a, b in zip(fused_hist, fused_hist2):
            assert a.accuracies == b.accuracies
        for sa, sb in zip(fused_states, fused_states2):
            for key in sa:
                assert sa[key].tobytes() == sb[key].tobytes()


# ---------------------------------------------------------------------------
# Registry, resolution and typed errors
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"numpy", "fused"} <= set(available_backends())

    def test_unknown_backend_raises_typed_error(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("bogus")

    def test_resolve_none_is_eager(self):
        assert resolve_backend(None) is None

    def test_resolve_numpy(self):
        assert resolve_backend("numpy").name == "numpy"

    def test_fused_falls_back_to_numpy_without_numba(self):
        if numba_available():
            pytest.skip("numba installed: fused resolves to the JIT backend")
        assert resolve_backend("fused").name == "numpy"

    def test_env_backend_name(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert env_backend_name() is None
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert env_backend_name() == "numpy"


class _PickyFunction(Function):
    capture_name = "picky"

    def forward(self, x):
        assert x.ndim == 2, "expected a 2-D operand"
        return x * 2

    def backward(self, grad_output):
        return (grad_output,)


class TestTypedErrors:
    def test_function_apply_raises_backend_error(self):
        with pytest.raises(BackendError) as excinfo:
            _PickyFunction.apply(nn.Tensor(np.ones(3, dtype=np.float32)))
        assert excinfo.value.op == "picky"
        assert "(3,)/float32" in str(excinfo.value)

    def test_signature_mismatch_raises_backend_error(self):
        x = np.ones((2, 3), dtype=np.float32)
        compiled = get_backend("numpy").compile(
            _capture((x,), lambda a: F.relu(nn.Tensor(a)).data)
        )
        with pytest.raises(BackendError, match="captured for"):
            compiled((np.ones((2, 3), dtype=np.float64),))

    def test_recorded_non_array_output_rejected(self):
        x = np.ones(4, dtype=np.float32)
        with pytest.raises(BackendError, match="expected ndarray"):
            with capture_graph((x,)):
                recorded("bad.op", (x,), lambda a: float(a.sum()))


# ---------------------------------------------------------------------------
# End-to-end: fast-preset campaign byte-identity
# ---------------------------------------------------------------------------


class TestCampaignByteIdentity:
    def test_numpy_backend_results_match_eager(self, tmp_path):
        from repro.campaign import CampaignEngine
        from repro.core.selection import FixedEpochPolicy
        from repro.experiments import ExperimentContext, build_population
        from repro.experiments.presets import fast_preset

        context = ExperimentContext.from_preset(fast_preset())
        population = build_population(context, num_chips=4)

        def run(backend, base):
            base.mkdir()
            engine = CampaignEngine(
                context, store_base=base, backend=backend, fat_batch=4
            )
            engine.run(population, FixedEpochPolicy(0.25))
            store_dir = next(base.iterdir())
            return store_dir.name, (store_dir / "results.jsonl").read_bytes()

        eager_fp, eager_results = run(None, tmp_path / "eager")
        numpy_fp, numpy_results = run("numpy", tmp_path / "numpy")
        # The numpy replay is bit-identical, so it shares the eager campaign's
        # content-addressed store fingerprint and its results byte for byte.
        assert numpy_fp == eager_fp
        assert numpy_results == eager_results
