"""Tests for FaultMap construction, statistics and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import FaultMap


class TestConstruction:
    def test_none_is_fault_free(self):
        fm = FaultMap.none(8, 16)
        assert fm.shape == (8, 16)
        assert fm.num_faulty == 0
        assert fm.fault_rate == 0.0

    def test_from_array_and_indices(self):
        fm_array = FaultMap.from_array([[True, False], [False, True]])
        fm_indices = FaultMap.from_indices(2, 2, [(0, 0), (1, 1)])
        assert fm_array == fm_indices
        assert fm_array.num_faulty == 2

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            FaultMap.from_indices(2, 2, [(5, 0)])

    def test_requires_2d_nonempty(self):
        with pytest.raises(ValueError):
            FaultMap(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            FaultMap(np.zeros((0, 3), dtype=bool))

    def test_random_exact_count(self):
        fm = FaultMap.random(32, 32, 0.13, seed=0)
        assert fm.num_faulty == round(0.13 * 32 * 32)
        assert fm.fault_rate == pytest.approx(0.13, abs=1e-3)

    def test_random_bernoulli_mode(self):
        fm = FaultMap.random(64, 64, 0.2, seed=0, exact=False)
        assert 0.1 < fm.fault_rate < 0.3

    def test_random_extremes(self):
        assert FaultMap.random(8, 8, 0.0, seed=0).num_faulty == 0
        assert FaultMap.random(8, 8, 1.0, seed=0).num_faulty == 64

    def test_random_invalid_rate(self):
        with pytest.raises(ValueError):
            FaultMap.random(4, 4, 1.5)
        with pytest.raises(ValueError):
            FaultMap.random(0, 4, 0.5)

    def test_random_determinism(self):
        a = FaultMap.random(16, 16, 0.2, seed=42)
        b = FaultMap.random(16, 16, 0.2, seed=42)
        c = FaultMap.random(16, 16, 0.2, seed=43)
        assert a == b
        assert a != c

    def test_clustered_reaches_target_count(self):
        fm = FaultMap.clustered(32, 32, 0.1, cluster_size=9, seed=0)
        assert fm.num_faulty == round(0.1 * 1024)

    def test_faulty_rows_and_columns(self):
        rows = FaultMap.faulty_rows(4, 6, [1, 3])
        assert rows.num_faulty == 12
        assert set(rows.rows_with_faults().tolist()) == {1, 3}
        cols = FaultMap.faulty_columns(4, 6, [0])
        assert cols.num_faulty == 4
        assert set(cols.columns_with_faults().tolist()) == {0}


class TestStatisticsAndViews:
    def test_counts(self):
        fm = FaultMap.from_indices(3, 3, [(0, 0), (0, 1), (2, 1)])
        np.testing.assert_array_equal(fm.row_fault_counts(), [2, 0, 1])
        np.testing.assert_array_equal(fm.column_fault_counts(), [1, 2, 0])
        assert fm.faulty_indices().shape == (3, 2)

    def test_array_is_read_only(self):
        fm = FaultMap.none(4, 4)
        with pytest.raises(ValueError):
            fm.array[0, 0] = True

    def test_permuted_columns(self):
        fm = FaultMap.from_indices(2, 3, [(0, 0)])
        permuted = fm.permuted_columns([2, 0, 1])
        # Logical column 0 now reads physical column 2 (fault stays at its column).
        assert permuted.array[0, 1]
        assert not permuted.array[0, 0]
        with pytest.raises(ValueError):
            fm.permuted_columns([0, 0, 1])

    def test_union(self):
        a = FaultMap.from_indices(2, 2, [(0, 0)])
        b = FaultMap.from_indices(2, 2, [(1, 1)])
        assert a.union(b).num_faulty == 2
        with pytest.raises(ValueError):
            a.union(FaultMap.none(3, 3))

    def test_equality_and_hash(self):
        a = FaultMap.from_indices(2, 2, [(0, 1)])
        b = FaultMap.from_indices(2, 2, [(0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != "not a fault map"

    def test_repr(self):
        assert "FaultMap" in repr(FaultMap.none(4, 4))


class TestSerialization:
    def test_round_trip(self):
        fm = FaultMap.random(16, 8, 0.25, seed=3)
        restored = FaultMap.from_dict(fm.to_dict())
        assert restored == fm


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=64),
    cols=st.integers(min_value=1, max_value=64),
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_fault_map_invariants(rows, cols, rate, seed):
    """Property: exact sampling produces round(rate*PEs) faults within bounds."""
    fm = FaultMap.random(rows, cols, rate, seed=seed)
    assert fm.shape == (rows, cols)
    assert fm.num_faulty == round(rate * rows * cols)
    assert 0.0 <= fm.fault_rate <= 1.0
    assert fm.num_faulty == fm.array.sum()


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=16),
    cols=st.integers(min_value=2, max_value=16),
    rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_column_permutation_preserves_fault_count(rows, cols, rate, seed):
    """Property: permuting columns never changes the number of faults."""
    fm = FaultMap.random(rows, cols, rate, seed=seed)
    permutation = np.random.default_rng(seed).permutation(cols)
    assert fm.permuted_columns(permutation).num_faulty == fm.num_faulty
