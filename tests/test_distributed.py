"""Distributed campaign engine: framing, handshake, reassignment, bit-identity.

Everything here runs on localhost sockets: raw-socket protocol tests against a
live :class:`~repro.campaign.scheduler.CampaignCoordinator`, and end-to-end
campaigns where real forked socket workers (and one deliberately treacherous
fake) execute chunks.  The invariant under test is the one the store relies
on: a distributed campaign commits rows *byte-identical* to a serial run of
the same population, no matter which worker ran which chunk or how many died
along the way.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
import threading
import time

import pytest

from repro.campaign import CampaignEngine
from repro.campaign.scheduler import (
    CampaignCoordinator,
    SchedulerConfig,
    WorkerRejected,
    run_worker,
)
from repro.campaign.store import STORE_FORMAT_VERSION
from repro.campaign.transport import (
    MSG_CAMPAIGN,
    MSG_CHUNK,
    MSG_CLAIM,
    MSG_READY,
    MSG_REJECT,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    encode_frame,
    find_free_port,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
    validate_hello,
    worker_hello,
)
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy


@pytest.fixture(scope="module")
def population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=6,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=321,
    )


def _fast_scheduler_config(**overrides):
    base = dict(poll_interval=0.01, no_worker_timeout=120.0, shard_grace=10.0)
    base.update(overrides)
    return SchedulerConfig(**base)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        message = {"type": "result", "values": [1.5, -0.25], "text": "αβ"}
        frames = FrameDecoder().feed(encode_frame(message))
        assert frames == [message]

    def test_byte_by_byte_feed(self):
        """Arbitrary TCP segmentation: one byte per feed still decodes."""
        message = {"type": "chunk", "jobs": list(range(50))}
        data = encode_frame(message)
        decoder = FrameDecoder()
        collected = []
        for i in range(len(data)):
            collected.extend(decoder.feed(data[i : i + 1]))
        assert collected == [message]

    def test_many_frames_in_one_feed(self):
        messages = [{"type": "heartbeat", "n": i} for i in range(7)]
        blob = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(blob) == messages

    def test_split_across_header_boundary(self):
        """A feed that ends inside the 4-byte header must not lose bytes."""
        message = {"type": "claim"}
        data = encode_frame(message)
        decoder = FrameDecoder()
        assert decoder.feed(data[:2]) == []
        assert decoder.feed(data[2:]) == [message]

    def test_oversized_announced_frame_rejected(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        header = struct.pack(">I", 65)
        with pytest.raises(FrameError, match="cap"):
            decoder.feed(header)

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * 100}, max_frame_bytes=64)

    def test_non_object_payload_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(FrameError, match="not an object"):
            FrameDecoder().feed(struct.pack(">I", len(payload)) + payload)

    def test_socketpair_partial_reads(self):
        """recv_frame reassembles a frame trickled through a real socket."""
        left, right = socket.socketpair()
        try:
            message = {"type": "result", "rows": [{"chip": i} for i in range(20)]}
            data = encode_frame(message)

            def trickle():
                for i in range(0, len(data), 3):
                    left.sendall(data[i : i + 3])
                    time.sleep(0.001)

            thread = threading.Thread(target=trickle)
            thread.start()
            assert recv_frame(right) == message
            thread.join()
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame({"type": "claim"})[:5])
            left.close()
            with pytest.raises(FrameError, match="closed"):
                recv_frame(right)
        finally:
            right.close()


class TestAddresses:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("127.0.0.1:7000", ("127.0.0.1", 7000)),
            ("example.org:80", ("example.org", 80)),
            ("9000", ("127.0.0.1", 9000)),
            (":9000", ("127.0.0.1", 9000)),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_address(spec) == expected

    @pytest.mark.parametrize("bad", ["", "host:", "host:notaport", "host:70000"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_format_round_trip(self):
        assert parse_address(format_address(("10.0.0.1", 1234))) == ("10.0.0.1", 1234)

    def test_find_free_port_is_bindable(self):
        port = find_free_port()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind(("127.0.0.1", port))
        finally:
            sock.close()


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------


class TestValidateHello:
    def _hello(self, **overrides):
        hello = worker_hello(backends=["numpy"], host="w", pid=1)
        hello.update(overrides)
        return hello

    def test_accepts_matching_hello(self):
        assert validate_hello(self._hello(), None, "smoke") is None

    def test_rejects_wrong_protocol(self):
        reason = validate_hello(self._hello(protocol=999), None, "smoke")
        assert reason is not None and "protocol" in reason

    def test_rejects_wrong_store_format(self):
        reason = validate_hello(
            self._hello(store_format=STORE_FORMAT_VERSION + 1), None, "smoke"
        )
        assert reason is not None and "store format" in reason

    def test_rejects_missing_backend(self):
        reason = validate_hello(self._hello(), "fused", "smoke")
        assert reason is not None and "fused" in reason

    def test_rejects_preset_mismatch(self):
        reason = validate_hello(self._hello(preset="fast"), None, "smoke")
        assert reason is not None and "preset" in reason

    def test_accepts_declared_matching_preset(self):
        assert validate_hello(self._hello(preset="smoke"), None, "smoke") is None


class TestCoordinatorHandshake:
    """Raw-socket clients against a live coordinator's accept loop."""

    @pytest.fixture()
    def coordinator(self, smoke_context):
        coordinator = CampaignCoordinator(
            smoke_context.preset,
            listen=("127.0.0.1", 0),
            config=_fast_scheduler_config(),
        )
        yield coordinator
        coordinator.close()

    def _handshake(self, coordinator, hello):
        sock = socket.create_connection(coordinator.address, timeout=10.0)
        sock.settimeout(10.0)
        try:
            send_frame(sock, hello)
            return recv_frame(sock)
        finally:
            sock.close()

    def test_mismatched_protocol_is_rejected(self, coordinator):
        hello = worker_hello(backends=["numpy"], host="w", pid=1)
        hello["protocol"] = PROTOCOL_VERSION + 10
        reply = self._handshake(coordinator, hello)
        assert reply["type"] == MSG_REJECT
        assert "protocol" in reply["reason"]

    def test_mismatched_store_format_is_rejected(self, coordinator):
        hello = worker_hello(backends=["numpy"], host="w", pid=1)
        hello["store_format"] = STORE_FORMAT_VERSION + 1
        reply = self._handshake(coordinator, hello)
        assert reply["type"] == MSG_REJECT
        assert "store format" in reply["reason"]

    def test_welcome_ships_preset_and_knobs(self, coordinator, smoke_context):
        hello = worker_hello(backends=["numpy"], host="w", pid=1)
        reply = self._handshake(coordinator, hello)
        assert reply["type"] == MSG_WELCOME
        assert reply["protocol"] == PROTOCOL_VERSION
        assert reply["preset_name"] == smoke_context.preset.name
        assert reply["preset"]["name"] == smoke_context.preset.name

    def test_run_worker_expect_preset_mismatch_raises(self, coordinator):
        with pytest.raises(WorkerRejected, match="preset"):
            run_worker(
                join=coordinator.address,
                expect_preset="definitely-not-this-preset",
                connect_timeout=10.0,
            )


# ---------------------------------------------------------------------------
# End-to-end distributed campaigns
# ---------------------------------------------------------------------------


def _run_serial(context, population, store_base):
    engine = CampaignEngine(
        context, jobs=1, store_base=store_base, fat_batch=2, progress=False
    )
    return engine.run(population, FixedEpochPolicy(0.25))


def _store_bytes(store_base):
    stores = list(store_base.glob("*/results.jsonl"))
    assert len(stores) == 1
    return stores[0].read_bytes()


def _joining_worker_process(address, max_chunks=None):
    """Forked socket worker dialing ``address`` (module-level: picklable)."""
    from repro.campaign.scheduler import run_worker as worker

    try:
        worker(join=address, connect_timeout=60.0, max_chunks=max_chunks)
    except Exception:  # noqa: BLE001 - the parent asserts on campaign state
        pass


def _listening_worker_process(address):
    from repro.campaign.scheduler import run_worker as worker

    try:
        worker(listen=address, connect_timeout=60.0)
    except Exception:  # noqa: BLE001
        pass


def _mp_context():
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


class TestDistributedCampaigns:
    def test_distributed_matches_serial_bit_for_bit(
        self, smoke_context, population, tmp_path
    ):
        serial = _run_serial(smoke_context, population, tmp_path / "serial")

        with CampaignEngine(
            smoke_context,
            jobs=2,
            store_base=tmp_path / "dist",
            fat_batch=2,
            progress=False,
            listen=("127.0.0.1", 0),
            scheduler_config=_fast_scheduler_config(),
        ) as engine:
            distributed = engine.run(population, FixedEpochPolicy(0.25))
            report = engine.last_report

        assert report.failed == 0
        assert report.executed == len(population)
        assert [r.to_dict() for r in distributed.results] == [
            r.to_dict() for r in serial.results
        ]
        assert _store_bytes(tmp_path / "dist") == _store_bytes(tmp_path / "serial")

    def test_distributed_store_resumes_serially_with_zero_reexecution(
        self, smoke_context, population, tmp_path
    ):
        with CampaignEngine(
            smoke_context,
            jobs=2,
            store_base=tmp_path / "dist",
            fat_batch=2,
            progress=False,
            listen=("127.0.0.1", 0),
            scheduler_config=_fast_scheduler_config(),
        ) as engine:
            engine.run(population, FixedEpochPolicy(0.25))
            fingerprint = engine.last_report.fingerprint

        resumed_engine = CampaignEngine(
            smoke_context, jobs=1, store_base=tmp_path / "dist", progress=False
        )
        resumed = resumed_engine.run(population, FixedEpochPolicy(0.25))
        assert resumed_engine.last_report.executed == 0
        assert resumed_engine.last_report.skipped == len(population)
        assert resumed_engine.last_report.fingerprint == fingerprint
        assert len(resumed.results) == len(population)

    def test_worker_dropping_after_one_chunk_does_not_fail_campaign(
        self, smoke_context, population, tmp_path
    ):
        """A worker that vanishes SIGKILL-style mid-campaign loses nothing."""
        serial = _run_serial(smoke_context, population, tmp_path / "serial")

        engine = CampaignEngine(
            smoke_context,
            jobs=0,
            store_base=tmp_path / "dist",
            fat_batch=1,
            progress=False,
            listen=("127.0.0.1", 0),
            scheduler_config=_fast_scheduler_config(),
            max_chunk_retries=4,
        )
        ctx = _mp_context()
        flaky = ctx.Process(
            target=_joining_worker_process,
            args=(engine.listen_address, 1),
            daemon=True,
        )
        steady = ctx.Process(
            target=_joining_worker_process,
            args=(engine.listen_address, None),
            daemon=True,
        )
        flaky.start()
        steady.start()
        try:
            distributed = engine.run(population, FixedEpochPolicy(0.25))
            report = engine.last_report
        finally:
            engine.close()
            for proc in (flaky, steady):
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()

        assert report.failed == 0
        assert report.executed == len(population)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(tmp_path / "serial")
        assert [r.to_dict() for r in distributed.results] == [
            r.to_dict() for r in serial.results
        ]

    def test_disconnect_with_chunk_in_flight_is_reassigned(
        self, smoke_context, population, tmp_path
    ):
        """A fake worker claims a chunk and dies holding it; the ledger
        reassigns that exact chunk to the surviving real worker."""
        engine = CampaignEngine(
            smoke_context,
            jobs=1,
            store_base=tmp_path / "dist",
            fat_batch=1,
            progress=False,
            listen=("127.0.0.1", 0),
            scheduler_config=_fast_scheduler_config(),
            max_chunk_retries=4,
        )
        stolen = {}

        def treacherous_worker():
            sock = socket.create_connection(engine.listen_address, timeout=30.0)
            sock.settimeout(30.0)
            try:
                send_frame(sock, worker_hello(backends=["numpy"], host="fake", pid=0))
                welcome = recv_frame(sock)
                assert welcome["type"] == MSG_WELCOME
                send_frame(sock, {"type": MSG_READY})
                while True:
                    message = recv_frame(sock)
                    if message is None:
                        return
                    if message.get("type") == MSG_CAMPAIGN:
                        send_frame(
                            sock,
                            {
                                "type": MSG_CLAIM,
                                "campaign_id": message["campaign_id"],
                            },
                        )
                    elif message.get("type") == MSG_CHUNK:
                        stolen["chunk_index"] = message["chunk_index"]
                        return  # die abruptly, chunk in flight
            finally:
                sock.close()

        thief = threading.Thread(target=treacherous_worker, daemon=True)
        thief.start()
        try:
            # Let the thief finish its handshake before chunks start flowing,
            # so it reliably claims (and then drops) one chunk.
            deadline = time.time() + 30
            while engine._coordinator.worker_hint() < 1 and time.time() < deadline:
                time.sleep(0.01)
            result = engine.run(population, FixedEpochPolicy(0.25))
            report = engine.last_report
        finally:
            engine.close()
            thief.join(timeout=30)

        assert stolen, "the fake worker never received a chunk"
        assert report.failed == 0
        assert report.executed == len(population)
        assert len(result.results) == len(population)

    def test_coordinator_dials_listening_worker(
        self, smoke_context, population, tmp_path
    ):
        """The --workers direction: worker listens, coordinator dials out."""
        serial = _run_serial(smoke_context, population, tmp_path / "serial")

        port = find_free_port()
        ctx = _mp_context()
        worker = ctx.Process(
            target=_listening_worker_process,
            args=(("127.0.0.1", port),),
            daemon=True,
        )
        worker.start()
        engine = CampaignEngine(
            smoke_context,
            jobs=0,
            store_base=tmp_path / "dist",
            fat_batch=2,
            progress=False,
            workers=[("127.0.0.1", port)],
            scheduler_config=_fast_scheduler_config(),
        )
        try:
            engine.run(population, FixedEpochPolicy(0.25))
            report = engine.last_report
        finally:
            engine.close()
            worker.join(timeout=30)
            if worker.is_alive():
                worker.terminate()

        assert report.failed == 0
        assert report.executed == len(population)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(tmp_path / "serial")
        assert serial.num_chips == len(population)
