"""Tests for optimizers, LR schedulers and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, CosineAnnealingLR, MultiStepLR, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_loss(param):
    """Simple convex objective (param - 3)^2 summed."""
    diff = param - 3.0
    return (diff * diff).sum()


def run_optimizer(optimizer_factory, steps=200):
    param = Parameter(np.zeros(4, dtype=np.float32))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        loss = quadratic_loss(param)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = run_optimizer(lambda params: SGD(params, lr=0.1))
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-3)

    def test_momentum_converges(self):
        final = run_optimizer(lambda params: SGD(params, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-3)

    def test_nesterov(self):
        final = run_optimizer(lambda params: SGD(params, lr=0.05, momentum=0.9, nesterov=True))
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        no_decay = run_optimizer(lambda params: SGD(params, lr=0.1))
        decay = run_optimizer(lambda params: SGD(params, lr=0.1, weight_decay=0.5))
        assert np.all(decay < no_decay)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no gradient yet
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_validation(self):
        param = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=-0.5)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = run_optimizer(lambda params: Adam(params, lr=0.1), steps=400)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-2)

    def test_adamw_decoupled_decay(self):
        adam = run_optimizer(lambda params: Adam(params, lr=0.1, weight_decay=0.1), steps=300)
        adamw = run_optimizer(lambda params: AdamW(params, lr=0.1, weight_decay=0.1), steps=300)
        # Both shrink towards < 3; they must not diverge and must differ.
        assert np.all(adam < 3.0) and np.all(adamw < 3.0)
        assert not np.allclose(adam, adamw)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.5, 0.9))

    def test_step_count_tracked(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = Adam([param], lr=0.01)
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
        optimizer.step()
        assert optimizer.step_count == 2


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.ones(1, dtype=np.float32))], lr=1.0)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25])

    def test_cosine_lr_endpoints(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-9)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_configs(self):
        optimizer = self._optimizer()
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, t_max=0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        params = [Parameter(np.ones(3, dtype=np.float32)) for _ in range(2)]
        for p in params:
            p.grad = np.full(3, 10.0, dtype=np.float32)
        norm_before = clip_grad_norm(params, max_norm=1.0)
        assert norm_before == pytest.approx(np.sqrt(6 * 100), rel=1e-5)
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert total == pytest.approx(1.0, rel=1e-4)

    def test_leaves_small_gradients_untouched(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        param.grad = np.array([0.1, 0.1], dtype=np.float32)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])

    def test_no_gradients_returns_zero(self):
        assert clip_grad_norm([Parameter(np.ones(2))], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        param.grad = np.ones(2, dtype=np.float32)
        with pytest.raises(ValueError):
            clip_grad_norm([param], max_norm=0.0)
