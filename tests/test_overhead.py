"""Tests for the retraining-overhead accounting model."""

import pytest

from repro.core.overhead import (
    CampaignOverhead,
    RetrainingCostModel,
    campaign_overhead,
    overhead_saving,
)

from tests.test_reporting_analysis import make_campaign


class TestCostModel:
    def test_defaults_valid(self):
        model = RetrainingCostModel()
        assert model.seconds_per_epoch > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrainingCostModel(seconds_per_epoch=-1)
        with pytest.raises(ValueError):
            RetrainingCostModel(evaluation_seconds=-1)


class TestCampaignOverhead:
    def test_conversion(self):
        campaign = make_campaign(epochs=(1.0, 3.0))  # 4 epochs total, 2 chips
        cost_model = RetrainingCostModel(
            seconds_per_epoch=10.0, joules_per_epoch=100.0,
            evaluation_seconds=1.0, evaluation_joules=5.0,
        )
        overhead = campaign_overhead(campaign, cost_model)
        assert overhead.total_epochs == pytest.approx(4.0)
        assert overhead.retraining_seconds == pytest.approx(40.0)
        assert overhead.evaluation_seconds == pytest.approx(2.0)
        assert overhead.total_seconds == pytest.approx(42.0)
        assert overhead.total_hours == pytest.approx(42.0 / 3600.0)
        assert overhead.total_joules == pytest.approx(4 * 100.0 + 2 * 5.0)
        assert overhead.total_kwh == pytest.approx(overhead.total_joules / 3.6e6)
        assert overhead.seconds_per_chip == pytest.approx(21.0)
        assert overhead.as_dict()["policy"] == campaign.policy_name

    def test_extra_evaluations_counted(self):
        campaign = make_campaign(epochs=(1.0, 1.0))
        cheap = campaign_overhead(campaign, evaluations_per_chip=1)
        costly = campaign_overhead(campaign, evaluations_per_chip=5)
        assert costly.total_evaluations == 10
        assert costly.total_seconds > cheap.total_seconds
        with pytest.raises(ValueError):
            campaign_overhead(campaign, evaluations_per_chip=-1)

    def test_overhead_saving(self):
        baseline = campaign_overhead(make_campaign("fixed", epochs=(2.0, 2.0)))
        proposed = campaign_overhead(make_campaign("reduce", epochs=(0.5, 1.5)))
        saving = overhead_saving(proposed, baseline)
        assert saving["epochs_saving"] == pytest.approx(0.5)
        assert 0.0 < saving["time_saving"] < 1.0
        assert 0.0 < saving["energy_saving"] < 1.0

    def test_saving_with_zero_baseline(self):
        zero = campaign_overhead(
            make_campaign("none", epochs=(0.0, 0.0)),
            RetrainingCostModel(seconds_per_epoch=0, joules_per_epoch=0,
                                evaluation_seconds=0, evaluation_joules=0),
        )
        saving = overhead_saving(zero, zero)
        assert saving["epochs_saving"] == 0.0
