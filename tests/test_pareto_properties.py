"""Property tests for the Pareto-front helpers against brute-force references.

``pareto_mask`` and ``hypervolume_2d`` back the Fig. 3f analysis; these tests
check them on randomized point clouds (including duplicate points and axis
ties) against direct O(n^2) / rectangle-sweep reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pareto import dominates, hypervolume_2d, pareto_front, pareto_mask


def _brute_force_mask(costs, qualities):
    n = len(costs)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(costs[j], qualities[j], costs[i], qualities[i]):
                mask[i] = False
                break
    return mask


def _brute_force_hypervolume(costs, qualities, ref_cost, ref_quality, resolution=400):
    """Monte-Carlo-free reference: rasterise the dominated region on a grid."""
    points = [
        (c, q)
        for c, q in zip(costs, qualities)
        if c <= ref_cost and q >= ref_quality
    ]
    if not points:
        return 0.0
    start = min(c for c, _ in points)
    width = (ref_cost - start) / resolution
    area = 0.0
    for index in range(resolution):
        x_mid = start + (index + 0.5) * width
        best = max((q for c, q in points if c <= x_mid), default=ref_quality)
        area += width * max(0.0, best - ref_quality)
    return area


class TestParetoMaskProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_clouds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        costs = rng.uniform(0, 5, size=n)
        qualities = rng.uniform(0, 1, size=n)
        # Inject duplicates and ties half the time.
        if n > 4:
            costs[1] = costs[0]
            qualities[1] = qualities[0]  # exact duplicate
            costs[2] = costs[3]  # cost tie, different quality
        mask = pareto_mask(costs, qualities)
        np.testing.assert_array_equal(mask, _brute_force_mask(costs, qualities))

    def test_duplicate_points_all_survive_or_all_die(self):
        costs = [1.0, 1.0, 2.0]
        qualities = [0.8, 0.8, 0.5]
        mask = pareto_mask(costs, qualities)
        # Exact duplicates do not dominate each other (no strict inequality),
        # so both copies stay on the front; the dominated point dies.
        assert mask.tolist() == [True, True, False]

    def test_empty_input(self):
        mask = pareto_mask([], [])
        assert mask.shape == (0,)
        assert pareto_front([], "cost", "quality") == []

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            pareto_mask([1.0, 2.0], [0.5])

    def test_front_members_are_mutually_nondominating(self):
        rng = np.random.default_rng(99)
        costs = rng.uniform(0, 5, size=30)
        qualities = rng.uniform(0, 1, size=30)
        mask = pareto_mask(costs, qualities)
        front = [(c, q) for c, q, m in zip(costs, qualities, mask) if m]
        for i, (ci, qi) in enumerate(front):
            for j, (cj, qj) in enumerate(front):
                if i != j:
                    assert not dominates(cj, qj, ci, qi)


class TestHypervolumeProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_rasterised_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 20))
        costs = rng.uniform(0, 4, size=n)
        qualities = rng.uniform(0, 1, size=n)
        ref_cost = 4.0
        exact = hypervolume_2d(costs, qualities, reference_cost=ref_cost)
        approx = _brute_force_hypervolume(costs, qualities, ref_cost, 0.0, resolution=2000)
        assert exact == pytest.approx(approx, abs=2e-2 * ref_cost)

    def test_empty_and_out_of_range_fronts_have_zero_volume(self):
        assert hypervolume_2d([], [], reference_cost=1.0) == 0.0
        # Every point beyond the reference cost or below reference quality.
        assert hypervolume_2d([5.0], [0.9], reference_cost=1.0) == 0.0
        assert hypervolume_2d([0.5], [0.1], reference_cost=1.0, reference_quality=0.5) == 0.0

    def test_single_point_rectangle(self):
        assert hypervolume_2d([1.0], [0.75], reference_cost=3.0) == pytest.approx(2.0 * 0.75)

    def test_duplicate_points_do_not_double_count(self):
        single = hypervolume_2d([1.0], [0.75], reference_cost=3.0)
        doubled = hypervolume_2d([1.0, 1.0], [0.75, 0.75], reference_cost=3.0)
        assert doubled == pytest.approx(single)

    def test_monotone_in_added_points(self):
        rng = np.random.default_rng(7)
        costs = list(rng.uniform(0, 3, size=10))
        qualities = list(rng.uniform(0, 1, size=10))
        base = hypervolume_2d(costs, qualities, reference_cost=3.0)
        grown = hypervolume_2d(costs + [0.1], qualities + [0.99], reference_cost=3.0)
        assert grown >= base
