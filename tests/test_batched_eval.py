"""Exact-equivalence tests for the batched multi-chip evaluator.

The contract of :class:`~repro.accelerator.batched.BatchedFaultEvaluator` is
that evaluating B chips in one batched sweep returns exactly what B serial
``apply masks -> evaluate_accuracy`` passes return.  Logits are compared to
float32 ``atol=1e-6`` (the shared-prefix wide GEMM may differ from the serial
2-D GEMM within float32 rounding on BLAS builds with width-dependent kernel
selection; on the build used in development they are bit-identical) and the
derived accuracies must match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.accelerator import (
    BatchedFaultEvaluator,
    FaultMap,
    evaluate_chip_accuracies,
    model_fault_masks,
)
from repro.data.dataloader import DataLoader
from repro.models import MLP
from repro.training import apply_weight_masks, evaluate_accuracy


def _serial_accuracies(model, pretrained, mask_sets, dataset):
    accuracies = []
    for masks in mask_sets:
        model.load_state_dict(pretrained)
        apply_weight_masks(model, masks)
        accuracies.append(evaluate_accuracy(model, dataset))
    model.load_state_dict(pretrained)
    return accuracies


def _serial_logits(model, pretrained, masks, inputs):
    model.load_state_dict(pretrained)
    apply_weight_masks(model, masks)
    model.eval()
    with nn.no_grad():
        logits = model(inputs).data.copy()
    model.load_state_dict(pretrained)
    return logits


def _small_cnn(image_bundle):
    channels = image_bundle.input_shape[0]
    return nn.Sequential(
        nn.Conv2d(channels, 4, 3, padding=1, rng=0),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 6, 3, padding=1, rng=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 2 * 2, image_bundle.num_classes, rng=2),
    )


@pytest.fixture
def conv_setup(image_bundle):
    model = _small_cnn(image_bundle)
    pretrained = model.state_dict()
    maps = [FaultMap.random(16, 16, 0.05 + 0.05 * i, seed=i) for i in range(6)]
    mask_sets = [model_fault_masks(model, fault_map) for fault_map in maps]
    return model, pretrained, maps, mask_sets


class TestBatchedEquivalence:
    def test_accuracies_match_serial_exactly(self, conv_setup, image_bundle):
        model, pretrained, _, mask_sets = conv_setup
        serial = _serial_accuracies(model, pretrained, mask_sets, image_bundle.test)
        evaluator = BatchedFaultEvaluator(model, mask_sets)
        batched = evaluator.evaluate_accuracy(image_bundle.test)
        assert batched == serial

    def test_logits_match_serial(self, conv_setup, image_bundle):
        model, pretrained, _, mask_sets = conv_setup
        inputs, _ = next(iter(DataLoader(image_bundle.test, batch_size=16)))
        evaluator = BatchedFaultEvaluator(model, mask_sets)
        batched = evaluator.evaluate_logits(inputs)
        assert batched.shape[0] == len(mask_sets)
        for index, masks in enumerate(mask_sets):
            serial = _serial_logits(model, pretrained, masks, inputs)
            np.testing.assert_allclose(batched[index], serial, rtol=0.0, atol=1e-6)

    def test_from_fault_maps_matches_mask_sets(self, conv_setup, image_bundle):
        model, _, maps, mask_sets = conv_setup
        by_masks = BatchedFaultEvaluator(model, mask_sets).evaluate_accuracy(image_bundle.test)
        by_maps = BatchedFaultEvaluator.from_fault_maps(model, maps).evaluate_accuracy(
            image_bundle.test
        )
        assert by_maps == by_masks

    def test_chip_chunking_is_transparent(self, conv_setup, image_bundle):
        model, _, _, mask_sets = conv_setup
        full = BatchedFaultEvaluator(model, mask_sets).evaluate_accuracy(image_bundle.test)
        for chunk in (1, 2, 4, len(mask_sets) + 3):
            chunked = evaluate_chip_accuracies(
                model, image_bundle.test, mask_sets, chip_chunk=chunk
            )
            assert chunked == full

    def test_mlp_first_linear_shared_prefix(self, blob_bundle):
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(16, 12), seed=1)
        pretrained = model.state_dict()
        maps = [FaultMap.random(8, 8, 0.1 + 0.1 * i, seed=10 + i) for i in range(4)]
        mask_sets = [model_fault_masks(model, fault_map) for fault_map in maps]
        serial = _serial_accuracies(model, pretrained, mask_sets, blob_bundle.test)
        batched = BatchedFaultEvaluator(model, mask_sets).evaluate_accuracy(blob_bundle.test)
        assert batched == serial

    def test_model_state_is_untouched(self, conv_setup, image_bundle):
        model, pretrained, _, mask_sets = conv_setup
        was_training = model.training
        BatchedFaultEvaluator(model, mask_sets).evaluate_accuracy(image_bundle.test)
        assert model.training == was_training
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, pretrained[name])
        # The patched forwards must have been removed again.
        for _, module in model.named_modules():
            assert "forward" not in module.__dict__


class TestLoweringCache:
    def test_shared_cache_lowers_each_batch_once_across_chunks(
        self, conv_setup, image_bundle, monkeypatch
    ):
        """evaluate_chip_accuracies shares the shared-prefix im2col across
        chip chunks: the test set is lowered once for the whole population."""
        import repro.accelerator.batched as batched_module

        model, pretrained, _, mask_sets = conv_setup
        calls = []
        real = batched_module.im2col

        def counting(*args, **kwargs):
            calls.append(args[0].shape)
            return real(*args, **kwargs)

        monkeypatch.setattr(batched_module, "im2col", counting)
        batch_size = 16
        num_batches = -(-len(image_bundle.test) // batch_size)
        cached = evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=batch_size, chip_chunk=2
        )
        # 3 chunks x num_batches forwards, but the first-layer lowering runs
        # only num_batches times (later chunks hit the cache); the folded
        # second conv still lowers per chunk (its activations are per-chip).
        first_layer_lowerings = [
            shape for shape in calls if shape[0] == min(batch_size, len(image_bundle.test))
        ]
        assert len(first_layer_lowerings) == num_batches
        # Values are identical to the uncached path.
        uncached = evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=batch_size, chip_chunk=6
        )
        assert cached == uncached

    def test_cache_respects_byte_budget(self, conv_setup, image_bundle):
        """Inserts stop at the budget; results are unchanged (just uncached)."""
        from repro.accelerator.batched import LoweringCache

        model, _, _, mask_sets = conv_setup
        unbounded = evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=16, chip_chunk=2
        )
        cache = LoweringCache(max_bytes=0)
        bounded = evaluate_chip_accuracies(
            model,
            image_bundle.test,
            mask_sets,
            batch_size=16,
            chip_chunk=2,
            lowering_cache=cache,
        )
        assert len(cache) == 0  # budget of zero: nothing cached
        assert cache.nbytes == 0
        assert bounded == unbounded

    def test_cache_evicts_lru_past_the_cap(self, conv_setup, image_bundle):
        """A cap below the working set keeps the cache bounded, not broken."""
        from repro.accelerator.batched import LoweringCache

        model, _, _, mask_sets = conv_setup
        unbounded_cache = LoweringCache()
        unbounded = evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=16, chip_chunk=2,
            lowering_cache=unbounded_cache,
        )
        assert len(unbounded_cache) > 1
        # Cap to one largest entry: every later insert evicts the previous.
        one_entry = max(
            entry[0].nbytes for entry in unbounded_cache._entries.values()
        )
        cache = LoweringCache(max_bytes=one_entry)
        bounded = evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=16, chip_chunk=2,
            lowering_cache=cache,
        )
        assert bounded == unbounded
        assert len(cache) >= 1
        assert cache.nbytes <= one_entry

    def test_set_max_bytes_shrinks_in_place(self, conv_setup, image_bundle):
        from repro.accelerator.batched import LoweringCache

        model, _, _, mask_sets = conv_setup
        cache = LoweringCache()
        evaluate_chip_accuracies(
            model, image_bundle.test, mask_sets, batch_size=16, chip_chunk=2,
            lowering_cache=cache,
        )
        assert cache.nbytes > 0
        cache.set_max_bytes(0)
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_cache_ignored_for_inputs_of_unknown_identity(self, conv_setup, image_bundle):
        from repro.accelerator.batched import LoweringCache

        model, pretrained, _, mask_sets = conv_setup
        cache = LoweringCache()
        evaluator = BatchedFaultEvaluator(model, mask_sets[:2], lowering_cache=cache)
        inputs, _ = next(iter(DataLoader(image_bundle.test, batch_size=4)))
        evaluator.evaluate_logits(inputs)
        assert len(cache) == 0  # evaluate_logits never caches


class TestBatchedValidation:
    def test_empty_mask_sets_rejected(self, conv_setup):
        model = conv_setup[0]
        with pytest.raises(ValueError):
            BatchedFaultEvaluator(model, [])

    def test_mismatched_keys_rejected(self, conv_setup):
        model, _, _, mask_sets = conv_setup
        broken = dict(mask_sets[1])
        broken.pop(next(iter(broken)))
        with pytest.raises(ValueError):
            BatchedFaultEvaluator(model, [mask_sets[0], broken])

    def test_unknown_layer_rejected(self, conv_setup):
        model = conv_setup[0]
        with pytest.raises(KeyError):
            BatchedFaultEvaluator(model, [{"no.such.layer": np.zeros((1, 1), dtype=bool)}])

    def test_wrong_mask_shape_rejected(self, conv_setup):
        model, _, _, mask_sets = conv_setup
        name = next(iter(mask_sets[0]))
        broken = dict(mask_sets[0])
        broken[name] = np.zeros((1, 2), dtype=bool)
        with pytest.raises(ValueError):
            BatchedFaultEvaluator(model, [broken])


class TestFrameworkTriage:
    def test_triage_matches_serial_accuracy_before(self, smoke_context):
        from repro.core.chips import ChipPopulation
        from repro.utils.rng import derive_seed

        framework = smoke_context.framework()
        population = ChipPopulation.generate(
            count=5,
            rows=smoke_context.array.rows,
            cols=smoke_context.array.cols,
            fault_rates=(0.05, 0.25),
            seed=derive_seed(123, "triage-test"),
        )
        triage = framework.triage_population(population)
        assert set(triage) == {chip.chip_id for chip in population}
        for chip in population:
            serial = framework.retrain_chip(chip, epochs=0.0)
            assert triage[chip.chip_id] == serial.accuracy_before
            # A zero-epoch chip fed the triage value needs no training pass
            # and must reproduce the serial result exactly.
            shortcut = framework.retrain_chip(
                chip, epochs=0.0, accuracy_before=triage[chip.chip_id]
            )
            assert shortcut == serial
