"""Tests for fault models and the SystolicArray container."""

import numpy as np
import pytest

from repro.accelerator import (
    ArrayTechnology,
    ClusteredFaultModel,
    ColumnFaultModel,
    FaultMap,
    RandomFaultModel,
    RowFaultModel,
    SystolicArray,
    available_fault_models,
    get_fault_model,
)


class TestFaultModels:
    def test_random_model_exact(self):
        model = RandomFaultModel()
        fm = model.sample(32, 32, 0.2, np.random.default_rng(0))
        assert fm.num_faulty == round(0.2 * 1024)

    def test_sample_many_independent(self):
        maps = RandomFaultModel().sample_many(16, 16, 0.3, count=4, seed=0)
        assert len(maps) == 4
        assert len({fm for fm in maps}) > 1  # extremely unlikely to collide
        assert all(fm.num_faulty == round(0.3 * 256) for fm in maps)

    def test_sample_many_validation(self):
        with pytest.raises(ValueError):
            RandomFaultModel().sample_many(8, 8, 0.1, count=-1)

    def test_clustered_model(self):
        fm = ClusteredFaultModel(cluster_size=4).sample(32, 32, 0.15, np.random.default_rng(1))
        assert fm.num_faulty == round(0.15 * 1024)

    def test_row_and_column_models(self):
        row_map = RowFaultModel().sample(10, 6, 0.3, np.random.default_rng(0))
        assert row_map.num_faulty == 3 * 6
        col_map = ColumnFaultModel().sample(10, 6, 0.5, np.random.default_rng(0))
        assert col_map.num_faulty == 3 * 10

    def test_registry(self):
        assert set(available_fault_models()) == {"random", "clustered", "row", "column"}
        assert isinstance(get_fault_model("random"), RandomFaultModel)
        assert get_fault_model("clustered", cluster_size=2).cluster_size == 2
        with pytest.raises(KeyError):
            get_fault_model("cosmic-rays")


class TestArrayTechnology:
    def test_defaults_valid(self):
        tech = ArrayTechnology()
        assert tech.frequency_mhz > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayTechnology(frequency_mhz=0)
        with pytest.raises(ValueError):
            ArrayTechnology(mac_energy_pj=-1)


class TestSystolicArray:
    def test_defaults_to_fault_free_256(self):
        array = SystolicArray()
        assert array.shape == (256, 256)
        assert array.is_fault_free
        assert array.num_pes == 256 * 256

    def test_with_fault_map(self):
        fm = FaultMap.random(8, 8, 0.25, seed=0)
        array = SystolicArray(8, 8, fault_map=fm)
        assert array.num_faulty_pes == fm.num_faulty
        assert array.fault_rate == pytest.approx(fm.fault_rate)
        assert not array.is_fault_free

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SystolicArray(8, 8, fault_map=FaultMap.none(4, 4))
        with pytest.raises(ValueError):
            SystolicArray(0, 8)

    def test_with_fault_map_and_fault_free_copies(self):
        array = SystolicArray(8, 8)
        fm = FaultMap.random(8, 8, 0.5, seed=1)
        faulty = array.with_fault_map(fm)
        assert faulty.num_faulty_pes == fm.num_faulty
        assert array.is_fault_free  # original untouched
        assert faulty.fault_free().is_fault_free

    def test_serialization_round_trip(self):
        fm = FaultMap.random(4, 6, 0.3, seed=2)
        array = SystolicArray(4, 6, fault_map=fm)
        restored = SystolicArray.from_dict(array.to_dict())
        assert restored.shape == (4, 6)
        assert restored.fault_map == fm

    def test_serialization_round_trips_technology(self):
        from repro.accelerator import ArrayTechnology

        technology = ArrayTechnology(
            frequency_mhz=1200.0,
            mac_energy_pj=0.4,
            sram_access_energy_pj=3.5,
            dram_access_energy_pj=120.0,
            bytes_per_weight=2,
            bytes_per_activation=2,
        )
        array = SystolicArray(4, 6, technology=technology)
        restored = SystolicArray.from_dict(array.to_dict())
        assert restored.technology == technology

    def test_from_dict_without_technology_uses_defaults(self):
        from repro.accelerator import ArrayTechnology

        restored = SystolicArray.from_dict({"rows": 4, "cols": 6})
        assert restored.technology == ArrayTechnology()

    def test_repr(self):
        assert "SystolicArray" in repr(SystolicArray(4, 4))
