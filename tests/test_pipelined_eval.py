"""Determinism tests for the pipelined evaluation path.

The pipelined eval path — background batch prefetch, widened multi-checkpoint
GEMMs, and the sweep-wide shared lowering cache — is a pure performance
feature: every knob combination must produce bit-identical results, stores and
fingerprints.  These tests pin that contract at every level: the prefetcher
unit, the batched evaluator/trainer, whole campaigns (serial, ``--jobs 2 x
--fat-batch 4``, chaos kill and kill/resume) and multi-arm strategy sweeps,
where arms 2..K must *hit* the lowerings arm 1 computed.

The smoke preset is an MLP, which never exercises the im2col lowering cache,
so campaign-level tests run a conv variant of it (LeNet-5 on 12x12 images).
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.accelerator.batched import (
    BatchedFaultEvaluator,
    BatchedFaultTrainer,
    EvalPipeline,
    LoweringCache,
    _LoweringPrefetcher,
)
from repro.campaign import CampaignEngine
from repro.campaign.sweep import run_strategy_sweep
from repro.cli import main
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.experiments import ExperimentContext, smoke_preset
from repro.experiments.presets import ModelSpec
from repro.observability import metrics
from repro.training import TrainingConfig


def _conv_preset():
    """The smoke preset with a conv model, so eval passes im2col-lower.

    ``test_per_class=40`` gives the trainer's eval loader (batch size 128)
    more than one batch, so the background prefetcher genuinely runs during
    campaign evaluations instead of being a no-op on a single batch.
    """
    base = smoke_preset()
    return dataclasses.replace(
        base,
        name="smoke-conv",
        dataset=dataclasses.replace(base.dataset, image_size=12, test_per_class=40),
        model=ModelSpec(name="lenet5", kwargs={}),
    )


def _fresh_conv_context():
    return ExperimentContext.from_preset(_conv_preset(), use_cache=False)


@pytest.fixture(scope="module")
def conv_context():
    return _fresh_conv_context()


@pytest.fixture(scope="module")
def conv_population(conv_context):
    preset = conv_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=123,
    )


@pytest.fixture
def enabled_metrics():
    metrics.enabled = True
    metrics.reset()
    try:
        yield metrics
    finally:
        metrics.enabled = False
        metrics.reset()


def _lowering_counters():
    snap = metrics.snapshot()
    return {
        key.split(".", 1)[1]: value["value"]
        for key, value in snap.items()
        if key.startswith("lowering_cache.") and value["type"] == "counter"
    }


def _small_cnn(bundle, rng_base=0):
    channels = bundle.input_shape[0]
    return nn.Sequential(
        nn.Conv2d(channels, 4, 3, padding=1, rng=rng_base),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 6, 3, padding=1, rng=rng_base + 1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 2 * 2, bundle.num_classes, rng=rng_base + 2),
    )


def _cnn_mask_sets(bundle, num_chips=3):
    return [
        model_fault_masks(
            _small_cnn(bundle), FaultMap.random(16, 16, 0.05 + 0.04 * i, seed=i)
        )
        for i in range(num_chips)
    ]


def _assert_histories_equal(actual, expected):
    """Record-by-record history equality with NaN-aware loss comparison."""
    assert len(actual) == len(expected)
    for history, reference in zip(actual, expected):
        assert history.epochs == reference.epochs
        assert history.accuracies == reference.accuracies
        assert len(history.records) == len(reference.records)
        for record, ref in zip(history.records, reference.records):
            assert record.steps == ref.steps
            if np.isnan(ref.train_loss):
                assert np.isnan(record.train_loss)
            else:
                assert record.train_loss == ref.train_loss


class TestPrefetcherUnit:
    def test_prefetcher_populates_cache_in_background(self):
        cache = LoweringCache()
        prefetcher = _LoweringPrefetcher(cache)
        data = np.arange(12.0, dtype=np.float32).reshape(3, 4)

        def lower(batch):
            return batch * 2.0, 2, 2

        try:
            prefetcher.offer_recipe("im2col", "conv1", 3, lower)
            prefetcher.submit(1, data)
            deadline = time.monotonic() + 5.0
            while len(cache) == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
        finally:
            prefetcher.close()
        assert len(cache) == 1
        entry = cache.get_or_compute(
            ("im2col", "conv1", 3, 1), lambda: pytest.fail("expected a cache hit")
        )
        np.testing.assert_array_equal(entry[0], data * 2.0)
        assert entry[1:] == (2, 2)

    def test_submissions_without_recipe_are_dropped(self):
        cache = LoweringCache()
        prefetcher = _LoweringPrefetcher(cache)
        prefetcher.submit(0, np.zeros((2, 2), dtype=np.float32))
        prefetcher.close()  # never started: close is a no-op
        assert len(cache) == 0

    def test_first_recipe_wins(self):
        prefetcher = _LoweringPrefetcher(LoweringCache())
        first = lambda batch: (batch, 1, 1)  # noqa: E731
        prefetcher.offer_recipe("im2col", "conv1", 8, first)
        prefetcher.offer_recipe("im2col_t", "conv2", 16, lambda batch: (batch, 9, 9))
        assert prefetcher._recipe == ("im2col", "conv1", 8, first)


class TestEvaluatorPrefetch:
    def test_prefetch_on_off_accuracies_identical(self, image_bundle, enabled_metrics):
        model = _small_cnn(image_bundle)
        mask_sets = _cnn_mask_sets(image_bundle)
        num_batches = -(-len(image_bundle.test) // 16)
        assert num_batches > 1  # otherwise prefetch has nothing to overlap

        on = BatchedFaultEvaluator(
            model, mask_sets, lowering_cache=LoweringCache(), prefetch=True
        ).evaluate_accuracy(image_bundle.test, batch_size=16)
        on_counters = _lowering_counters()
        metrics.reset()
        off = BatchedFaultEvaluator(
            model, mask_sets, lowering_cache=LoweringCache(), prefetch=False
        ).evaluate_accuracy(image_bundle.test, batch_size=16)
        off_counters = _lowering_counters()

        assert on == off
        # The consuming thread observes every batch exactly once either way;
        # with prefetch on, any background computation lands under
        # ``prefetched`` (and turns the consumer's miss into a hit), never
        # double-counting a miss.
        assert on_counters.get("hits", 0) + on_counters.get("misses", 0) == num_batches
        assert off_counters.get("misses", 0) == num_batches
        assert "prefetched" not in off_counters

    def test_prefetch_disabled_spawns_no_thread(self, image_bundle):
        model = _small_cnn(image_bundle)
        evaluator = BatchedFaultEvaluator(model, _cnn_mask_sets(image_bundle), prefetch=False)
        evaluator.evaluate_accuracy(image_bundle.test, batch_size=16)
        assert evaluator._prefetcher is None


class TestWidenedEval:
    def _train(self, bundle, widened, backend=None):
        model = _small_cnn(bundle)
        trainer = BatchedFaultTrainer(
            model,
            _cnn_mask_sets(bundle),
            bundle.train,
            bundle.test,
            config=TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            backend=backend,
            widened_eval=widened,
        )
        histories = trainer.train(1.0, eval_checkpoints=[0.5, 1.0])
        states = [trainer.chip_state_dict(i) for i in range(3)]
        return histories, states

    @pytest.mark.parametrize("backend", [None, "numpy", "fused"])
    def test_widened_matches_per_checkpoint_eval(
        self, image_bundle, backend, monkeypatch
    ):
        """Stacking C checkpoints into one widened GEMM changes nothing."""
        widened_calls = []
        original = BatchedFaultTrainer._evaluate_snapshots_widened

        def counting(self, snapshots):
            widened_calls.append(len(snapshots))
            return original(self, snapshots)

        monkeypatch.setattr(BatchedFaultTrainer, "_evaluate_snapshots_widened", counting)
        wide_histories, wide_states = self._train(image_bundle, widened=True, backend=backend)
        # 3 deferred passes (initial + two checkpoints) ran as one widened GEMM.
        assert widened_calls == [3]
        plain_histories, plain_states = self._train(
            image_bundle, widened=False, backend=backend
        )
        _assert_histories_equal(wide_histories, plain_histories)
        for wide, plain in zip(wide_states, plain_states):
            assert set(wide) == set(plain)
            for name in plain:
                np.testing.assert_array_equal(wide[name], plain[name])

    def test_falls_back_per_snapshot_over_the_float_cap(self, image_bundle, monkeypatch):
        """Snapshots too large to concatenate still evaluate identically."""
        import repro.accelerator.batched as batched_module

        plain_histories, _ = self._train(image_bundle, widened=False)
        monkeypatch.setattr(batched_module, "WIDENED_EVAL_MAX_FLOATS", 0)
        capped_histories, _ = self._train(image_bundle, widened=True)
        _assert_histories_equal(capped_histories, plain_histories)

    def test_single_checkpoint_run_is_not_deferred(self, image_bundle, monkeypatch):
        """The campaign path (one final checkpoint, no initial) stays inline."""
        called = []
        monkeypatch.setattr(
            BatchedFaultTrainer,
            "_evaluate_snapshots",
            lambda self, snapshots: called.append(len(snapshots)) or [],
        )
        model = _small_cnn(image_bundle)
        trainer = BatchedFaultTrainer(
            model,
            _cnn_mask_sets(image_bundle),
            image_bundle.train,
            image_bundle.test,
            config=TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            widened_eval=True,
        )
        trainer.train(0.25, include_initial=False)
        # The final drain ran, but with zero deferred snapshots: the single
        # checkpoint was evaluated inline, exactly as on the campaign path.
        assert called == [0]


class TestCampaignPrefetchDeterminism:
    def _run(self, context, population, store_base, **engine_kwargs):
        engine = CampaignEngine(context, store_base=store_base, **engine_kwargs)
        result = engine.run(population, FixedEpochPolicy(0.25))
        report = engine.last_report
        store_bytes = (report.store_dir / "results.jsonl").read_bytes()
        return result, report, store_bytes

    def test_prefetch_on_off_stores_bit_identical(
        self, conv_context, conv_population, tmp_path
    ):
        on, on_report, on_bytes = self._run(
            conv_context, conv_population, tmp_path / "on", jobs=1, prefetch=True
        )
        off, off_report, off_bytes = self._run(
            conv_context, conv_population, tmp_path / "off", jobs=1, prefetch=False
        )
        assert on.results == off.results
        assert on_bytes == off_bytes
        # Prefetch is not part of the work definition: same fingerprint, so
        # a store written with it off resumes a campaign run with it on.
        assert on_report.fingerprint == off_report.fingerprint

    def test_prefetch_under_jobs_and_fat_batch(
        self, conv_context, conv_population, tmp_path
    ):
        """--jobs 2 x --fat-batch 4 with prefetch on matches prefetch off."""
        on, _, on_bytes = self._run(
            conv_context,
            conv_population,
            tmp_path / "on",
            jobs=2,
            fat_batch=4,
            prefetch=True,
        )
        off, _, off_bytes = self._run(
            conv_context,
            conv_population,
            tmp_path / "off",
            jobs=2,
            fat_batch=4,
            prefetch=False,
        )
        assert on.results == off.results
        # A parallel store appends chunks in completion order, which varies
        # run to run with or without prefetch; the recorded lines themselves
        # must match byte for byte.
        assert sorted(on_bytes.splitlines()) == sorted(off_bytes.splitlines())

    def test_killed_then_resumed_with_prefetch(
        self, conv_context, conv_population, tmp_path
    ):
        full, report, _ = self._run(
            conv_context,
            conv_population,
            tmp_path,
            jobs=2,
            fat_batch=4,
            prefetch=True,
        )
        results_path = report.store_dir / "results.jsonl"
        lines = results_path.read_text().splitlines()
        results_path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed, resumed_report, _ = self._run(
            conv_context,
            conv_population,
            tmp_path,
            jobs=2,
            fat_batch=4,
            prefetch=True,
        )
        assert resumed_report.skipped == 2
        assert resumed_report.executed == len(conv_population) - 2
        assert resumed.results == full.results
        recorded = [
            json.loads(line)["chip_id"]
            for line in results_path.read_text().strip().splitlines()
        ]
        assert len(recorded) == len(set(recorded)) == len(conv_population)

    def test_chaos_worker_kill_with_prefetch(
        self, conv_context, conv_population, tmp_path
    ):
        baseline, _, _ = self._run(
            conv_context,
            conv_population,
            tmp_path / "plain",
            jobs=2,
            fat_batch=2,
            prefetch=False,
        )
        chaotic, chaotic_report, _ = self._run(
            conv_context,
            conv_population,
            tmp_path / "chaos",
            jobs=2,
            fat_batch=2,
            prefetch=True,
            chaos="seed=3,kill=1",
        )
        assert chaotic.results == baseline.results
        assert chaotic_report.failed == 0


class TestSweepLoweringReuse:
    def test_later_arms_hit_lowerings_of_the_first(
        self, conv_population, enabled_metrics
    ):
        """Arms 2..K re-use arm 1's eval-batch lowerings: extra hits, zero
        extra misses.  Prefetch is off so the hit/miss split is deterministic
        (background lowerings shift counts between ``misses``/``prefetched``)."""
        policy = FixedEpochPolicy(0.25)
        run_strategy_sweep(
            _fresh_conv_context(),
            conv_population,
            policy,
            "fat",
            fat_batch=2,
            prefetch=False,
        )
        one_arm = _lowering_counters()
        metrics.reset()
        run_strategy_sweep(
            _fresh_conv_context(),
            conv_population,
            policy,
            "fat,fam+fat",
            fat_batch=2,
            prefetch=False,
        )
        two_arms = _lowering_counters()
        assert one_arm.get("hits", 0) > 0
        assert two_arms["misses"] == one_arm["misses"]
        assert two_arms["hits"] > one_arm["hits"]

    def test_cache_bytes_gauge_tracks_shared_cache(
        self, conv_population, enabled_metrics
    ):
        context = _fresh_conv_context()
        run_strategy_sweep(
            context,
            conv_population,
            FixedEpochPolicy(0.25),
            "fat",
            fat_batch=2,
            prefetch=False,
        )
        cache = context.eval_pipeline.cache
        assert cache.nbytes > 0
        assert metrics.snapshot()["lowering_cache.bytes"]["value"] == cache.nbytes


class TestEvalPipelineConfig:
    def test_defaults(self):
        pipeline = EvalPipeline()
        assert pipeline.prefetch is True
        assert pipeline.widened_eval is True
        assert pipeline.cache.max_bytes == int(128.0 * 1024 * 1024)

    def test_configure_updates_in_place(self):
        pipeline = EvalPipeline()
        cache = pipeline.cache
        assert pipeline.configure(prefetch=False, lowering_cache_mb=1.0) is pipeline
        assert pipeline.prefetch is False
        assert pipeline.cache is cache  # same cache object, resized
        assert cache.max_bytes == 1024 * 1024

    def test_negative_cache_mb_rejected(self, smoke_context):
        with pytest.raises(ValueError):
            EvalPipeline(lowering_cache_mb=-1.0)
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, lowering_cache_mb=-1.0)

    def test_context_pipeline_is_shared_across_frameworks(self, smoke_context):
        pipeline = smoke_context.eval_pipeline
        assert smoke_context.framework().eval_pipeline is pipeline
        assert smoke_context.framework().eval_pipeline is pipeline


class TestCLIFlags:
    def test_negative_lowering_cache_mb_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--preset", "smoke", "--lowering-cache-mb", "-1"])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_no_prefetch_campaign_runs(self, tmp_path, capsys):
        args = [
            "campaign",
            "--preset",
            "smoke",
            "--chips",
            "2",
            "--no-prefetch",
            "--lowering-cache-mb",
            "16",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
        ]
        assert main(args) == 0
        assert capsys.readouterr().out
