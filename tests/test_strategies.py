"""Tests for the mitigation-strategy subsystem and multi-strategy sweeps.

Covers the strategy algebra (parsing, mask construction, bypass feasibility,
budget clamping), the keep-multiplier enforcement path shared with the
trainers, the strategy-aware framework/campaign plumbing, the sweep driver
with shared triage, and the ``repro-reduce compare`` experiment + CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.accelerator import FaultMap, model_fault_masks
from repro.campaign import (
    CampaignEngine,
    ChipJob,
    build_jobs,
    execute_jobs_batched,
    group_jobs_for_batching,
    plan_job_chunks,
    run_strategy_sweep,
)
from repro.cli import main
from repro.core.chips import Chip, ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.experiments import run_compare
from repro.mitigation import (
    MitigationStrategy,
    available_strategies,
    compose_masks,
    parse_strategy,
    parse_strategy_list,
    resolve_strategy,
)
from repro.mitigation.fam import compute_column_permutations
from repro.training import evaluate_accuracy, resolve_masked_parameters


def _infeasible_map(rows=16, cols=16):
    """Every row and column contains a fault: bypass cannot apply."""
    return FaultMap.from_indices(rows, cols, [(i, i) for i in range(min(rows, cols))])


def _feasible_map(rows=16, cols=16, seed=3):
    """A sparse map with at least one fault but fault-free columns left."""
    return FaultMap.from_indices(rows, cols, [(1, 2), (5, 2), (7, 9)])


@pytest.fixture(scope="module")
def strategy_population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=77,
    )


class TestParsing:
    def test_component_flags(self):
        fat = parse_strategy("fat")
        assert fat.prune and fat.retrain and not fat.remap and not fat.bypass
        fap = parse_strategy("fap")
        assert fap.prune and not fap.retrain
        fam = parse_strategy("fam+fat")
        assert fam.prune and fam.remap and fam.retrain
        bypass = parse_strategy("bypass+fat")
        assert bypass.bypass and bypass.retrain and not bypass.prune
        none = parse_strategy("none")
        assert not (none.prune or none.remap or none.bypass or none.retrain)

    def test_normalisation_and_identity(self):
        assert parse_strategy(" FAP+FAT ").name == "fap+fat"
        # Component order is canonicalised: the spelling must not change the
        # strategy's identity (fingerprint, store, sweep key).
        assert parse_strategy("fat+fap").name == "fap+fat"
        assert parse_strategy("fat+bypass").name == "bypass+fat"
        with pytest.raises(ValueError):
            parse_strategy_list("fap+fat,fat+fap")  # same strategy twice
        # fat and fap+fat are distinct sweepable identities with identical
        # per-chip behaviour in this substrate.
        assert parse_strategy("fat").name != parse_strategy("fap+fat").name

    @pytest.mark.parametrize(
        "bad",
        ["", "fap+", "none+fat", "bypass+fap", "bypass+fam", "fam+fap", "fat+fat", "xyz"],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_strategy(bad)

    def test_resolve_defaults_to_fat(self):
        assert resolve_strategy(None).name == "fat"
        strategy = parse_strategy("fam")
        assert resolve_strategy(strategy) is strategy
        assert resolve_strategy("bypass").bypass

    def test_parse_list(self):
        strategies = parse_strategy_list("fat, fap+fat ,bypass")
        assert [s.name for s in strategies] == ["fat", "fap+fat", "bypass"]
        with pytest.raises(ValueError):
            parse_strategy_list("fat,fat")
        with pytest.raises(ValueError):
            parse_strategy_list("")

    def test_fam_metric_suffix_is_part_of_identity(self):
        squared = parse_strategy("fam:l2+fat")
        assert squared.name == "fam:squared+fat"
        assert squared.saliency_metric == "squared"
        assert squared.triage_key == "fam:squared"
        # Metric aliases collapse; the default metric leaves no suffix.
        assert parse_strategy("fat+fam:l1").name == "fam+fat"
        assert parse_strategy("fam:magnitude").name == "fam"
        # Distinct metrics are distinct sweepable campaigns.
        assert squared.name != parse_strategy("fam+fat").name
        for bad in ("fam:taylor", "fap:l2", "fat:l2"):
            with pytest.raises(ValueError):
                parse_strategy(bad)

    def test_all_advertised_strategies_parse(self):
        for name in available_strategies():
            assert parse_strategy(name).name == name

    def test_triage_keys_shared_across_same_mask_strategies(self):
        assert parse_strategy("fat").triage_key == parse_strategy("bypass").triage_key
        assert parse_strategy("fam").triage_key == parse_strategy("fam+fat").triage_key
        assert parse_strategy("fat").triage_key != parse_strategy("fam+fat").triage_key


class TestComposeMasks:
    def test_union_semantics(self):
        a = {"l": np.array([[True, False], [False, False]])}
        b = {"l": np.array([[False, True], [False, False]]), "m": np.ones((1, 1), bool)}
        composed = compose_masks(a, b, None)
        np.testing.assert_array_equal(
            composed["l"], np.array([[True, True], [False, False]])
        )
        assert composed["m"].all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compose_masks({"l": np.zeros((2, 2), bool)}, {"l": np.zeros((3, 2), bool)})

    def test_non_bool_masks_coerced_on_merge(self):
        a = {"l": np.array([[True, False], [False, False]])}
        b = {"l": np.array([[0, 1], [0, 0]], dtype=np.int8)}
        composed = compose_masks(a, b)
        assert composed["l"].dtype == bool
        np.testing.assert_array_equal(
            composed["l"], np.array([[True, True], [False, False]])
        )


class TestMasksAndBypass:
    def test_fat_masks_match_plain_fault_masks(self, small_mlp):
        fault_map = FaultMap.random(16, 16, 0.2, seed=0)
        masks = parse_strategy("fat").chip_masks(small_mlp, fault_map)
        expected = model_fault_masks(small_mlp, fault_map)
        assert set(masks) == set(expected)
        for name in masks:
            np.testing.assert_array_equal(masks[name], expected[name])

    def test_fam_masks_use_saliency_permutations(self, small_mlp):
        fault_map = FaultMap.random(16, 16, 0.2, seed=1)
        masks = parse_strategy("fam+fat").chip_masks(small_mlp, fault_map)
        permutations = compute_column_permutations(small_mlp, fault_map)
        expected = model_fault_masks(small_mlp, fault_map, permutations)
        for name in expected:
            np.testing.assert_array_equal(masks[name], expected[name])

    def test_bypass_plan_feasibility(self):
        bypass = parse_strategy("bypass")
        assert bypass.bypass_plan(_feasible_map()) is not None
        assert bypass.bypass_plan(_infeasible_map()) is None
        # Non-bypass strategies never have a plan.
        assert parse_strategy("fat").bypass_plan(_feasible_map()) is None

    def test_effective_epochs(self):
        assert parse_strategy("fap").effective_epochs(2.0, _feasible_map()) == 0.0
        assert parse_strategy("fat").effective_epochs(2.0, _feasible_map()) == 2.0
        hybrid = parse_strategy("bypass+fat")
        assert hybrid.effective_epochs(2.0, _feasible_map()) == 0.0
        assert hybrid.effective_epochs(2.0, _infeasible_map()) == 2.0
        with pytest.raises(ValueError):
            hybrid.effective_epochs(-1.0, _feasible_map())


class TestFapEnforcementPath:
    """Satellite bugfix: FAP resolves masks through the trainers' path."""

    def test_apply_fap_matches_keep_multiplier_enforcement(self, small_mlp):
        from repro.mitigation import apply_fap, build_fap_masks

        fault_map = FaultMap.random(16, 16, 0.3, seed=5)
        reference = {
            name: value.copy() for name, value in small_mlp.state_dict().items()
        }
        masks = build_fap_masks(small_mlp, fault_map)
        result = apply_fap(small_mlp, fault_map)
        # Bit-identical to enforcing the resolved keep-multipliers directly.
        for masked in resolve_masked_parameters(small_mlp, masks):
            expected = reference[f"{masked.name}.weight"] * masked.keep
            np.testing.assert_array_equal(masked.weight.data, expected)
        assert set(result.masks) == set(masks)

    def test_apply_fap_is_idempotent_bitwise(self, small_mlp):
        from repro.mitigation import apply_fap

        fault_map = FaultMap.random(16, 16, 0.3, seed=6)
        apply_fap(small_mlp, fault_map)
        once = {name: value.copy() for name, value in small_mlp.state_dict().items()}
        apply_fap(small_mlp, fault_map)
        for name, value in small_mlp.state_dict().items():
            np.testing.assert_array_equal(value, once[name])

    def test_verify_rejects_shape_mismatch(self, small_mlp):
        from repro.mitigation import verify_masks_enforced

        assert not verify_masks_enforced(
            small_mlp, {"body.0": np.zeros((1, 1), dtype=bool)}
        )

    def test_masks_stay_enforced_through_retraining(self, image_bundle, small_mlp):
        """No drift between apply_fap's pruning and the Trainer's enforcement."""
        from repro.mitigation import apply_fap, verify_masks_enforced
        from repro.training import Trainer, TrainingConfig

        fault_map = FaultMap.random(16, 16, 0.25, seed=7)
        result = apply_fap(small_mlp, fault_map)
        trainer = Trainer(
            small_mlp,
            image_bundle.train,
            image_bundle.test,
            config=TrainingConfig(learning_rate=0.05, batch_size=16, seed=0),
            masks=result.masks,
        )
        trainer.train(0.5, include_initial=False)
        assert verify_masks_enforced(small_mlp, result.masks)


class TestFrameworkStrategies:
    def test_fap_strategy_spends_no_epochs(self, smoke_context, strategy_population):
        framework = smoke_context.framework()
        chip = strategy_population[0]
        result = framework.retrain_chip(chip, 1.0, strategy="fap")
        assert result.strategy == "fap"
        assert result.epochs_trained == 0.0
        assert result.accuracy_after == result.accuracy_before
        triage = framework.triage_population([chip], strategy="fap")
        assert result.accuracy_before == triage[chip.chip_id]

    def test_bypass_feasible_chip_keeps_clean_accuracy(self, smoke_context):
        framework = smoke_context.framework()
        chip = Chip(chip_id="sparse", fault_map=_feasible_map())
        result = framework.retrain_chip(chip, 1.0, strategy="bypass")
        assert result.strategy == "bypass"
        assert result.epochs_trained == 0.0
        assert result.accuracy_after == framework.clean_accuracy
        assert result.masked_weight_fraction == 0.0

    def test_bypass_infeasible_chip_falls_back(self, smoke_context):
        framework = smoke_context.framework()
        chip = Chip(chip_id="dense", fault_map=_infeasible_map())
        plain = framework.retrain_chip(chip, 0.25, strategy="fat")
        # bypass alone: unmitigated (no retraining, faulty accuracy stands).
        bypass = framework.retrain_chip(chip, 0.25, strategy="bypass")
        assert bypass.epochs_trained == 0.0
        assert bypass.accuracy_after == bypass.accuracy_before == plain.accuracy_before
        # bypass+fat: full FAT fallback, equal to the plain FAT run.
        hybrid = framework.retrain_chip(chip, 0.25, strategy="bypass+fat")
        assert hybrid.epochs_trained == plain.epochs_trained == 0.25
        assert hybrid.accuracy_after == plain.accuracy_after
        assert hybrid.strategy == "bypass+fat"

    def test_fam_triage_measures_under_permuted_masks(
        self, smoke_context, strategy_population
    ):
        framework = smoke_context.framework()
        chip = strategy_population[1]
        strategy = parse_strategy("fam+fat")
        triage = framework.triage_population([chip], strategy=strategy)
        framework._restore_pretrained()
        masks = strategy.chip_masks(framework.model, chip.fault_map)
        for masked in resolve_masked_parameters(framework.model, masks):
            masked.enforce_weight()
        batch = framework.config.effective_retraining_config().batch_size * 4
        expected = evaluate_accuracy(framework.model, framework.bundle.test, batch_size=batch)
        assert triage[chip.chip_id] == expected

    def test_retrain_population_strategy_rows_tagged(
        self, smoke_context, strategy_population
    ):
        framework = smoke_context.framework()
        campaign = framework.retrain_population(
            strategy_population, FixedEpochPolicy(0.25), strategy="fap+fat"
        )
        assert all(result.strategy == "fap+fat" for result in campaign.results)
        # Identical numbers to plain FAT (FAT always enforces the FAP masks).
        plain = framework.retrain_population(strategy_population, FixedEpochPolicy(0.25))
        for tagged, reference in zip(campaign.results, plain.results):
            assert tagged == type(tagged).from_dict(
                {**reference.to_dict(), "strategy": "fap+fat"}
            )


class TestStrategyPlanner:
    def _job(self, chip_id, epochs, strategy):
        return ChipJob(
            chip={"chip_id": chip_id},
            epochs=epochs,
            target_accuracy=0.9,
            policy_name="p",
            strategy=strategy,
        )

    def test_jobs_group_by_budget_and_strategy(self):
        jobs = [
            self._job("a", 0.5, "fat"),
            self._job("b", 0.5, "fam+fat"),
            self._job("c", 0.5, "fat"),
        ]
        groups = group_jobs_for_batching(jobs)
        assert set(groups) == {(0.5, "fat", None), (0.5, "fam+fat", None)}
        plan = plan_job_chunks(jobs, fat_batch=8)
        # Same budget but different strategies never share a stacked chunk.
        for chunk in plan:
            assert len({job.strategy for job in chunk}) == 1
        assert sorted(len(chunk) for chunk in plan) == [1, 2]

    def test_mixed_strategy_batched_execution_rejected(
        self, smoke_context, strategy_population
    ):
        framework = smoke_context.framework()
        jobs = build_jobs(framework, strategy_population, FixedEpochPolicy(0.25))
        import dataclasses

        mixed = [jobs[0], dataclasses.replace(jobs[1], strategy="fam+fat")]
        with pytest.raises(ValueError, match="strategy"):
            execute_jobs_batched(framework, mixed)

    def test_build_jobs_clamps_non_retraining_budgets(
        self, smoke_context, strategy_population
    ):
        framework = smoke_context.framework()
        jobs = build_jobs(
            framework, strategy_population, FixedEpochPolicy(0.5), strategy="fap"
        )
        assert all(job.epochs == 0.0 for job in jobs)
        assert all(job.strategy == "fap" for job in jobs)

    def test_job_round_trip_preserves_strategy(self):
        job = self._job("a", 0.5, "bypass+fat")
        assert ChipJob.from_dict(json.loads(json.dumps(job.to_dict()))) == job
        # Pre-strategy payloads default to fat.
        legacy = dict(job.to_dict())
        legacy.pop("strategy")
        assert ChipJob.from_dict(legacy).strategy == "fat"


class TestSweep:
    def test_sweep_fat_rows_bit_identical_to_single_campaign(
        self, smoke_context, strategy_population
    ):
        policy = FixedEpochPolicy(0.25)
        sweep = run_strategy_sweep(
            smoke_context,
            strategy_population,
            policy,
            "fat,fap,bypass",
            jobs=1,
            fat_batch=2,
        )
        single = CampaignEngine(smoke_context, jobs=1, fat_batch=2).run(
            strategy_population, policy
        )
        assert sweep.campaign("fat").results == single.results
        assert sweep.strategy_names == ["fat", "fap", "bypass"]

    def test_sweep_is_resumable_per_strategy(
        self, smoke_context, strategy_population, tmp_path
    ):
        policy = FixedEpochPolicy(0.25)
        first = run_strategy_sweep(
            smoke_context,
            strategy_population,
            policy,
            "fat,fap",
            store_base=tmp_path,
            fat_batch=2,
        )
        assert all(
            report.executed == len(strategy_population)
            for report in first.reports.values()
        )
        resumed = run_strategy_sweep(
            smoke_context,
            strategy_population,
            policy,
            "fat,fap",
            store_base=tmp_path,
            fat_batch=2,
        )
        assert all(report.executed == 0 for report in resumed.reports.values())
        for name in ("fat", "fap"):
            assert resumed.campaign(name).results == first.campaign(name).results

    def test_parallel_sweep_matches_serial(self, smoke_context, strategy_population):
        policy = FixedEpochPolicy(0.25)
        serial = run_strategy_sweep(
            smoke_context, strategy_population, policy, "fat,fam+fat", jobs=1, fat_batch=2
        )
        parallel = run_strategy_sweep(
            smoke_context, strategy_population, policy, "fat,fam+fat", jobs=2, fat_batch=2
        )
        for name in ("fat", "fam+fat"):
            assert parallel.campaign(name).results == serial.campaign(name).results

    def test_duplicate_strategies_rejected(self, smoke_context, strategy_population):
        with pytest.raises(ValueError):
            run_strategy_sweep(
                smoke_context, strategy_population, FixedEpochPolicy(0.25), "fat,fat"
            )


class TestCompareExperiment:
    def test_rows_report_accuracy_epochs_and_overheads(
        self, smoke_context, strategy_population
    ):
        result = run_compare(
            smoke_context,
            "fat,fap,bypass,none",
            population=strategy_population,
            policy_name="fixed",
            fixed_epochs=0.25,
            fat_batch=2,
        )
        assert result.strategy_names == ["fat", "fap", "bypass", "none"]
        for row in result.rows:
            for key in (
                "average_epochs",
                "percent_meeting_constraint",
                "mean_accuracy_before",
                "mean_accuracy_after",
                "mean_accuracy_recovered",
                "mean_masked_fraction",
                "energy_ratio",
                "mean_slowdown",
                "bypassed_chips",
            ):
                assert key in row
        # FAP gates the pruned MACs; 'none' does not.
        assert result.row("fap")["energy_ratio"] <= result.row("none")["energy_ratio"]
        assert result.row("none")["energy_ratio"] == 1.0
        # Bypass pays a throughput cost where it applies, never a speedup.
        assert result.row("bypass")["mean_slowdown"] >= 1.0
        assert result.row("fat")["mean_slowdown"] == 1.0
        # Non-retraining strategies spend nothing.
        assert result.row("fap")["average_epochs"] == 0.0
        assert result.row("fat")["average_epochs"] == pytest.approx(0.25)
        assert result.pareto_strategies()
        table = result.table()
        for name in result.strategy_names:
            assert name in table
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["pareto_strategies"] == result.pareto_strategies()

    def test_hybrid_energy_gates_fallback_chips_only(self, smoke_context):
        """bypass+fat's FAP+FAT fallback chips are clock-gated like fap+fat's;
        plain bypass gates nothing (its fallback chips are unmitigated)."""
        preset = smoke_context.preset
        rows, cols = preset.array_rows, preset.array_cols
        population = ChipPopulation(
            [
                Chip("sparse", _feasible_map(rows, cols)),
                Chip("dense", _infeasible_map(rows, cols)),
            ]
        )
        result = run_compare(
            smoke_context,
            "fap+fat,bypass,bypass+fat",
            population=population,
            policy_name="fixed",
            fixed_epochs=0.25,
            fat_batch=2,
        )
        assert result.row("bypass")["energy_ratio"] == 1.0
        # The dense chip executes the identical FAP+FAT mitigation under both
        # fap+fat and bypass+fat, so both must account some MAC gating.
        assert result.row("bypass+fat")["energy_ratio"] < 1.0
        assert result.row("fap+fat")["energy_ratio"] < 1.0
        assert result.row("bypass+fat")["bypassed_chips"] == 1

    def test_unknown_policy_rejected(self, smoke_context, strategy_population):
        with pytest.raises(ValueError):
            run_compare(
                smoke_context,
                "fat",
                population=strategy_population,
                policy_name="galactic",
            )


class TestCompareCli:
    def test_compare_command_runs_and_resumes(self, capsys, tmp_path):
        base = [
            "compare",
            "--preset",
            "smoke",
            "--chips",
            "3",
            "--strategies",
            "fat,bypass",
            "--policy",
            "fixed",
            "--fixed-epochs",
            "0.25",
            "--fat-batch",
            "2",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
            "--output",
            str(tmp_path / "compare.json"),
        ]
        assert main(base + ["--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "bypass" in out
        assert "Pareto-optimal strategies:" in out
        payload = json.loads((tmp_path / "compare.json").read_text())
        assert payload["figure"] == "compare"
        assert [row["strategy"] for row in payload["strategies"]] == ["fat", "bypass"]
        assert all(report["executed"] == 3 for report in payload["reports"].values())

        # Re-running resumes every strategy from its own store.
        assert main(base) == 0
        rerun = json.loads((tmp_path / "compare.json").read_text())
        assert all(report["executed"] == 0 for report in rerun["reports"].values())
        assert rerun["strategies"] == payload["strategies"]

    def test_invalid_strategies_exit_with_usage_error(self, capsys):
        for argv in (
            ["compare", "--preset", "smoke", "--strategies", "warp"],
            ["compare", "--preset", "smoke", "--strategies", "fat,fat"],
            ["campaign", "--preset", "smoke", "--strategy", "bypass+fam"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "usage:" in capsys.readouterr().err

    def test_campaign_command_accepts_strategy(self, capsys, tmp_path):
        args = [
            "campaign",
            "--preset",
            "smoke",
            "--chips",
            "2",
            "--policy",
            "fixed",
            "--fixed-epochs",
            "0.25",
            "--strategy",
            "fap",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
            "--output",
            str(tmp_path / "campaign.json"),
        ]
        assert main(args) == 0
        payload = json.loads((tmp_path / "campaign.json").read_text())
        assert payload["strategy"] == "fap"
        assert all(chip["strategy"] == "fap" for chip in payload["chips"])
        assert all(chip["epochs_trained"] == 0.0 for chip in payload["chips"])
