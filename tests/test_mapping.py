"""Tests for the layer-to-array mapping and fault-mask generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.accelerator import (
    FaultMap,
    GemmShape,
    SystolicArray,
    expected_masked_fraction,
    gemm_fault_mask,
    layer_fault_mask,
    layer_gemm_shape,
    mappable_layers,
    masked_weight_fraction,
    model_fault_masks,
    model_mapping,
    weight_matrix_view,
)
from repro.models import MLP


def small_cnn():
    return nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=0),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 5, rng=1),
    )


class TestGemmShape:
    def test_linear_shape(self):
        layer = nn.Linear(12, 7, rng=0)
        gemm = layer_gemm_shape(layer)
        assert gemm.reduce_dim == 12 and gemm.output_dim == 7
        assert gemm.num_weights == 84

    def test_conv_shape(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, rng=0)
        gemm = layer_gemm_shape(layer)
        assert gemm.reduce_dim == 3 * 9 and gemm.output_dim == 8

    def test_unmappable_layer_raises(self):
        with pytest.raises(TypeError):
            layer_gemm_shape(nn.ReLU())
        with pytest.raises(TypeError):
            weight_matrix_view(nn.ReLU())

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GemmShape(0, 5)

    def test_mappable_layers_discovery(self):
        model = small_cnn()
        names = [name for name, _ in mappable_layers(model)]
        assert names == ["0", "4"]


class TestMaskGeneration:
    def test_single_fault_tiles_periodically(self):
        # Array 4x4 with a fault at PE (row=1, col=2).
        fault_map = FaultMap.from_indices(4, 4, [(1, 2)])
        gemm = GemmShape(reduce_dim=8, output_dim=8)  # 2x2 tiles
        mask = gemm_fault_mask(gemm, fault_map)  # (out, reduce) layout
        expected = np.zeros((8, 8), dtype=bool)
        for k in (1, 5):  # reduce indices congruent to 1 mod 4
            for n in (2, 6):  # output indices congruent to 2 mod 4
                expected[n, k] = True
        np.testing.assert_array_equal(mask, expected)

    def test_fault_free_map_gives_empty_mask(self):
        mask = gemm_fault_mask(GemmShape(10, 6), FaultMap.none(4, 4))
        assert not mask.any()

    def test_layer_mask_matches_weight_shape(self):
        conv = nn.Conv2d(3, 6, 3, rng=0)
        mask = layer_fault_mask(conv, FaultMap.random(8, 8, 0.3, seed=0))
        assert mask.shape == conv.weight.shape
        linear = nn.Linear(20, 10, rng=0)
        mask = layer_fault_mask(linear, FaultMap.random(8, 8, 0.3, seed=0))
        assert mask.shape == (10, 20)

    def test_column_permutation_changes_which_weights(self):
        fault_map = FaultMap.from_indices(4, 4, [(0, 0)])
        gemm = GemmShape(4, 4)
        base = gemm_fault_mask(gemm, fault_map)
        permuted = gemm_fault_mask(gemm, fault_map, column_permutation=[1, 0, 2, 3])
        assert base.sum() == permuted.sum() == 1
        assert not np.array_equal(base, permuted)

    def test_model_fault_masks_accepts_array_or_map(self):
        model = small_cnn()
        fault_map = FaultMap.random(8, 8, 0.25, seed=1)
        from_map = model_fault_masks(model, fault_map)
        from_array = model_fault_masks(model, SystolicArray(8, 8, fault_map=fault_map))
        assert set(from_map) == {"0", "4"}
        for name in from_map:
            np.testing.assert_array_equal(from_map[name], from_array[name])

    def test_masked_fraction_tracks_fault_rate_for_aligned_layers(self):
        # Layer dimensions that are exact multiples of the array tile size.
        model = MLP(64, 16, hidden_sizes=(32,), seed=0)
        fault_map = FaultMap.random(16, 16, 0.25, seed=0)
        masks = model_fault_masks(model, fault_map)
        fraction = masked_weight_fraction(masks)
        assert fraction == pytest.approx(0.25, abs=0.03)

    def test_masked_fraction_empty(self):
        assert masked_weight_fraction({}) == 0.0

    def test_expected_masked_fraction(self):
        assert expected_masked_fraction(0.3) == 0.3
        with pytest.raises(ValueError):
            expected_masked_fraction(1.5)


class TestModelMapping:
    def test_tiling_summary(self):
        model = MLP(100, 10, hidden_sizes=(70,), seed=0)
        mappings = model_mapping(model, SystolicArray(32, 32))
        assert len(mappings) == 2
        first = mappings[0]
        assert first.gemm.reduce_dim == 100
        assert first.row_tiles == 4 and first.col_tiles == 3
        assert first.num_tiles == 12
        assert first.last_tile_rows == 100 - 3 * 32
        assert first.last_tile_cols == 70 - 2 * 32

    def test_exact_tiling(self):
        model = MLP(64, 32, hidden_sizes=(), seed=0)
        mapping = model_mapping(model, SystolicArray(32, 32))[0]
        assert mapping.row_tiles == 2 and mapping.col_tiles == 1
        assert mapping.last_tile_rows == 32 and mapping.last_tile_cols == 32


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=32),
    cols=st.integers(min_value=2, max_value=32),
    rate=st.floats(min_value=0.0, max_value=1.0),
    reduce_mult=st.integers(min_value=1, max_value=4),
    out_mult=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_mask_fraction_equals_fault_rate_for_aligned_gemm(rows, cols, rate, reduce_mult, out_mult, seed):
    """Property: when the GEMM tiles the array exactly, the masked-weight
    fraction equals the PE fault rate (each PE covers the same number of weights)."""
    fault_map = FaultMap.random(rows, cols, rate, seed=seed)
    gemm = GemmShape(reduce_dim=rows * reduce_mult, output_dim=cols * out_mult)
    mask = gemm_fault_mask(gemm, fault_map)
    assert mask.shape == (gemm.output_dim, gemm.reduce_dim)
    assert mask.mean() == pytest.approx(fault_map.fault_rate, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=16),
    cols=st.integers(min_value=2, max_value=16),
    rate=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_permutation_preserves_masked_count_property(rows, cols, rate, seed):
    """Property: a column permutation never changes how many weights are masked."""
    fault_map = FaultMap.random(rows, cols, rate, seed=seed)
    gemm = GemmShape(reduce_dim=rows * 2, output_dim=cols * 3)
    base = gemm_fault_mask(gemm, fault_map)
    permutation = np.random.default_rng(seed).permutation(cols)
    permuted = gemm_fault_mask(gemm, fault_map, column_permutation=permutation)
    assert base.sum() == permuted.sum()


class TestMaskCache:
    def test_cache_returns_identical_masks(self):
        from repro.accelerator import clear_mask_cache, mask_cache_stats

        clear_mask_cache()
        fault_map = FaultMap.random(8, 8, 0.3, seed=0)
        gemm = GemmShape(reduce_dim=24, output_dim=16)
        first = gemm_fault_mask(gemm, fault_map)
        second = gemm_fault_mask(gemm, fault_map)
        # Cache hit: the very same (read-only) array object is shared.
        assert second is first
        assert not first.flags.writeable
        stats = mask_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_cache_distinguishes_maps_shapes_and_permutations(self):
        from repro.accelerator import clear_mask_cache

        clear_mask_cache()
        map_a = FaultMap.random(8, 8, 0.3, seed=1)
        map_b = FaultMap.random(8, 8, 0.3, seed=2)
        gemm = GemmShape(reduce_dim=16, output_dim=16)
        other_gemm = GemmShape(reduce_dim=8, output_dim=16)
        permutation = np.roll(np.arange(8), 1)
        mask_a = gemm_fault_mask(gemm, map_a)
        mask_b = gemm_fault_mask(gemm, map_b)
        mask_other = gemm_fault_mask(other_gemm, map_a)
        mask_perm = gemm_fault_mask(gemm, map_a, column_permutation=permutation)
        assert mask_a.shape != mask_other.shape
        assert not np.array_equal(mask_a, mask_b)
        reference = gemm_fault_mask(
            gemm, map_a.permuted_columns(permutation)
        )
        np.testing.assert_array_equal(mask_perm, reference)

    def test_cached_mask_values_match_uncached(self):
        from repro.accelerator import clear_mask_cache

        fault_map = FaultMap.random(6, 10, 0.4, seed=3)
        gemm = GemmShape(reduce_dim=18, output_dim=20)
        clear_mask_cache()
        fresh = gemm_fault_mask(gemm, fault_map).copy()
        clear_mask_cache()
        again = gemm_fault_mask(gemm, fault_map)
        np.testing.assert_array_equal(fresh, again)
