"""Tests for the im2col-based convolution: forward correctness and gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient

RNG = np.random.default_rng(7)


def naive_conv2d(x, weight, bias, stride, padding):
    """Straightforward reference convolution (loops, no im2col)."""
    n, c, h, w = x.shape
    out_ch, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, out_ch, out_h, out_w))
    for b in range(n):
        for o in range(out_ch):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, o, i, j] = (patch * weight[o]).sum()
            if bias is not None:
                out[b, o] += bias[o]
    return out


class TestIm2col:
    def test_shapes(self):
        x = RNG.standard_normal((2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, (3, 3), (1, 1), (1, 1))
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_stride_and_no_padding(self):
        x = RNG.standard_normal((1, 1, 6, 6))
        cols, oh, ow = F.im2col(x, (2, 2), (2, 2), (0, 0))
        assert (oh, ow) == (3, 3)
        assert cols.shape == (9, 4)

    def test_kernel_larger_than_input_raises(self):
        x = RNG.standard_normal((1, 1, 3, 3))
        with pytest.raises(ValueError):
            F.im2col(x, (5, 5), (1, 1), (0, 0))

    def test_col2im_inverts_counts(self):
        """col2im(ones) counts how many windows cover each input pixel."""
        x_shape = (1, 1, 4, 4)
        cols, oh, ow = F.im2col(np.zeros(x_shape), (2, 2), (1, 1), (0, 0))
        counts = F.col2im(np.ones_like(cols), x_shape, (2, 2), (1, 1), (0, 0), oh, ow)
        # Corner pixels are covered once, edges twice, centre four times.
        assert counts[0, 0, 0, 0] == 1
        assert counts[0, 0, 0, 1] == 2
        assert counts[0, 0, 1, 1] == 4


class TestConvForward:
    @pytest.mark.parametrize(
        "stride,padding",
        [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1)), ((2, 1), (0, 1))],
    )
    def test_matches_naive_reference(self, stride, padding):
        x = RNG.standard_normal((2, 3, 7, 6))
        w = RNG.standard_normal((4, 3, 3, 3))
        b = RNG.standard_normal(4)
        expected = naive_conv2d(x, w, b, stride, padding)
        actual = F.conv2d(
            Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), Tensor(b, dtype=np.float64),
            stride=stride, padding=padding,
        )
        np.testing.assert_allclose(actual.data, expected, rtol=1e-6, atol=1e-8)

    def test_no_bias(self):
        x = RNG.standard_normal((1, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3))
        expected = naive_conv2d(x, w, None, (1, 1), (0, 0))
        actual = F.conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), None)
        np.testing.assert_allclose(actual.data, expected, rtol=1e-6, atol=1e-8)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 5, 5)))
        w = Tensor(np.zeros((3, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestConvGradients:
    def test_input_gradient(self):
        x0 = RNG.standard_normal((2, 2, 5, 5))
        w0 = RNG.standard_normal((3, 2, 3, 3))
        b0 = RNG.standard_normal(3)
        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        out = F.conv2d(x, Tensor(w0, dtype=np.float64), Tensor(b0, dtype=np.float64), stride=2, padding=1)
        (out * out).sum().backward()
        numeric = numeric_gradient(
            lambda arr: (
                F.conv2d(Tensor(arr, dtype=np.float64), Tensor(w0, dtype=np.float64), Tensor(b0, dtype=np.float64), stride=2, padding=1) ** 2
            ).sum().item(),
            x0,
        )
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-6)

    def test_weight_and_bias_gradient(self):
        x0 = RNG.standard_normal((2, 2, 5, 5))
        w0 = RNG.standard_normal((3, 2, 3, 3))
        b0 = RNG.standard_normal(3)
        w = Tensor(w0, requires_grad=True, dtype=np.float64)
        b = Tensor(b0, requires_grad=True, dtype=np.float64)
        out = F.conv2d(Tensor(x0, dtype=np.float64), w, b, stride=1, padding=1)
        (out * out).sum().backward()
        numeric_w = numeric_gradient(
            lambda arr: (
                F.conv2d(Tensor(x0, dtype=np.float64), Tensor(arr, dtype=np.float64), Tensor(b0, dtype=np.float64), stride=1, padding=1) ** 2
            ).sum().item(),
            w0,
        )
        numeric_b = numeric_gradient(
            lambda arr: (
                F.conv2d(Tensor(x0, dtype=np.float64), Tensor(w0, dtype=np.float64), Tensor(arr, dtype=np.float64), stride=1, padding=1) ** 2
            ).sum().item(),
            b0,
        )
        np.testing.assert_allclose(w.grad, numeric_w, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(b.grad, numeric_b, rtol=1e-5, atol=1e-6)
