"""Tests for retraining-amount selection policies (Step 2)."""

import numpy as np
import pytest

from repro.accelerator import FaultMap
from repro.core import (
    AccuracyConstraint,
    Chip,
    ChipPopulation,
    FixedEpochPolicy,
    ResilienceDrivenPolicy,
    make_policy,
)

from tests.test_profiles import make_profile


def chip_with_rate(rate, rows=10, cols=10, chip_id="c"):
    return Chip(chip_id, FaultMap.random(rows, cols, rate, seed=1))


class TestFixedEpochPolicy:
    def test_constant_amount(self):
        policy = FixedEpochPolicy(0.25)
        assert policy.epochs_for_chip(chip_with_rate(0.0)) == 0.25
        assert policy.epochs_for_chip(chip_with_rate(0.4)) == 0.25
        assert policy.name == "fixed-0.25ep"
        assert "0.25" in policy.describe()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedEpochPolicy(-1.0)

    def test_population_mapping(self):
        population = ChipPopulation.generate(4, 8, 8, seed=0)
        amounts = FixedEpochPolicy(1.0).epochs_for_population(population)
        assert set(amounts) == {chip.chip_id for chip in population}
        assert all(value == 1.0 for value in amounts.values())


class TestResilienceDrivenPolicy:
    def test_amount_grows_with_fault_rate(self):
        policy = ResilienceDrivenPolicy(
            profile=make_profile(),
            constraint=AccuracyConstraint.at_least(0.93),
            statistic="max",
        )
        low = policy.epochs_for_chip(chip_with_rate(0.0, chip_id="low"))
        medium = policy.epochs_for_chip(chip_with_rate(0.1, chip_id="mid"))
        high = policy.epochs_for_chip(chip_with_rate(0.2, chip_id="high"))
        assert low <= medium <= high
        assert low == 0.0
        assert high == 2.0

    def test_max_statistic_is_more_conservative_than_mean(self):
        profile = make_profile()
        constraint = AccuracyConstraint.at_least(0.93)
        chip = chip_with_rate(0.2)
        max_policy = ResilienceDrivenPolicy(profile=profile, constraint=constraint, statistic="max")
        mean_policy = ResilienceDrivenPolicy(profile=profile, constraint=constraint, statistic="mean")
        assert max_policy.epochs_for_chip(chip) >= mean_policy.epochs_for_chip(chip)
        assert max_policy.name == "reduce-max"
        assert mean_policy.name == "reduce-mean"

    def test_relative_constraint_resolved_against_clean(self):
        policy = ResilienceDrivenPolicy(
            profile=make_profile(),
            constraint=AccuracyConstraint.within_drop_of_clean(0.02),
            statistic="max",
        )
        assert policy.target_accuracy == pytest.approx(0.93)

    def test_margin_added(self):
        profile = make_profile()
        base = ResilienceDrivenPolicy(
            profile=profile, constraint=AccuracyConstraint.at_least(0.93), statistic="max"
        )
        padded = ResilienceDrivenPolicy(
            profile=profile,
            constraint=AccuracyConstraint.at_least(0.93),
            statistic="max",
            margin_epochs=0.5,
        )
        chip = chip_with_rate(0.1)
        assert padded.epochs_for_chip(chip) == pytest.approx(base.epochs_for_chip(chip) + 0.5)
        with pytest.raises(ValueError):
            ResilienceDrivenPolicy(
                profile=profile,
                constraint=AccuracyConstraint.at_least(0.9),
                margin_epochs=-1.0,
            )

    def test_describe(self):
        policy = ResilienceDrivenPolicy(
            profile=make_profile(), constraint=AccuracyConstraint.at_least(0.93)
        )
        assert "statistic=max" in policy.describe()


class TestPolicyFactory:
    def test_fixed(self):
        policy = make_policy("fixed", epochs=0.1)
        assert isinstance(policy, FixedEpochPolicy)
        with pytest.raises(ValueError):
            make_policy("fixed")

    def test_reduce_variants(self):
        profile = make_profile()
        constraint = AccuracyConstraint.at_least(0.93)
        assert make_policy("reduce-max", profile=profile, constraint=constraint).statistic == "max"
        assert make_policy("reduce-mean", profile=profile, constraint=constraint).statistic == "mean"
        with pytest.raises(ValueError):
            make_policy("reduce-max")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_policy("oracle")
