"""Tests for losses and metrics (cross-entropy, NLL, MSE, accuracy, one-hot)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss, MseLoss, NllLoss
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient

RNG = np.random.default_rng(3)


def reference_cross_entropy(logits, targets):
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return -log_probs[np.arange(len(targets)), targets].mean()


class TestCrossEntropy:
    def test_matches_reference(self):
        logits = RNG.standard_normal((6, 5))
        targets = RNG.integers(0, 5, 6)
        loss = F.cross_entropy(Tensor(logits, dtype=np.float64), targets)
        assert loss.item() == pytest.approx(reference_cross_entropy(logits, targets), rel=1e-6)

    def test_perfect_prediction_gives_small_loss(self):
        logits = np.full((4, 3), -20.0)
        targets = np.array([0, 1, 2, 0])
        logits[np.arange(4), targets] = 20.0
        loss = F.cross_entropy(Tensor(logits), targets)
        assert loss.item() < 1e-3

    def test_gradient(self):
        logits0 = RNG.standard_normal((5, 4))
        targets = RNG.integers(0, 4, 5)
        logits = Tensor(logits0, requires_grad=True, dtype=np.float64)
        F.cross_entropy(logits, targets).backward()
        numeric = numeric_gradient(
            lambda arr: F.cross_entropy(Tensor(arr, dtype=np.float64), targets).item(), logits0
        )
        np.testing.assert_allclose(logits.grad, numeric, rtol=1e-5, atol=1e-6)

    def test_gradient_sums_to_zero_per_sample(self):
        logits = Tensor(RNG.standard_normal((3, 6)), requires_grad=True, dtype=np.float64)
        F.cross_entropy(logits, np.array([1, 2, 3])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(3), atol=1e-8)

    def test_reductions(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 0])
        mean_loss = F.cross_entropy(Tensor(logits, dtype=np.float64), targets, reduction="mean").item()
        sum_loss = F.cross_entropy(Tensor(logits, dtype=np.float64), targets, reduction="sum").item()
        none_loss = F.cross_entropy(Tensor(logits, dtype=np.float64), targets, reduction="none")
        assert sum_loss == pytest.approx(mean_loss * 4, rel=1e-6)
        assert none_loss.shape == (4,)

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.full((4, 3), -20.0)
        targets = np.array([0, 1, 2, 0])
        logits[np.arange(4), targets] = 20.0
        plain = F.cross_entropy(Tensor(logits), targets).item()
        smoothed = F.cross_entropy(Tensor(logits), targets, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_invalid_label_smoothing(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), label_smoothing=1.5)

    def test_module_wrapper(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 0])
        module = CrossEntropyLoss()
        functional_value = F.cross_entropy(Tensor(logits, dtype=np.float64), targets).item()
        assert module(Tensor(logits, dtype=np.float64), targets).item() == pytest.approx(functional_value)
        with pytest.raises(ValueError):
            CrossEntropyLoss(reduction="bogus")


class TestNll:
    def test_matches_manual(self):
        log_probs = np.log(np.full((3, 4), 0.25))
        loss = F.nll_loss(Tensor(log_probs), np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(-np.log(0.25), rel=1e-6)

    def test_target_length_mismatch(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((3, 2))), np.array([0, 1]))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros(3)), np.array([0, 1, 2]))

    def test_module_wrapper(self):
        log_probs = Tensor(np.log(np.full((2, 2), 0.5)))
        assert NllLoss()(log_probs, np.array([0, 1])).item() == pytest.approx(np.log(2), rel=1e-6)


class TestMse:
    def test_value_and_gradient(self):
        pred0 = RNG.standard_normal((4, 3))
        target = RNG.standard_normal((4, 3))
        pred = Tensor(pred0, requires_grad=True, dtype=np.float64)
        loss = F.mse_loss(pred, target)
        assert loss.item() == pytest.approx(((pred0 - target) ** 2).mean(), rel=1e-6)
        loss.backward()
        np.testing.assert_allclose(pred.grad, 2 * (pred0 - target) / pred0.size, rtol=1e-6)

    def test_reductions(self):
        pred = Tensor(np.ones((2, 2)))
        target = np.zeros((2, 2))
        assert F.mse_loss(pred, target, reduction="sum").item() == pytest.approx(4.0)
        assert F.mse_loss(pred, target, reduction="none").shape == (2, 2)
        with pytest.raises(ValueError):
            F.mse_loss(pred, target, reduction="bogus")

    def test_module_wrapper(self):
        assert MseLoss()(Tensor(np.ones(3)), np.zeros(3)).item() == pytest.approx(1.0)


class TestMetrics:
    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
        targets = np.array([0, 1, 1, 1])
        assert F.accuracy(logits, targets) == pytest.approx(0.75)
        assert F.accuracy(Tensor(logits), targets) == pytest.approx(0.75)

    def test_accuracy_empty(self):
        assert F.accuracy(np.zeros((0, 3)), np.zeros(0)) == 0.0
