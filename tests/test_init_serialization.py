"""Tests for weight initialisers and checkpoint serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.nn.serialization import (
    clone_state_dict,
    load_checkpoint,
    load_into,
    save_checkpoint,
    state_dicts_equal,
)

RNG = np.random.default_rng(0)


class TestInitializers:
    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 4)) == 0)
        assert np.all(init.ones((5,)) == 1)

    def test_uniform_range(self):
        values = init.uniform((1000,), -2.0, 3.0, RNG)
        assert values.min() >= -2.0 and values.max() < 3.0
        with pytest.raises(ValueError):
            init.uniform((2,), 1.0, -1.0, RNG)

    def test_normal_std(self):
        values = init.normal((5000,), 0.0, 2.0, np.random.default_rng(1))
        assert abs(values.std() - 2.0) < 0.1
        with pytest.raises(ValueError):
            init.normal((2,), 0.0, -1.0, RNG)

    def test_xavier_uniform_bound(self):
        shape = (64, 32)
        values = init.xavier_uniform(shape, np.random.default_rng(2))
        bound = np.sqrt(6.0 / (32 + 64))
        assert np.abs(values).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        values = init.xavier_normal((200, 200), np.random.default_rng(3))
        expected = np.sqrt(2.0 / 400)
        assert abs(values.std() - expected) / expected < 0.1

    def test_kaiming_fan_modes(self):
        conv_shape = (16, 8, 3, 3)
        fan_in_values = init.kaiming_normal(conv_shape, np.random.default_rng(4), mode="fan_in")
        fan_out_values = init.kaiming_normal(conv_shape, np.random.default_rng(4), mode="fan_out")
        assert fan_in_values.std() > fan_out_values.std()

    def test_kaiming_uniform_dtype(self):
        assert init.kaiming_uniform((10, 10), RNG).dtype == np.float32

    def test_bias_uniform_bound(self):
        values = init.bias_uniform_for((32, 64), (32,), np.random.default_rng(5))
        assert np.abs(values).max() <= 1.0 / np.sqrt(64) + 1e-6

    def test_fan_for_scalar_raises(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), RNG)


class TestSerialization:
    def test_save_and_load_round_trip(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = nn.Sequential(nn.Linear(4, 8, rng=7), nn.ReLU(), nn.Linear(8, 2, rng=8))
        load_into(restored, path)
        assert state_dicts_equal(model.state_dict(), restored.state_dict())

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "missing.npz")

    def test_save_raw_state_dict(self, tmp_path):
        state = {"a": np.arange(3.0), "b": np.ones((2, 2))}
        path = save_checkpoint(state, tmp_path / "raw.npz")
        loaded = load_checkpoint(path)
        assert state_dicts_equal(state, loaded)

    def test_clone_state_dict_is_deep(self):
        model = nn.Linear(3, 3, rng=0)
        clone = clone_state_dict(model.state_dict())
        clone["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_state_dicts_equal_detects_differences(self):
        a = {"w": np.ones(3)}
        assert not state_dicts_equal(a, {"w": np.zeros(3)})
        assert not state_dicts_equal(a, {"v": np.ones(3)})
        assert not state_dicts_equal(a, {"w": np.ones(4)})
        assert state_dicts_equal(a, {"w": np.ones(3) + 1e-9}, atol=1e-6)

    def test_batchnorm_buffers_survive_round_trip(self, tmp_path):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, padding=1, rng=0), nn.BatchNorm2d(4))
        model(nn.Tensor(np.random.default_rng(0).standard_normal((4, 2, 6, 6)).astype(np.float32)))
        path = save_checkpoint(model, tmp_path / "bn.npz")
        fresh = nn.Sequential(nn.Conv2d(2, 4, 3, padding=1, rng=5), nn.BatchNorm2d(4))
        load_into(fresh, path)
        np.testing.assert_allclose(fresh[1].running_mean, model[1].running_mean)
